//! Morsel-driven parallel execution of the partitionable plan suffix.
//!
//! The split follows each operator's declared [`Parallelism`] contract
//! (see [`crate::ops::ProtocolContract`]): starting at the query root,
//! [`split_parallel`] peels off the longest suffix of `Partitionable`
//! unary operators — restriction, value transform, stretch, focal,
//! orient — leaving everything below (sources, shedding, delays,
//! compositions, aggregates: the `OrderSensitive` / `BlockingMerge`
//! operators) on the single-threaded *inner* pipeline.
//!
//! [`run_morsels`] then drives the inner pipeline from the consumer
//! thread, slices its output into **morsels** at the split's
//! [`Granularity`] — whole `SectorStart..SectorEnd` brackets when any
//! stage is sector-scoped (focal, image-scope stretch, orient), single
//! frames otherwise — and dispatches each morsel, tagged with a
//! submission sequence number, to a [`WorkerPool`]. Each worker runs a
//! *fresh* instance of the stage operators over its morsel (frame
//! morsels get a synthetic copy of the enclosing `SectorStart` so
//! georeferencing context travels with the work; it is stripped from
//! the output). An [`OrderedCollector`] then merges results back in
//! submission order, so the flattened element sequence is
//! **byte-identical** to the serial pipeline at every chunk budget and
//! worker count — the contracts guarantee a fresh per-unit instance
//! reproduces the serial operator exactly.
//!
//! Byte-identity is defined on the flattened element sequence (what
//! [`ChunkOrMarker::into_elements`] yields); chunk *boundaries* may
//! differ from the serial driver near morsel edges. The guarantee
//! requires protocol-clean inner output (`SectorStart..SectorEnd`
//! bracketing, `FrameStart..FrameEnd` nesting); faulty transports
//! should be routed through
//! [`StreamRepair`](crate::model::StreamRepair) *below* the split,
//! where it runs order-sensitively, exactly as in the serial plan.

use super::pool::{OrderedCollector, WorkerPool};
use super::{run_chunked, RunReport};
use crate::error::Result;
use crate::model::{
    pack_queue, BoxedF32Stream, ChunkOrMarker, Element, GeoStream, Marker, SectorInfo,
    StreamSchema, TimeSet, VecStream, DEFAULT_CHUNK_BUDGET,
};
use crate::obs::{Histogram, PipelineObs, SampledClock, SpanOutcome, TraceKind};
use crate::ops::{
    ChunkProtocolChecker, FocalFunc, FocalTransform, Granularity, MapTransform, Orient,
    Orientation, Parallelism, ProtocolContract, SpatialRestrict, StretchMode, StretchScope,
    StretchTransform, TemporalRestrict, ValueFunc, ValueRestrict,
};
use crate::query::{Expr, Planner};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{map_region, Crs, Region};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One data-parallel stage peeled off the plan root: the operator's
/// parameters, detached from its input expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageSpec {
    /// Spatial restriction `E|R` (region in `crs` coordinates).
    RestrictSpace {
        /// Restriction region.
        region: Region,
        /// CRS the region coordinates are expressed in.
        crs: Crs,
    },
    /// Temporal restriction `E|T`.
    RestrictTime {
        /// Accepted timestamp set.
        times: TimeSet,
    },
    /// Value restriction `E|V`.
    RestrictValue {
        /// Accepted value ranges (inclusive).
        ranges: Vec<(f64, f64)>,
    },
    /// Point-wise value transform `f_val ∘ E`.
    MapValue {
        /// The function.
        func: ValueFunc,
    },
    /// Frame/image-scoped contrast stretch.
    Stretch {
        /// Stretch mode.
        mode: StretchMode,
        /// Buffering scope.
        scope: StretchScope,
    },
    /// `k × k` focal (neighborhood) operation.
    Focal {
        /// Focal function.
        func: FocalFunc,
        /// Kernel size (odd).
        k: u32,
    },
    /// Exact orientation change.
    Orient {
        /// The orientation.
        orientation: Orientation,
    },
}

impl StageSpec {
    /// The operator's textual algebra keyword.
    pub fn name(&self) -> &'static str {
        match self {
            StageSpec::RestrictSpace { .. } => "restrict_space",
            StageSpec::RestrictTime { .. } => "restrict_time",
            StageSpec::RestrictValue { .. } => "restrict_value",
            StageSpec::MapValue { .. } => "map_value",
            StageSpec::Stretch { .. } => "stretch",
            StageSpec::Focal { .. } => "focal",
            StageSpec::Orient { .. } => "orient",
        }
    }

    /// The operator's declared protocol contract — the same one
    /// [`query::analyze`](crate::query) folds into the plan's
    /// certificate; its [`Parallelism`] and [`Granularity`] fields
    /// drive the split.
    pub fn contract(&self) -> ProtocolContract {
        match self {
            StageSpec::RestrictSpace { .. } => {
                crate::ops::restrict::restriction_contract("restrict_space")
            }
            StageSpec::RestrictTime { .. } => {
                crate::ops::restrict::restriction_contract("restrict_time")
            }
            StageSpec::RestrictValue { .. } => {
                crate::ops::restrict::restriction_contract("restrict_value")
            }
            StageSpec::MapValue { .. } => {
                crate::ops::value_transform::value_transform_contract("map_value")
            }
            StageSpec::Stretch { scope, .. } => crate::ops::stretch::stretch_contract(*scope),
            StageSpec::Focal { .. } => crate::ops::focal::focal_contract(),
            StageSpec::Orient { .. } => crate::ops::orient::orient_contract(),
        }
    }
}

/// The outcome of [`split_parallel`]: the order-sensitive residue and
/// the partitionable stage suffix (upstream first).
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelSplit {
    /// The expression that stays on the single-threaded inner pipeline.
    pub inner: Expr,
    /// Partitionable stages to run per-morsel, upstream first.
    pub stages: Vec<StageSpec>,
}

impl ParallelSplit {
    /// Morsel granularity: the coarsest granularity any stage demands
    /// ([`Granularity::Sector`] dominates [`Granularity::Frame`]).
    pub fn granularity(&self) -> Granularity {
        self.stages.iter().map(|s| s.contract().granularity).max().unwrap_or(Granularity::Frame)
    }
}

/// Peels the longest suffix of [`Parallelism::Partitionable`] unary
/// operators off the plan root. Operators whose contracts are
/// order-sensitive or blocking bound the parallel region and stay in
/// `inner` together with everything beneath them.
pub fn split_parallel(expr: &Expr) -> ParallelSplit {
    let mut rev: Vec<StageSpec> = Vec::new();
    let mut cur = expr;
    loop {
        let peeled = match cur {
            Expr::RestrictSpace { input, region, crs } => {
                Some((input, StageSpec::RestrictSpace { region: region.clone(), crs: *crs }))
            }
            Expr::RestrictTime { input, times } => {
                Some((input, StageSpec::RestrictTime { times: times.clone() }))
            }
            Expr::RestrictValue { input, ranges } => {
                Some((input, StageSpec::RestrictValue { ranges: ranges.clone() }))
            }
            Expr::MapValue { input, func } => Some((input, StageSpec::MapValue { func: *func })),
            Expr::Stretch { input, mode, scope } => {
                Some((input, StageSpec::Stretch { mode: *mode, scope: *scope }))
            }
            Expr::Focal { input, func, k } => {
                Some((input, StageSpec::Focal { func: *func, k: *k }))
            }
            Expr::Orient { input, orientation } => {
                Some((input, StageSpec::Orient { orientation: *orientation }))
            }
            _ => None,
        };
        match peeled {
            Some((input, spec)) if spec.contract().parallelism == Parallelism::Partitionable => {
                rev.push(spec);
                cur = input;
            }
            _ => break,
        }
    }
    rev.reverse();
    ParallelSplit { inner: cur.clone(), stages: rev }
}

type StageBuilder = Arc<dyn Fn(BoxedF32Stream) -> BoxedF32Stream + Send + Sync>;

/// Compiled form of a stage suffix: thread-safe constructors that build
/// a fresh operator chain per morsel, plus the probed operator names
/// (for per-op stats) and the morsel granularity.
#[derive(Clone)]
pub struct CompiledStages {
    builders: Vec<StageBuilder>,
    names: Vec<String>,
    granularity: Granularity,
}

impl std::fmt::Debug for CompiledStages {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledStages")
            .field("names", &self.names)
            .field("granularity", &self.granularity)
            .finish()
    }
}

impl CompiledStages {
    /// A suffix with no stages (the driver degenerates to
    /// [`run_chunked`]).
    pub fn empty() -> CompiledStages {
        CompiledStages { builders: Vec::new(), names: Vec::new(), granularity: Granularity::Frame }
    }

    /// True when there is nothing to parallelize.
    pub fn is_empty(&self) -> bool {
        self.builders.is_empty()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.builders.len()
    }

    /// Morsel granularity of the compiled suffix.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Probed operator names, upstream first (aligned with the stage
    /// slots in [`RunReport::per_op`]).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    fn build_chain(&self, input: BoxedF32Stream) -> BoxedF32Stream {
        let mut chain = input;
        for b in &self.builders {
            chain = b(chain);
        }
        chain
    }
}

/// Compiles stage specs against the inner stream's schema. Fallible
/// work (cross-CRS region mapping, exactly as
/// [`Planner::build`] does it) happens once here, not per morsel.
pub fn compile_stages(stages: &[StageSpec], schema: &StreamSchema) -> Result<CompiledStages> {
    let mut builders: Vec<StageBuilder> = Vec::with_capacity(stages.len());
    let mut granularity = Granularity::Frame;
    for spec in stages {
        granularity = granularity.max(spec.contract().granularity);
        let b: StageBuilder = match spec {
            StageSpec::RestrictSpace { region, crs } => {
                let stream_crs = schema.crs;
                let region = if *crs == stream_crs {
                    region.clone()
                } else {
                    Region::Rect(map_region(region, crs, &stream_crs, 16)?)
                };
                Arc::new(move |s| Box::new(SpatialRestrict::new(s, region.clone())))
            }
            StageSpec::RestrictTime { times } => {
                let times = times.clone();
                Arc::new(move |s| Box::new(TemporalRestrict::new(s, times.clone())))
            }
            StageSpec::RestrictValue { ranges } => {
                let ranges = ranges.clone();
                Arc::new(move |s| Box::new(ValueRestrict::ranges(s, ranges.clone())))
            }
            StageSpec::MapValue { func } => {
                let func = *func;
                Arc::new(move |s| Box::new(MapTransform::<_, f32>::new(s, func)))
            }
            StageSpec::Stretch { mode, scope } => {
                let (mode, scope) = (*mode, *scope);
                Arc::new(move |s| Box::new(StretchTransform::new(s, mode, scope)))
            }
            StageSpec::Focal { func, k } => {
                let (func, k) = (*func, *k);
                Arc::new(move |s| Box::new(FocalTransform::new(s, func, k)))
            }
            StageSpec::Orient { orientation } => {
                let orientation = *orientation;
                Arc::new(move |s| Box::new(Orient::new(s, orientation)))
            }
        };
        builders.push(b);
    }
    let compiled = CompiledStages { builders, names: Vec::new(), granularity };
    // Probe operator names by building one chain over an empty stream.
    let probe: BoxedF32Stream = Box::new(VecStream::new(schema.clone(), Vec::new()));
    let chain = compiled.build_chain(probe);
    let mut reports = Vec::new();
    chain.collect_stats(&mut reports);
    let names = reports.into_iter().skip(1).map(|r| r.name).collect();
    Ok(CompiledStages { names, ..compiled })
}

/// Splits `expr`, builds the inner pipeline through `planner` (traced
/// under `obs` exactly like a serial plan), and compiles the stage
/// suffix against the inner schema.
pub fn split_and_compile(
    planner: &Planner<'_>,
    expr: &Expr,
    obs: &PipelineObs,
) -> Result<(BoxedF32Stream, CompiledStages)> {
    let split = split_parallel(expr);
    let inner = planner.build_traced(&split.inner, obs)?;
    let compiled = compile_stages(&split.stages, inner.schema())?;
    Ok((inner, compiled))
}

/// A morsel's elements replayed as a [`GeoStream`] for the fresh stage
/// chain a worker builds: pops are `pop_front`, chunked pulls pack the
/// queue with the shared budget logic, so the kernel sees exactly the
/// serial element protocol.
struct MorselSource {
    schema: Arc<StreamSchema>,
    queue: VecDeque<Element<f32>>,
}

impl GeoStream for MorselSource {
    type V = f32;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<f32>> {
        self.queue.pop_front()
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<f32>> {
        pack_queue(&mut self.queue, budget)
    }
}

struct KernelOut {
    elements: Vec<Element<f32>>,
    stage_stats: Vec<OpStats>,
}

/// Runs one morsel through a fresh stage chain. `strip_synthetic`
/// removes the first `SectorStart` of the output — the echo of the
/// synthesized sector context prepended to frame-granularity morsels.
fn run_kernel(
    stages: &CompiledStages,
    schema: &Arc<StreamSchema>,
    unit: Vec<Element<f32>>,
    strip_synthetic: bool,
) -> KernelOut {
    let src = MorselSource { schema: Arc::clone(schema), queue: unit.into() };
    let mut chain = stages.build_chain(Box::new(src));
    let mut out = Vec::new();
    while let Some(item) = chain.next_chunk(DEFAULT_CHUNK_BUDGET) {
        item.into_elements(&mut |el| out.push(el));
    }
    let mut reports = Vec::new();
    chain.collect_stats(&mut reports);
    let stage_stats = reports.into_iter().skip(1).map(|r| r.stats).collect();
    if strip_synthetic {
        if let Some(pos) = out.iter().position(|e| matches!(e, Element::SectorStart(_))) {
            out.remove(pos);
        }
    }
    KernelOut { elements: out, stage_stats }
}

/// Slices the inner pipeline's flattened element sequence into morsel
/// units at the split granularity. Frame-granularity units use a
/// one-element lookahead so a trailing `SectorEnd` joins the sector's
/// last frame unit instead of travelling alone.
struct Assembler {
    granularity: Granularity,
    ctx: Option<SectorInfo>,
    pending: Vec<Element<f32>>,
    pending_synthetic: bool,
    frame_done: bool,
}

/// A complete unit: its elements, and whether the kernel must strip a
/// synthesized leading `SectorStart` from the output.
type Unit = (Vec<Element<f32>>, bool);

impl Assembler {
    fn new(granularity: Granularity) -> Assembler {
        Assembler {
            granularity,
            ctx: None,
            pending: Vec::new(),
            pending_synthetic: false,
            frame_done: false,
        }
    }

    fn take_pending(&mut self) -> Option<Unit> {
        self.frame_done = false;
        let strip = self.pending_synthetic;
        self.pending_synthetic = false;
        if self.pending.is_empty() {
            return None;
        }
        Some((std::mem::take(&mut self.pending), strip))
    }

    /// Opens a frame-granularity unit with a synthesized copy of the
    /// enclosing sector context, if one is known.
    fn ensure_open(&mut self) {
        if self.pending.is_empty() {
            if let Some(si) = &self.ctx {
                self.pending.push(Element::SectorStart(si.clone()));
                self.pending_synthetic = true;
            }
        }
    }

    /// Feeds one element; returns at most one completed unit.
    fn push(&mut self, el: Element<f32>) -> Option<Unit> {
        match self.granularity {
            Granularity::Sector => self.push_sector(el),
            Granularity::Frame => self.push_frame(el),
        }
    }

    fn push_sector(&mut self, el: Element<f32>) -> Option<Unit> {
        match &el {
            Element::SectorStart(_) => {
                let prev = self.take_pending();
                self.pending.push(el);
                prev
            }
            Element::SectorEnd(_) => {
                self.pending.push(el);
                self.take_pending()
            }
            _ => {
                self.pending.push(el);
                None
            }
        }
    }

    fn push_frame(&mut self, el: Element<f32>) -> Option<Unit> {
        match el {
            Element::SectorStart(si) => {
                let prev = self.take_pending();
                self.ctx = Some(si.clone());
                self.pending.push(Element::SectorStart(si));
                prev
            }
            Element::FrameStart(_) => {
                let prev = if self.frame_done { self.take_pending() } else { None };
                self.ensure_open();
                self.pending.push(el);
                prev
            }
            Element::FrameEnd(_) => {
                self.ensure_open();
                self.pending.push(el);
                self.frame_done = true;
                None
            }
            Element::SectorEnd(_) => {
                self.ensure_open();
                self.pending.push(el);
                self.ctx = None;
                self.take_pending()
            }
            other => {
                // Points (and any stray element) ride in the open unit;
                // after a FrameEnd they stay with that frame so the
                // kernel sees the serial sequence.
                self.ensure_open();
                self.pending.push(other);
                None
            }
        }
    }

    fn finish(&mut self) -> Option<Unit> {
        self.take_pending()
    }
}

/// Result of a morsel-driven run: the standard [`RunReport`] plus
/// parallelism counters.
#[derive(Debug)]
pub struct MorselReport {
    /// The merged-output run report; byte-compatible with a serial
    /// [`run_chunked`] report over the same plan.
    pub run: RunReport,
    /// Morsels dispatched to the pool.
    pub morsels: u64,
    /// Stage-kernel panics contained by the driver (each also counts as
    /// a protocol violation in [`RunReport::protocol_violations`]).
    pub kernel_panics: u64,
}

/// How many morsels may be in flight per worker before the driver
/// blocks on the collector (bounds reorder-buffer memory).
const IN_FLIGHT_PER_WORKER: u64 = 4;

fn deliver_unit<F: FnMut(&ChunkOrMarker<f32>)>(
    unit: Vec<Element<f32>>,
    budget: usize,
    checker: &mut ChunkProtocolChecker,
    counts: &mut (u64, u64, u64),
    on_item: &mut F,
) {
    let mut q: VecDeque<Element<f32>> = unit.into();
    while let Some(item) = pack_queue(&mut q, budget) {
        counts.0 += item.element_count().max(1);
        counts.1 += item.point_count() as u64;
        if let Some(Marker::SectorEnd(_)) = item.marker() {
            counts.2 += 1;
        }
        checker.observe(&item);
        on_item(&item);
        item.recycle();
    }
}

/// The morsel driver: drains `inner` on the calling thread, fans each
/// morsel out to `pool` through a fresh stage chain, and delivers the
/// merged output to `on_item` in exact serial order.
///
/// With an empty stage suffix this is [`run_chunked`]. Otherwise the
/// flattened output is byte-identical to running the full serial plan
/// through [`run_chunked`]; `pull_latency` times the *inner* pulls
/// (sampled), and [`RunReport::per_op`] carries the inner chain's
/// reports followed by one merged slot per stage. A panicking stage
/// kernel is contained: its morsel yields no output and the panic is
/// surfaced in [`MorselReport::kernel_panics`] and
/// [`RunReport::protocol_violations`].
pub fn run_morsels<S, F>(
    inner: &mut S,
    stages: &Arc<CompiledStages>,
    pool: &WorkerPool,
    obs: &PipelineObs,
    budget: usize,
    mut on_item: F,
) -> MorselReport
where
    S: GeoStream<V = f32>,
    F: FnMut(&ChunkOrMarker<f32>),
{
    if stages.is_empty() {
        let run = run_chunked(inner, obs, budget, on_item);
        return MorselReport { run, morsels: 0, kernel_panics: 0 };
    }
    let name = inner.schema().name.clone();
    if let Some(trace) = &obs.trace {
        trace.record(obs.query_id, &name, TraceKind::QueryStart, "");
    }
    let schema = Arc::new(inner.schema().clone());
    let pull_ns = Histogram::new();
    let mut clock = SampledClock::new();
    let mut checker = ChunkProtocolChecker::new();
    let collector: Arc<OrderedCollector<Vec<Element<f32>>>> = Arc::new(OrderedCollector::new());
    let stage_stats: Arc<Vec<Mutex<OpStats>>> =
        Arc::new((0..stages.len()).map(|_| Mutex::new(OpStats::default())).collect());
    let panics = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let dispatch = |unit: Vec<Element<f32>>, strip: bool, seq: u64| {
        let stages = Arc::clone(stages);
        let schema = Arc::clone(&schema);
        let collector = Arc::clone(&collector);
        let stats = Arc::clone(&stage_stats);
        let panics = Arc::clone(&panics);
        let recorder = obs.recorder.clone();
        let parent = obs.parent;
        pool.submit(move |worker| {
            let result =
                catch_unwind(AssertUnwindSafe(|| run_kernel(&stages, &schema, unit, strip)));
            match result {
                Ok(out) => {
                    for (slot, s) in stats.iter().zip(&out.stage_stats) {
                        let mut g = slot.lock().unwrap_or_else(PoisonError::into_inner);
                        g.merge(s);
                    }
                    if let Some(rec) = &recorder {
                        let mut span = rec.begin(&format!("morsel.w{worker}"), parent);
                        let pts =
                            out.elements.iter().filter(|e| matches!(e, Element::Point(_))).count();
                        span.add_points(pts as u64);
                        span.finish(SpanOutcome::Ok);
                    }
                    collector.push(seq, out.elements);
                }
                Err(_) => {
                    panics.fetch_add(1, Ordering::Relaxed);
                    collector.push(seq, Vec::new());
                }
            }
        });
    };

    let mut asm = Assembler::new(stages.granularity());
    let mut submitted = 0u64;
    let mut delivered = 0u64;
    // (elements, points, sectors) of the merged output.
    let mut counts = (0u64, 0u64, 0u64);
    let high_water = (pool.workers().max(1) as u64) * IN_FLIGHT_PER_WORKER;
    loop {
        let t0 = clock.begin();
        let Some(item) = inner.next_chunk(budget) else { break };
        let n = item.element_count().max(1);
        clock.end(t0, n, &pull_ns);
        item.into_elements(&mut |el| {
            if let Some((unit, strip)) = asm.push(el) {
                dispatch(unit, strip, submitted);
                submitted += 1;
            }
        });
        while submitted - delivered >= high_water {
            let unit = collector.wait_next();
            deliver_unit(unit, budget, &mut checker, &mut counts, &mut on_item);
            delivered += 1;
        }
    }
    clock.flush(&pull_ns);
    if let Some((unit, strip)) = asm.finish() {
        dispatch(unit, strip, submitted);
        submitted += 1;
    }
    while delivered < submitted {
        let unit = collector.wait_next();
        deliver_unit(unit, budget, &mut checker, &mut counts, &mut on_item);
        delivered += 1;
    }
    let wall = start.elapsed();
    let (elements, points, sectors) = counts;
    let mut per_op = Vec::new();
    inner.collect_stats(&mut per_op);
    for (i, stage_name) in stages.names().iter().enumerate() {
        let stats = {
            let g = stage_stats[i].lock().unwrap_or_else(PoisonError::into_inner);
            g.clone()
        };
        per_op.push(OpReport {
            name: stage_name.clone(),
            stats,
            pull_latency: None,
            frame_latency: None,
        });
    }
    if let Some(trace) = &obs.trace {
        trace.record(
            obs.query_id,
            &name,
            TraceKind::QueryEnd,
            format!("{points} points, {sectors} sectors, {} µs", wall.as_micros()),
        );
    }
    let kernel_panics = panics.load(Ordering::Relaxed);
    let run = RunReport {
        wall,
        elements,
        points_delivered: points,
        sectors,
        per_op,
        pull_latency: pull_ns.snapshot(),
        protocol_violations: checker.violations() + kernel_panics,
    };
    MorselReport { run, morsels: submitted, kernel_panics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::drain_chunked;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn source() -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 10.0, 10.0), 10, 10);
        VecStream::sectors("src", lattice, 3, |s, c, r| f64::from(c + r) + s as f64)
    }

    fn map_expr(inner: Expr) -> Expr {
        Expr::MapValue { input: Box::new(inner), func: ValueFunc::Abs }
    }

    #[test]
    fn split_peels_partitionable_suffix_upstream_first() {
        let expr = Expr::RestrictValue {
            input: Box::new(map_expr(Expr::Downsample {
                input: Box::new(Expr::Source("g".into())),
                k: 2,
            })),
            ranges: vec![(0.0, 5.0)],
        };
        let split = split_parallel(&expr);
        assert_eq!(split.stages.len(), 2);
        assert!(matches!(split.stages[0], StageSpec::MapValue { .. }), "upstream first");
        assert!(matches!(split.stages[1], StageSpec::RestrictValue { .. }));
        assert!(matches!(split.inner, Expr::Downsample { .. }));
        assert_eq!(split.granularity(), Granularity::Frame);
    }

    #[test]
    fn split_stops_at_order_sensitive_operators() {
        let expr = Expr::Downsample { input: Box::new(Expr::Source("g".into())), k: 2 };
        let split = split_parallel(&expr);
        assert!(split.stages.is_empty());
        assert_eq!(split.inner, expr);
    }

    #[test]
    fn sector_scoped_stages_promote_granularity() {
        let expr = map_expr(Expr::Focal {
            input: Box::new(Expr::Source("g".into())),
            func: FocalFunc::Mean,
            k: 3,
        });
        let split = split_parallel(&expr);
        assert_eq!(split.stages.len(), 2);
        assert_eq!(split.granularity(), Granularity::Sector);
    }

    #[test]
    fn morsel_run_matches_serial_chain_bytes() {
        let specs = [
            StageSpec::MapValue { func: ValueFunc::Linear { scale: 2.0, offset: 1.0 } },
            StageSpec::RestrictValue { ranges: vec![(0.0, 20.0)] },
        ];
        let schema = source().schema().clone();
        let stages = Arc::new(compile_stages(&specs, &schema).expect("compile"));
        let mut serial_chain = ValueRestrict::ranges(
            MapTransform::<_, f32>::new(source(), ValueFunc::Linear { scale: 2.0, offset: 1.0 }),
            vec![(0.0, 20.0)],
        );
        let serial = drain_chunked(&mut serial_chain, 64);
        for workers in [1usize, 3] {
            let pool = WorkerPool::new(workers);
            let mut inner = source();
            let mut merged = Vec::new();
            let report =
                run_morsels(&mut inner, &stages, &pool, &PipelineObs::default(), 64, |item| {
                    item.for_each_element(&mut |el| merged.push(el.clone()))
                });
            assert_eq!(merged, serial, "workers {workers}");
            assert_eq!(report.run.protocol_violations, 0);
            assert!(report.morsels > 0);
            assert_eq!(report.run.per_op.len(), 1 + 2, "inner source + two stages");
            assert_eq!(report.run.per_op[1].name, "map_value");
        }
    }

    #[test]
    fn empty_stage_suffix_degenerates_to_run_chunked() {
        let stages = Arc::new(CompiledStages::empty());
        let pool = WorkerPool::new(2);
        let mut inner = source();
        let report = run_morsels(&mut inner, &stages, &pool, &PipelineObs::default(), 128, |_| {});
        assert_eq!(report.morsels, 0);
        assert_eq!(report.run.points_delivered, 300);
        assert_eq!(report.run.sectors, 3);
        assert_eq!(report.run.pull_latency.count, report.run.elements);
    }

    #[test]
    fn compile_probes_stage_names() {
        let specs = [
            StageSpec::MapValue { func: ValueFunc::Abs },
            StageSpec::Stretch {
                mode: StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
                scope: StretchScope::Frame,
            },
        ];
        let schema = source().schema().clone();
        let stages = compile_stages(&specs, &schema).expect("compile");
        assert_eq!(stages.len(), 2);
        assert_eq!(stages.names().len(), 2);
        assert_eq!(stages.granularity(), Granularity::Frame);
        assert!(!stages.is_empty());
    }
}
