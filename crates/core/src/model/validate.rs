//! Element-protocol validation and failure injection.
//!
//! A GeoStream's element sequence obeys invariants that downstream
//! operators rely on (frames nest in sectors, points fall inside the
//! current frame's cell box and the sector lattice, identifiers do not
//! repeat). [`Validator`] is a transparent adapter that checks them at
//! runtime — used in tests, at ingest boundaries of the DSMS, and as a
//! debugging aid — recording violations without disturbing the stream.

use super::element::Element;
use super::stream::GeoStream;
use crate::model::StreamSchema;
use crate::stats::{OpReport, OpStats};
use geostreams_geo::CellBox;
use std::collections::HashSet;

/// A protocol violation found by the [`Validator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `FrameStart` while another frame is open, or outside a sector.
    FrameOutsideSector,
    /// Nested frame without closing the previous one.
    OverlappingFrames,
    /// `FrameEnd`/`SectorEnd` without a matching start.
    UnmatchedEnd,
    /// A point outside any open frame.
    PointOutsideFrame,
    /// A point cell outside the frame's declared cell box.
    PointOutsideFrameBox,
    /// A point cell outside the sector lattice.
    PointOutsideLattice,
    /// A sector id seen before.
    DuplicateSectorId,
    /// A frame id seen before.
    DuplicateFrameId,
    /// Frame timestamp disagrees with sector timestamp under sector-id
    /// semantics.
    TimestampMismatch,
    /// Stream ended with an open frame or sector.
    TruncatedStream,
}

/// Transparent protocol checker.
pub struct Validator<S: GeoStream> {
    input: S,
    /// Violations recorded so far, with the element ordinal they
    /// occurred at.
    pub violations: Vec<(u64, Violation)>,
    position: u64,
    sector: Option<(u64, CellBox, i64)>,
    frame: Option<CellBox>,
    seen_sectors: HashSet<u64>,
    seen_frames: HashSet<u64>,
    ended: bool,
}

impl<S: GeoStream> Validator<S> {
    /// Wraps a stream.
    pub fn new(input: S) -> Self {
        Validator {
            input,
            violations: Vec::new(),
            position: 0,
            sector: None,
            frame: None,
            seen_sectors: HashSet::new(),
            seen_frames: HashSet::new(),
            ended: false,
        }
    }

    /// True when no violations were recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn record(&mut self, v: Violation) {
        self.violations.push((self.position, v));
    }
}

impl<S: GeoStream> GeoStream for Validator<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        self.input.schema()
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        let el = match self.input.next_element() {
            Some(el) => el,
            None => {
                if !self.ended {
                    self.ended = true;
                    if self.frame.is_some() || self.sector.is_some() {
                        self.record(Violation::TruncatedStream);
                    }
                }
                return None;
            }
        };
        self.position += 1;
        match &el {
            Element::SectorStart(si) => {
                if self.sector.is_some() {
                    self.record(Violation::UnmatchedEnd);
                }
                if !self.seen_sectors.insert(si.sector_id) {
                    self.record(Violation::DuplicateSectorId);
                }
                self.sector = Some((
                    si.sector_id,
                    CellBox::full(si.lattice.width, si.lattice.height),
                    si.timestamp.value(),
                ));
                self.frame = None;
            }
            Element::FrameStart(fi) => {
                match &self.sector {
                    None => self.record(Violation::FrameOutsideSector),
                    Some((_, _, sector_ts)) => {
                        if self.schema().time_semantics == crate::model::TimeSemantics::SectorId
                            && fi.timestamp.value() != *sector_ts
                        {
                            self.record(Violation::TimestampMismatch);
                        }
                    }
                }
                if self.frame.is_some() {
                    self.record(Violation::OverlappingFrames);
                }
                if !self.seen_frames.insert(fi.frame_id) {
                    self.record(Violation::DuplicateFrameId);
                }
                self.frame = Some(fi.cells);
            }
            Element::Point(p) => {
                let frame_box = self.frame;
                let lattice_box = self.sector.map(|(_, b, _)| b);
                match frame_box {
                    None => self.record(Violation::PointOutsideFrame),
                    Some(frame_box) => {
                        if !frame_box.contains(p.cell) {
                            self.record(Violation::PointOutsideFrameBox);
                        }
                        if let Some(lattice_box) = lattice_box {
                            if !lattice_box.contains(p.cell) {
                                self.record(Violation::PointOutsideLattice);
                            }
                        }
                    }
                }
            }
            Element::FrameEnd(_) => {
                if self.frame.take().is_none() {
                    self.record(Violation::UnmatchedEnd);
                }
            }
            Element::SectorEnd(_) => {
                if self.frame.is_some() {
                    self.record(Violation::TruncatedStream);
                    self.frame = None;
                }
                if self.sector.take().is_none() {
                    self.record(Violation::UnmatchedEnd);
                }
            }
        }
        Some(el)
    }

    fn op_stats(&self) -> OpStats {
        self.input.op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Element, FrameEnd, SectorEnd, StreamSchema, Timestamp, VecStream};
    use geostreams_geo::{Cell, Crs, LatticeGeoref, Rect};

    fn lattice() -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4)
    }

    fn clean_elements() -> Vec<Element<f32>> {
        let mut s: VecStream<f32> =
            VecStream::single_sector("x", lattice(), 0, |c, r| f64::from(c + r));
        s.drain_elements()
    }

    fn validate(els: Vec<Element<f32>>) -> Vec<Violation> {
        let mut v = Validator::new(VecStream::new(StreamSchema::new("x", Crs::LatLon), els));
        while v.next_element().is_some() {}
        let _ = v.next_element(); // trigger end-of-stream checks
        v.violations.into_iter().map(|(_, x)| x).collect()
    }

    #[test]
    fn well_formed_streams_are_clean() {
        assert!(validate(clean_elements()).is_empty());
    }

    #[test]
    fn all_generated_streams_are_clean() {
        // Every operator and source in the crate must satisfy the
        // protocol; spot-check a deep pipeline.
        use crate::ops::{Downsample, FocalFunc, FocalTransform, Magnify, SpatialRestrict};
        use geostreams_geo::Region;
        let src: VecStream<f32> =
            VecStream::sectors("x", lattice(), 3, |s, c, r| f64::from(c + r) + s as f64);
        let op = SpatialRestrict::new(src, Region::Rect(Rect::new(0.5, 0.5, 3.5, 3.5)));
        let op = Magnify::new(op, 2);
        let op = FocalTransform::new(op, FocalFunc::Mean, 3);
        let op = Downsample::new(op, 2);
        let mut v = Validator::new(op);
        while v.next_element().is_some() {}
        let _ = v.next_element();
        assert!(v.is_clean(), "{:?}", v.violations);
    }

    #[test]
    fn detects_point_outside_frame() {
        let mut els = clean_elements();
        // Move a point before the first FrameStart.
        let p = Element::point(Cell::new(0, 0), 1.0f32);
        els.insert(1, p);
        let vs = validate(els);
        assert!(vs.contains(&Violation::PointOutsideFrame), "{vs:?}");
    }

    #[test]
    fn detects_out_of_box_point() {
        let mut els = clean_elements();
        // Inject a point with a cell outside the lattice into a frame.
        let idx = els.iter().position(|e| matches!(e, Element::FrameStart(_))).unwrap();
        els.insert(idx + 1, Element::point(Cell::new(99, 99), 1.0f32));
        let vs = validate(els);
        assert!(vs.contains(&Violation::PointOutsideFrameBox));
        assert!(vs.contains(&Violation::PointOutsideLattice));
    }

    #[test]
    fn detects_unmatched_ends() {
        let els: Vec<Element<f32>> = vec![
            Element::FrameEnd(FrameEnd { frame_id: 0, sector_id: 0 }),
            Element::SectorEnd(SectorEnd { sector_id: 0 }),
        ];
        let vs = validate(els);
        assert_eq!(vs.iter().filter(|v| **v == Violation::UnmatchedEnd).count(), 2, "{vs:?}");
    }

    #[test]
    fn detects_truncation() {
        let mut els = clean_elements();
        els.truncate(els.len() - 2); // drop last FrameEnd + SectorEnd
        let vs = validate(els);
        assert!(vs.contains(&Violation::TruncatedStream), "{vs:?}");
    }

    #[test]
    fn detects_duplicate_ids() {
        let mut els = clean_elements();
        let dup = els.clone();
        els.extend(dup); // replay the same sector id / frame ids
        let vs = validate(els);
        assert!(vs.contains(&Violation::DuplicateSectorId));
        assert!(vs.contains(&Violation::DuplicateFrameId));
    }

    #[test]
    fn detects_timestamp_mismatch() {
        let mut els = clean_elements();
        for el in &mut els {
            if let Element::FrameStart(fi) = el {
                fi.timestamp = Timestamp::new(999);
                break;
            }
        }
        let vs = validate(els);
        assert!(vs.contains(&Violation::TimestampMismatch));
    }

    #[test]
    fn validator_is_transparent() {
        let base = clean_elements();
        let mut v =
            Validator::new(VecStream::new(StreamSchema::new("x", Crs::LatLon), base.clone()));
        let mut passed = Vec::new();
        while let Some(el) = v.next_element() {
            passed.push(el);
        }
        assert_eq!(passed, base);
    }
}
