//! The GeoStreams data model (§2 of the paper).
//!
//! * A **point** is `x = ⟨s, t⟩` — a spatial location on a regularly
//!   spaced lattice plus a [`Timestamp`].
//! * A **stream** `G : X → V` maps points to values of a value set; it is
//!   transported as a sequence of [`Element`]s interleaving point records
//!   with frame and scan-sector metadata.
//! * An **image** is the subset of a stream sharing one timestamp; the
//!   delivery operator reassembles it.
//! * A **GeoStream** attaches a coordinate system via the lattice
//!   georeference carried in the sector metadata — see [`StreamSchema`].

pub mod chunk;
mod element;
mod repair;
mod schema;
mod split;
mod stream;
mod timestamp;
mod validate;

pub use chunk::{
    drain_chunked, pack_queue, pool_counts, Chunk, ChunkOrMarker, Marker, DEFAULT_CHUNK_BUDGET,
};
pub use element::{Element, FrameEnd, FrameInfo, PointRecord, SectorEnd, SectorInfo};
pub use repair::{RepairCounters, RepairProbe, RepairStats, SectorCompleteness, StreamRepair};
pub use schema::{Organization, StreamSchema};
pub use split::{split2, tee2, SideStream, TeeStream};
pub use stream::{
    drain_points_of, BoxedF32Stream, ChannelLike, ChunkChannel, GeoStream, VecStream,
};
pub use timestamp::{TimeSemantics, TimeSet, Timestamp};
pub use validate::{Validator, Violation};
