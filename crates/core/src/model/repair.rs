//! Gap detection and frame finalization for degraded streams.
//!
//! The element protocol ([`super::element`]) is what frame-scoped
//! operators key their buffering on: `stretch`, `aggregate` and
//! `compose` hold points until the `FrameEnd`/`SectorEnd` marker that
//! closes the scope (§3). Over a real downlink those markers — and the
//! rows they close — get lost, and a naive pipeline blocks forever on a
//! frame that will never complete. [`Validator`](super::Validator)
//! *detects* such damage; [`StreamRepair`] goes further and **repairs
//! the framing** so downstream operators always terminate:
//!
//! * a missing `FrameEnd`/`SectorEnd` is synthesized as soon as the
//!   scan-sector metadata proves the scope is over (a new frame/sector
//!   starts, or the stream ends) — the frame is finalized *partial*
//!   with a completeness ratio derived from its declared cell box;
//! * duplicated frames and points (link-layer retransmissions) are
//!   dropped, so aggregates are not double-counted;
//! * out-of-order and orphaned elements (a point after its frame was
//!   finalized, an end marker for a scope that is not open) are dropped
//!   and counted as disorder rather than corrupting open scopes.
//!
//! The output of `StreamRepair` is always protocol-valid — it passes
//! [`Validator`](super::Validator) clean even when the input is
//! arbitrarily damaged — which is the invariant the supervised DSMS
//! runtime relies on: queries over a degraded feed *complete*, with the
//! degradation quantified in [`RepairStats`] and per-sector
//! [`SectorCompleteness`] records instead of silently wrong output.

use super::chunk::{pack_queue, ChunkOrMarker};
use super::element::{Element, FrameEnd, FrameInfo, SectorEnd};
use super::stream::GeoStream;
use crate::model::StreamSchema;
use crate::obs::Counter;
use crate::stats::{OpReport, OpStats};
use geostreams_geo::Cell;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Counters of everything [`StreamRepair`] detected and fixed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Input elements consumed.
    pub elements_in: u64,
    /// Discontinuities: frames finalized incomplete, plus wholly
    /// missing frames/sectors inferred from identifier jumps.
    pub gaps: u64,
    /// Points missing from finalized frames (declared box area minus
    /// distinct points received).
    pub gap_points: u64,
    /// Duplicate frames dropped (frame id already delivered).
    pub duplicate_frames: u64,
    /// Duplicate points dropped (cell already delivered in its frame).
    pub duplicate_points: u64,
    /// Out-of-order observations: mismatched end markers, row
    /// regressions within a sector.
    pub disorder: u64,
    /// Orphaned elements dropped (no open scope to attribute them to).
    pub orphans: u64,
    /// `FrameEnd` markers synthesized.
    pub synthesized_frame_ends: u64,
    /// `SectorEnd` markers synthesized.
    pub synthesized_sector_ends: u64,
    /// Frames finalized with missing points.
    pub partial_frames: u64,
    /// Sectors finalized with missing points.
    pub partial_sectors: u64,
    /// Points expected across all opened sectors (lattice areas).
    pub expected_points: u64,
    /// Distinct points actually delivered.
    pub received_points: u64,
    /// Input ended with an open frame or sector.
    pub truncated: bool,
}

impl RepairStats {
    /// Fraction of expected points delivered, in `[0, 1]`; `1.0` for an
    /// empty stream.
    pub fn completeness(&self) -> f64 {
        if self.expected_points == 0 {
            1.0
        } else {
            self.received_points as f64 / self.expected_points as f64
        }
    }

    /// True when nothing had to be repaired.
    pub fn is_clean(&self) -> bool {
        self.gaps == 0
            && self.duplicate_frames == 0
            && self.duplicate_points == 0
            && self.disorder == 0
            && self.orphans == 0
            && self.synthesized_frame_ends == 0
            && self.synthesized_sector_ends == 0
            && !self.truncated
    }
}

/// Per-sector completeness record, finalized when the sector closes
/// (or is force-closed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectorCompleteness {
    /// Sector identifier.
    pub sector_id: u64,
    /// Spectral band of the stream.
    pub band: u16,
    /// Points the sector lattice declares.
    pub expected_points: u64,
    /// Distinct points delivered.
    pub received_points: u64,
    /// Frames delivered (including partial ones).
    pub frames_seen: u64,
    /// The closing `SectorEnd` was synthesized, not received.
    pub synthesized_end: bool,
}

impl SectorCompleteness {
    /// Fraction of the sector's declared points delivered.
    pub fn ratio(&self) -> f64 {
        if self.expected_points == 0 {
            1.0
        } else {
            self.received_points as f64 / self.expected_points as f64
        }
    }
}

/// Shared view of a [`StreamRepair`]'s outcome; stays readable after
/// the stream was moved into a query thread. Synced at sector
/// boundaries and at end of stream.
#[derive(Debug, Default)]
pub struct RepairProbe {
    inner: Mutex<ProbeState>,
}

#[derive(Debug, Default)]
struct ProbeState {
    stats: RepairStats,
    sectors: Vec<SectorCompleteness>,
}

impl RepairProbe {
    /// Snapshot of the repair counters.
    pub fn stats(&self) -> RepairStats {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats.clone()
    }

    /// Snapshot of the per-sector completeness records.
    pub fn sectors(&self) -> Vec<SectorCompleteness> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).sectors.clone()
    }
}

/// Live metric hooks, incremented as repairs happen (in addition to the
/// cumulative [`RepairStats`]). The DSMS wires these to its
/// `geostreams_*` registry so recovery is visible on `/metrics` while
/// queries run.
#[derive(Debug, Clone, Default)]
pub struct RepairCounters {
    /// Gap detections (incomplete frames, missing frames/sectors).
    pub gaps: Counter,
    /// Duplicate frames + points dropped.
    pub duplicates: Counter,
    /// Disorder observations.
    pub disorder: Counter,
    /// Frames finalized partial.
    pub partial_frames: Counter,
}

/// An open frame being tracked.
struct OpenFrame {
    info: FrameInfo,
    expected: u64,
    cells: HashSet<Cell>,
}

/// An open sector being tracked.
struct OpenSector {
    id: u64,
    band: u16,
    expected: u64,
    received: u64,
    frames_seen: u64,
    last_frame_id: Option<u64>,
    last_row: Option<u32>,
}

/// A normalizing adapter that turns an arbitrarily damaged element
/// sequence into a protocol-valid one (see the module docs).
pub struct StreamRepair<S: GeoStream> {
    input: S,
    out: VecDeque<Element<S::V>>,
    stats: RepairStats,
    sector: Option<OpenSector>,
    frame: Option<OpenFrame>,
    /// Frame ids already delivered (duplicate suppression).
    seen_frames: HashSet<u64>,
    /// Inside a duplicate frame whose elements are being discarded.
    dup_skip: Option<u64>,
    last_sector_id: Option<u64>,
    ended: bool,
    probe: Arc<RepairProbe>,
    counters: Option<RepairCounters>,
}

/// The repair stage is the protocol's safety net: it tolerates
/// arbitrary (chaotic) input and restores both bracketing and lattice
/// order on its output, which is what re-certifies everything above it.
pub fn repair_contract() -> crate::ops::ProtocolContract {
    crate::ops::ProtocolContract::repairing("repair")
}

impl<S: GeoStream> StreamRepair<S> {
    /// Wraps a stream with a fresh probe.
    pub fn new(input: S) -> Self {
        Self::with_probe(input, Arc::new(RepairProbe::default()))
    }

    /// Protocol contract (see [`repair_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        repair_contract()
    }

    /// Wraps a stream, reporting into a caller-supplied probe (so the
    /// probe can be held before the stream is moved into a thread).
    pub fn with_probe(input: S, probe: Arc<RepairProbe>) -> Self {
        StreamRepair {
            input,
            out: VecDeque::new(),
            stats: RepairStats::default(),
            sector: None,
            frame: None,
            seen_frames: HashSet::new(),
            dup_skip: None,
            last_sector_id: None,
            ended: false,
            probe,
            counters: None,
        }
    }

    /// Attaches live metric counters (builder style).
    pub fn with_counters(mut self, counters: RepairCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Shared handle to the repair outcome.
    pub fn probe(&self) -> Arc<RepairProbe> {
        Arc::clone(&self.probe)
    }

    /// The repair counters so far.
    pub fn repair_stats(&self) -> RepairStats {
        self.stats.clone()
    }

    fn sync_probe(&self, sector: Option<SectorCompleteness>) {
        let mut guard = self.probe.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.stats = self.stats.clone();
        if let Some(s) = sector {
            guard.sectors.push(s);
        }
    }

    fn note_gap(&mut self, n: u64) {
        self.stats.gaps += n;
        if let Some(c) = &self.counters {
            c.gaps.add(n);
        }
    }

    fn note_duplicate(&mut self) {
        if let Some(c) = &self.counters {
            c.duplicates.inc();
        }
    }

    fn note_disorder(&mut self) {
        self.stats.disorder += 1;
        if let Some(c) = &self.counters {
            c.disorder.inc();
        }
    }

    /// Finalizes the open frame (if any), synthesizing its `FrameEnd`
    /// when `synthesize` is set, and accounts its completeness.
    fn close_frame(&mut self, synthesize: bool) {
        let Some(open) = self.frame.take() else { return };
        let seen = open.cells.len() as u64;
        if seen < open.expected {
            self.stats.partial_frames += 1;
            self.stats.gap_points += open.expected - seen;
            self.note_gap(1);
            if let Some(c) = &self.counters {
                c.partial_frames.inc();
            }
        }
        if synthesize {
            self.stats.synthesized_frame_ends += 1;
        }
        self.out.push_back(Element::FrameEnd(FrameEnd {
            frame_id: open.info.frame_id,
            sector_id: open.info.sector_id,
        }));
    }

    /// Handles the end of the input stream: force-closes open scopes
    /// and syncs the probe. Idempotent via `self.ended`.
    fn finish_input(&mut self) {
        self.ended = true;
        if self.frame.is_some() || self.sector.is_some() {
            self.stats.truncated = true;
            self.close_frame(true);
            self.close_sector(true);
        } else {
            self.sync_probe(None);
        }
    }

    /// Runs one input element through the repair state machine, queueing
    /// whatever survives onto `self.out`. This is the shared body of the
    /// scalar and chunked paths, so both produce identical output and
    /// identical [`RepairStats`].
    fn process_one(&mut self, el: Element<S::V>) {
        self.stats.elements_in += 1;
        match el {
            Element::SectorStart(si) => {
                self.dup_skip = None;
                if let Some(open) = &self.sector {
                    if open.id == si.sector_id {
                        // Retransmitted SectorStart for the open
                        // sector: drop.
                        self.stats.duplicate_frames += 1;
                        self.note_duplicate();
                        return;
                    }
                    // Previous sector never closed: force-close it
                    // (and any open frame) before opening the new
                    // one.
                    self.close_frame(true);
                    self.close_sector(true);
                }
                if let Some(prev) = self.last_sector_id {
                    if si.sector_id > prev + 1 {
                        // Whole sectors missing from the downlink.
                        self.note_gap(si.sector_id - prev - 1);
                    }
                }
                self.last_sector_id = Some(si.sector_id);
                let area = u64::from(si.lattice.width) * u64::from(si.lattice.height);
                self.stats.expected_points += area;
                self.sector = Some(OpenSector {
                    id: si.sector_id,
                    band: si.band,
                    expected: area,
                    received: 0,
                    frames_seen: 0,
                    last_frame_id: None,
                    last_row: None,
                });
                self.out.push_back(Element::SectorStart(si));
            }
            Element::FrameStart(fi) => {
                self.dup_skip = None;
                if self.sector.is_none() {
                    // No sector to attribute the frame to (its
                    // SectorStart is lost or still in flight): drop
                    // the frame header; its points will be dropped
                    // as orphans.
                    self.stats.orphans += 1;
                    self.note_disorder();
                    return;
                }
                if !self.seen_frames.insert(fi.frame_id) {
                    // Retransmitted frame: discard its whole body.
                    self.stats.duplicate_frames += 1;
                    self.note_duplicate();
                    self.dup_skip = Some(fi.frame_id);
                    return;
                }
                // Previous frame never closed: finalize it partial.
                self.close_frame(true);
                let expected = u64::from(fi.cells.col_max - fi.cells.col_min + 1)
                    * u64::from(fi.cells.row_max - fi.cells.row_min + 1);
                let mut gap_frames = 0u64;
                let mut disorders = 0u32;
                if let Some(open) = &mut self.sector {
                    open.frames_seen += 1;
                    if let Some(prev) = open.last_frame_id {
                        if fi.frame_id > prev + 1 {
                            // Whole frames (scan rows) missing.
                            gap_frames = fi.frame_id - prev - 1;
                        } else if fi.frame_id < prev {
                            disorders += 1;
                        }
                    }
                    open.last_frame_id = Some(fi.frame_id);
                    if let Some(prev_row) = open.last_row {
                        if fi.cells.row_min < prev_row {
                            disorders += 1;
                        }
                    }
                    open.last_row = Some(fi.cells.row_min);
                }
                if gap_frames > 0 {
                    self.note_gap(gap_frames);
                }
                for _ in 0..disorders {
                    self.note_disorder();
                }
                self.frame = Some(OpenFrame { info: fi, expected, cells: HashSet::new() });
                self.out.push_back(Element::FrameStart(fi));
            }
            Element::Point(p) => {
                if self.dup_skip.is_some() {
                    self.stats.duplicate_points += 1;
                    self.note_duplicate();
                    return;
                }
                let Some(open) = &mut self.frame else {
                    self.stats.orphans += 1;
                    return;
                };
                if !open.cells.insert(p.cell) {
                    self.stats.duplicate_points += 1;
                    self.note_duplicate();
                    return;
                }
                self.stats.received_points += 1;
                if let Some(sec) = &mut self.sector {
                    sec.received += 1;
                }
                self.out.push_back(Element::Point(p));
            }
            Element::FrameEnd(fe) => {
                if self.dup_skip == Some(fe.frame_id) {
                    self.dup_skip = None;
                    return;
                }
                self.dup_skip = None;
                match &self.frame {
                    Some(open) if open.info.frame_id == fe.frame_id => {
                        self.close_frame(false);
                    }
                    Some(_) => {
                        // An end marker for a frame that is not
                        // open — out-of-order or already
                        // force-closed. Keep the open frame.
                        self.note_disorder();
                        self.stats.orphans += 1;
                    }
                    None => {
                        self.stats.orphans += 1;
                    }
                }
            }
            Element::SectorEnd(se) => {
                self.dup_skip = None;
                match &self.sector {
                    Some(open) if open.id == se.sector_id => {
                        // Close any frame the lost markers left
                        // open, then the sector itself.
                        self.close_frame(true);
                        self.close_sector(false);
                    }
                    Some(_) => {
                        self.note_disorder();
                        self.stats.orphans += 1;
                    }
                    None => {
                        self.stats.orphans += 1;
                    }
                }
            }
        }
    }

    /// Finalizes the open sector (if any); `synthesize` emits the
    /// missing `SectorEnd`.
    fn close_sector(&mut self, synthesize: bool) {
        let Some(open) = self.sector.take() else { return };
        if open.received < open.expected {
            self.stats.partial_sectors += 1;
        }
        if synthesize {
            self.stats.synthesized_sector_ends += 1;
        }
        self.out.push_back(Element::SectorEnd(SectorEnd { sector_id: open.id }));
        let record = SectorCompleteness {
            sector_id: open.id,
            band: open.band,
            expected_points: open.expected,
            received_points: open.received,
            frames_seen: open.frames_seen,
            synthesized_end: synthesize,
        };
        self.sync_probe(Some(record));
    }
}

impl<S: GeoStream> GeoStream for StreamRepair<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        self.input.schema()
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.out.pop_front() {
                return Some(el);
            }
            if self.ended {
                return None;
            }
            match self.input.next_element() {
                Some(el) => self.process_one(el),
                None => self.finish_input(),
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<S::V>> {
        loop {
            if let Some(item) = pack_queue(&mut self.out, budget) {
                return Some(item);
            }
            if self.ended {
                return None;
            }
            match self.input.next_chunk(budget.max(1)) {
                Some(ChunkOrMarker::Marker(m)) => self.process_one(m.into_element()),
                Some(ChunkOrMarker::Chunk(mut c)) => {
                    for p in c.points.drain(..) {
                        self.process_one(Element::Point(p));
                    }
                    if let Some(m) = c.end.take() {
                        self.process_one(m.into_element());
                    }
                    c.recycle();
                }
                None => self.finish_input(),
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.input.op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Element, StreamSchema, Validator, VecStream};
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn lattice() -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4)
    }

    fn clean_elements(n_sectors: u64) -> Vec<Element<f32>> {
        let mut s: VecStream<f32> =
            VecStream::sectors("x", lattice(), n_sectors, |s, c, r| f64::from(c + r) + s as f64);
        s.drain_elements()
    }

    fn repair(els: Vec<Element<f32>>) -> (Vec<Element<f32>>, RepairStats, Vec<SectorCompleteness>) {
        let mut r = StreamRepair::new(VecStream::new(StreamSchema::new("x", Crs::LatLon), els));
        let out = r.drain_elements();
        let probe = r.probe();
        (out, probe.stats(), probe.sectors())
    }

    /// The repaired stream must always be protocol-valid.
    fn assert_valid(els: &[Element<f32>]) {
        let mut v =
            Validator::new(VecStream::new(StreamSchema::new("x", Crs::LatLon), els.to_vec()));
        while v.next_element().is_some() {}
        let _ = v.next_element();
        assert!(v.is_clean(), "repaired stream invalid: {:?}", v.violations);
    }

    #[test]
    fn clean_stream_is_untouched() {
        let base = clean_elements(2);
        let (out, stats, sectors) = repair(base.clone());
        assert_eq!(out, base);
        assert!(stats.is_clean(), "{stats:?}");
        assert_eq!(stats.completeness(), 1.0);
        assert_eq!(sectors.len(), 2);
        assert!(sectors.iter().all(|s| s.ratio() == 1.0 && !s.synthesized_end));
    }

    #[test]
    fn missing_frame_end_is_synthesized() {
        let mut els = clean_elements(1);
        // Remove the first FrameEnd: its frame stays open until the
        // next FrameStart proves it over.
        let idx = els.iter().position(|e| matches!(e, Element::FrameEnd(_))).unwrap();
        els.remove(idx);
        let (out, stats, _) = repair(els);
        assert_valid(&out);
        assert_eq!(stats.synthesized_frame_ends, 1);
        // All points were present, so the frame is complete despite the
        // lost marker.
        assert_eq!(stats.partial_frames, 0);
        assert_eq!(stats.completeness(), 1.0);
    }

    #[test]
    fn missing_sector_end_is_synthesized() {
        let mut els = clean_elements(2);
        // Remove the first SectorEnd; the next SectorStart forces the
        // close.
        let idx = els.iter().position(|e| matches!(e, Element::SectorEnd(_))).unwrap();
        els.remove(idx);
        let (out, stats, sectors) = repair(els);
        assert_valid(&out);
        assert_eq!(stats.synthesized_sector_ends, 1);
        assert!(sectors[0].synthesized_end);
        assert!(!sectors[1].synthesized_end);
    }

    #[test]
    fn dropped_points_yield_partial_frames_with_ratio() {
        let mut els = clean_elements(1);
        // Drop 3 of the 16 points.
        let mut dropped = 0;
        els.retain(|e| {
            if dropped < 3 && e.is_point() {
                dropped += 1;
                false
            } else {
                true
            }
        });
        let (out, stats, sectors) = repair(els);
        assert_valid(&out);
        assert_eq!(stats.gap_points, 3);
        assert!(stats.partial_frames >= 1);
        assert_eq!(stats.expected_points, 16);
        assert_eq!(stats.received_points, 13);
        assert!((stats.completeness() - 13.0 / 16.0).abs() < 1e-12);
        assert!((sectors[0].ratio() - 13.0 / 16.0).abs() < 1e-12);
        assert_eq!(stats.partial_sectors, 1);
    }

    #[test]
    fn duplicate_frames_are_dropped() {
        let mut els = clean_elements(1);
        // Retransmit the first frame (FrameStart..FrameEnd block).
        let start = els.iter().position(|e| matches!(e, Element::FrameStart(_))).unwrap();
        let end = els.iter().position(|e| matches!(e, Element::FrameEnd(_))).unwrap();
        let block: Vec<_> = els[start..=end].to_vec();
        els.splice(end + 1..end + 1, block);
        let (out, stats, _) = repair(els);
        assert_valid(&out);
        assert_eq!(stats.duplicate_frames, 1);
        assert_eq!(out, clean_elements(1), "retransmission removed entirely");
        assert_eq!(stats.completeness(), 1.0);
    }

    #[test]
    fn duplicate_points_are_dropped() {
        let mut els = clean_elements(1);
        let idx = els.iter().position(Element::is_point).unwrap();
        let p = els[idx].clone();
        els.insert(idx, p);
        let (out, stats, _) = repair(els);
        assert_valid(&out);
        assert_eq!(stats.duplicate_points, 1);
        assert_eq!(out, clean_elements(1));
    }

    #[test]
    fn truncated_stream_is_closed_out() {
        let mut els = clean_elements(1);
        els.truncate(els.len() - 4); // inside the last frame
        let (out, stats, sectors) = repair(els);
        assert_valid(&out);
        assert!(stats.truncated);
        assert_eq!(stats.synthesized_frame_ends, 1);
        assert_eq!(stats.synthesized_sector_ends, 1);
        assert!(stats.completeness() < 1.0);
        assert!(sectors[0].synthesized_end);
    }

    #[test]
    fn orphan_elements_are_dropped_not_propagated() {
        let mut els = clean_elements(1);
        // A stray point before any sector, and a stray FrameEnd after
        // everything closed.
        els.insert(0, Element::point(geostreams_geo::Cell::new(0, 0), 1.0f32));
        els.push(Element::FrameEnd(FrameEnd { frame_id: 99, sector_id: 0 }));
        let (out, stats, _) = repair(els);
        assert_valid(&out);
        assert_eq!(stats.orphans, 2);
        assert_eq!(out, clean_elements(1));
    }

    #[test]
    fn mismatched_frame_end_counts_disorder() {
        let mut els = clean_elements(1);
        // Swap a FrameEnd with the following FrameStart (pairwise
        // reorder at a frame boundary).
        let idx = els.iter().position(|e| matches!(e, Element::FrameEnd(_))).unwrap();
        els.swap(idx, idx + 1);
        let (out, stats, _) = repair(els);
        assert_valid(&out);
        assert!(stats.disorder >= 1, "{stats:?}");
        assert!(stats.synthesized_frame_ends >= 1);
    }

    #[test]
    fn missing_whole_frames_count_as_gaps() {
        let mut els = clean_elements(1);
        // Remove the second frame entirely (FrameStart..FrameEnd).
        let starts: Vec<usize> = els
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, Element::FrameStart(_)).then_some(i))
            .collect();
        let s = starts[1];
        let e = els[s..].iter().position(|e| matches!(e, Element::FrameEnd(_))).unwrap() + s;
        els.drain(s..=e);
        let (out, stats, sectors) = repair(els);
        assert_valid(&out);
        assert!(stats.gaps >= 1, "{stats:?}");
        assert_eq!(stats.received_points, 12);
        assert_eq!(sectors[0].frames_seen, 3);
        assert!((sectors[0].ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn missing_whole_sectors_count_as_gaps() {
        let els = clean_elements(3);
        // Keep sectors 0 and 2; drop sector 1 entirely.
        let mut keep = Vec::new();
        let mut current = 0u64;
        for el in els {
            if let Element::SectorStart(si) = &el {
                current = si.sector_id;
            }
            if current != 1 {
                keep.push(el);
            }
        }
        let (out, stats, sectors) = repair(keep);
        assert_valid(&out);
        assert!(stats.gaps >= 1);
        assert_eq!(sectors.len(), 2);
        // Expected points only count sectors that were announced.
        assert_eq!(stats.expected_points, 32);
    }

    #[test]
    fn live_counters_track_repairs() {
        let counters = RepairCounters::default();
        let mut els = clean_elements(1);
        let idx = els.iter().position(Element::is_point).unwrap();
        let p = els[idx].clone();
        els.insert(idx, p);
        let mut r = StreamRepair::new(VecStream::new(StreamSchema::new("x", Crs::LatLon), els))
            .with_counters(counters.clone());
        let _ = r.drain_elements();
        assert_eq!(counters.duplicates.get(), 1);
        assert_eq!(counters.gaps.get(), 0);
    }

    #[test]
    fn frame_scoped_operator_terminates_on_damaged_input() {
        // The motivating case: stretch buffers per frame; a lost
        // FrameEnd must not make it buffer forever.
        use crate::ops::{StretchMode, StretchScope, StretchTransform};
        let mut els = clean_elements(1);
        els.retain(|e| !matches!(e, Element::FrameEnd(_) | Element::SectorEnd(_)));
        let src = StreamRepair::new(VecStream::new(StreamSchema::new("x", Crs::LatLon), els));
        let mut op = StretchTransform::new(
            src,
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Frame,
        );
        let out = op.drain_elements();
        assert!(out.iter().filter(|e| e.is_point()).count() > 0);
        assert_valid(&out);
    }
}
