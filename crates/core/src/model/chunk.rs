//! Chunked (vectorized) element transport.
//!
//! The scalar [`GeoStream::next_element`] protocol moves one element per
//! virtual call — for a GOES frame of 20 840 × 10 820 points that is
//! hundreds of millions of dynamic dispatches per frame. This module
//! introduces a batch carrier, [`Chunk`], holding a **contiguous run of
//! points from a single frame**, and the [`ChunkOrMarker`] item type
//! returned by [`GeoStream::next_chunk`].
//!
//! The chunk contract (DESIGN.md §12):
//!
//! * A chunk's `points` never cross a framing marker: every point in one
//!   chunk belongs to the same frame of the same sector.
//! * The marker that *terminated* the run rides along in [`Chunk::end`];
//!   `end == None` means the pull budget was exhausted mid-frame and the
//!   next item continues the same frame.
//! * A marker with no preceding points is delivered standalone as
//!   [`ChunkOrMarker::Marker`].
//! * Flattening an item (points first, then its trailing marker) must
//!   reproduce the scalar element sequence byte for byte; the
//!   `tests/vectorized.rs` differential suite enforces this for every
//!   operator against the scalar oracle.
//! * Point buffers come from a thread-local pool keyed by the pixel
//!   type; call [`Chunk::recycle`] (or [`ChunkOrMarker::recycle`]) when
//!   done so steady-state execution allocates nothing.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

use geostreams_raster::Pixel;

use super::element::{Element, FrameEnd, FrameInfo, PointRecord, SectorEnd, SectorInfo};
use super::stream::GeoStream;

/// Default point budget per [`GeoStream::next_chunk`] pull — large enough
/// to amortize dispatch and timing, small enough to stay cache-resident.
pub const DEFAULT_CHUNK_BUDGET: usize = 1024;

/// A framing marker: any non-point [`Element`]. Markers carry no pixel
/// value, so they pass unchanged through value-type-converting operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Marker {
    /// Opens a scan sector.
    SectorStart(SectorInfo),
    /// Opens a frame within the current sector.
    FrameStart(FrameInfo),
    /// Closes the current frame.
    FrameEnd(FrameEnd),
    /// Closes the current sector.
    SectorEnd(SectorEnd),
}

impl Marker {
    /// Rewraps the marker as a scalar element of any value type.
    pub fn into_element<V>(self) -> Element<V> {
        match self {
            Marker::SectorStart(si) => Element::SectorStart(si),
            Marker::FrameStart(fi) => Element::FrameStart(fi),
            Marker::FrameEnd(fe) => Element::FrameEnd(fe),
            Marker::SectorEnd(se) => Element::SectorEnd(se),
        }
    }

    /// Splits an element into marker or point record.
    pub fn from_element<V>(el: Element<V>) -> Result<Marker, PointRecord<V>> {
        match el {
            Element::Point(p) => Err(p),
            Element::SectorStart(si) => Ok(Marker::SectorStart(si)),
            Element::FrameStart(fi) => Ok(Marker::FrameStart(fi)),
            Element::FrameEnd(fe) => Ok(Marker::FrameEnd(fe)),
            Element::SectorEnd(se) => Ok(Marker::SectorEnd(se)),
        }
    }
}

/// How many pooled buffers to retain per pixel type per worker thread
/// (bounds idle memory).
const POOL_MAX_VECS: usize = 64;

/// How many buffers the process-wide shared pool retains per pixel type
/// (overflow from and hand-off between worker threads).
const SHARED_POOL_MAX_VECS: usize = 256;

/// The shared tier of the chunk pool: a process-wide, mutex-guarded
/// stack of type-erased buffers per pixel type. Every entry is a
/// `Box<Vec<PointRecord<V>>>` for the `V` it is keyed under, so the
/// downcast in [`shared_take`] always succeeds. Sound to share because
/// `Pixel: Send`.
struct SharedPool {
    slots: HashMap<TypeId, Vec<Box<dyn Any + Send>>>,
}

fn shared_pool() -> MutexGuard<'static, SharedPool> {
    static POOL: OnceLock<Mutex<SharedPool>> = OnceLock::new();
    let m = POOL.get_or_init(|| Mutex::new(SharedPool { slots: HashMap::new() }));
    // A poisoned pool only means another thread panicked mid-push; the
    // buffer stacks themselves are always in a consistent state.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Pops one buffer for `V` from the shared pool, if any.
fn shared_take<V: Pixel>() -> Option<Vec<PointRecord<V>>> {
    let mut pool = shared_pool();
    let slot = pool.slots.get_mut(&TypeId::of::<V>())?;
    let boxed = slot.pop()?;
    boxed.downcast::<Vec<PointRecord<V>>>().ok().map(|b| *b)
}

/// Pushes one cleared buffer for `V` into the shared pool (dropping it
/// if the shared tier is full).
fn shared_put<V: Pixel>(v: Vec<PointRecord<V>>) {
    let mut pool = shared_pool();
    let slot = pool.slots.entry(TypeId::of::<V>()).or_default();
    if slot.len() < SHARED_POOL_MAX_VECS {
        slot.push(Box::new(v));
    }
}

/// The thread-local tier: per-type stacks with a [`Drop`] impl that
/// migrates every retained buffer to the shared pool when the thread
/// exits. Before this existed, a worker thread's pooled buffers were
/// stranded (freed but never reusable) at thread exit; now recycle
/// accounting is conserved across thread lifetimes — see
/// `pool_conserves_buffers_across_thread_exit`.
struct LocalPool {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl Drop for LocalPool {
    fn drop(&mut self) {
        let mut pool = shared_pool();
        for (ty, boxed) in self.slots.drain() {
            if let Ok(stack) = boxed.downcast::<Vec<Box<dyn Any + Send>>>() {
                let slot = pool.slots.entry(ty).or_default();
                for buf in *stack {
                    if slot.len() >= SHARED_POOL_MAX_VECS {
                        break;
                    }
                    slot.push(buf);
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread buffer pool, keyed by pixel `TypeId` (sound because
    /// `Pixel: 'static`). Each slot holds a `Vec<Box<dyn Any + Send>>`
    /// of individually boxed buffers so the whole stack can migrate to
    /// the shared pool at thread exit without knowing `V`.
    static CHUNK_POOL: RefCell<LocalPool> = RefCell::new(LocalPool { slots: HashMap::new() });
}

fn local_slot(pool: &mut LocalPool, ty: TypeId) -> Option<&mut Vec<Box<dyn Any + Send>>> {
    pool.slots
        .entry(ty)
        .or_insert_with(|| Box::new(Vec::<Box<dyn Any + Send>>::new()) as Box<dyn Any + Send>)
        .downcast_mut::<Vec<Box<dyn Any + Send>>>()
}

/// Takes a cleared point buffer from the pool (or allocates one).
/// Fast path: the thread-local stack; on miss, the shared pool.
fn pool_get<V: Pixel>(capacity: usize) -> Vec<PointRecord<V>> {
    let local = CHUNK_POOL.try_with(|p| {
        let mut pool = p.borrow_mut();
        local_slot(&mut pool, TypeId::of::<V>())
            .and_then(|stack| stack.pop())
            .and_then(|boxed| boxed.downcast::<Vec<PointRecord<V>>>().ok())
            .map(|b| *b)
    });
    let mut v = match local {
        Ok(Some(v)) => v,
        // Local tier empty (or already torn down): try the shared tier.
        _ => match shared_take::<V>() {
            Some(v) => v,
            None => return Vec::with_capacity(capacity),
        },
    };
    if v.capacity() < capacity {
        v.reserve(capacity - v.capacity());
    }
    v
}

/// Returns a point buffer to the pool for reuse: to the thread-local
/// tier while it has room, overflowing (or falling back during thread
/// teardown) to the shared tier.
fn pool_put<V: Pixel>(mut v: Vec<PointRecord<V>>) {
    if v.capacity() == 0 {
        return;
    }
    v.clear();
    let leftover = CHUNK_POOL.try_with(|p| {
        let mut pool = p.borrow_mut();
        match local_slot(&mut pool, TypeId::of::<V>()) {
            Some(stack) if stack.len() < POOL_MAX_VECS => {
                stack.push(Box::new(std::mem::take(&mut v)));
                None
            }
            _ => Some(std::mem::take(&mut v)),
        }
    });
    match leftover {
        Ok(None) => {}
        Ok(Some(v)) => shared_put(v),
        // TLS already destroyed (thread teardown): recycle cross-thread.
        Err(_) => shared_put(v),
    }
}

/// Pool occupancy for pixel type `V`: `(thread_local, shared)` buffer
/// counts. The conservation regression test and the worker-pool metrics
/// read this; it is not a hot-path API.
pub fn pool_counts<V: Pixel>() -> (usize, usize) {
    let local = CHUNK_POOL
        .try_with(|p| {
            let mut pool = p.borrow_mut();
            local_slot(&mut pool, TypeId::of::<V>()).map(|s| s.len()).unwrap_or(0)
        })
        .unwrap_or(0);
    let shared = shared_pool().slots.get(&TypeId::of::<V>()).map(|s| s.len()).unwrap_or(0);
    (local, shared)
}

/// A contiguous run of points from one frame, plus the marker that
/// terminated the run (if any). See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct Chunk<V: Pixel> {
    /// The point run, in stream order. Never crosses a marker.
    pub points: Vec<PointRecord<V>>,
    /// The marker that ended this run; `None` = budget exhausted
    /// mid-frame (the next item continues the same frame).
    pub end: Option<Marker>,
    /// Causal identity of the producing stage (the ingest pump stamps
    /// its span context here before fan-out). `Copy` metadata: it rides
    /// through channels and clones for free and is excluded from
    /// equality, so traced and untraced runs compare identical.
    pub ctx: Option<crate::obs::TraceContext>,
}

impl<V: Pixel> PartialEq for Chunk<V> {
    fn eq(&self, other: &Self) -> bool {
        // ctx is provenance, not payload: the differential suites
        // compare data content only.
        self.points == other.points && self.end == other.end
    }
}

impl<V: Pixel> Chunk<V> {
    /// A fresh chunk whose buffer comes from the thread-local pool.
    pub fn with_budget(budget: usize) -> Self {
        Chunk { points: pool_get(budget.max(1)), end: None, ctx: None }
    }

    /// Number of points in the run.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the run holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the point buffer to the pool for reuse.
    pub fn recycle(self) {
        pool_put(self.points);
    }
}

/// One item of the chunked pull protocol: either a point run (with an
/// optional trailing marker) or a standalone marker.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkOrMarker<V: Pixel> {
    /// A non-empty point run, optionally terminated by a marker.
    Chunk(Chunk<V>),
    /// A marker with no preceding points.
    Marker(Marker),
}

impl<V: Pixel> ChunkOrMarker<V> {
    /// Number of points carried by this item.
    pub fn point_count(&self) -> usize {
        match self {
            ChunkOrMarker::Chunk(c) => c.points.len(),
            ChunkOrMarker::Marker(_) => 0,
        }
    }

    /// Number of scalar elements this item flattens to (points plus the
    /// marker, if present). Always at least 1 for protocol-valid items.
    pub fn element_count(&self) -> u64 {
        match self {
            ChunkOrMarker::Chunk(c) => c.points.len() as u64 + u64::from(c.end.is_some()),
            ChunkOrMarker::Marker(_) => 1,
        }
    }

    /// The trailing (or standalone) marker, if any.
    pub fn marker(&self) -> Option<&Marker> {
        match self {
            ChunkOrMarker::Chunk(c) => c.end.as_ref(),
            ChunkOrMarker::Marker(m) => Some(m),
        }
    }

    /// Visits the flattened element sequence by reference: points in
    /// order, then the trailing marker.
    pub fn for_each_element(&self, f: &mut dyn FnMut(&Element<V>)) {
        match self {
            ChunkOrMarker::Chunk(c) => {
                for p in &c.points {
                    f(&Element::Point(*p));
                }
                if let Some(m) = &c.end {
                    f(&m.clone().into_element());
                }
            }
            ChunkOrMarker::Marker(m) => f(&m.clone().into_element()),
        }
    }

    /// Consumes the item into its flattened element sequence, recycling
    /// the point buffer.
    pub fn into_elements(self, f: &mut dyn FnMut(Element<V>)) {
        match self {
            ChunkOrMarker::Chunk(mut c) => {
                let end = c.end.take();
                for p in c.points.drain(..) {
                    f(Element::Point(p));
                }
                c.recycle();
                if let Some(m) = end {
                    f(m.into_element());
                }
            }
            ChunkOrMarker::Marker(m) => f(m.into_element()),
        }
    }

    /// Returns the point buffer (if any) to the pool.
    pub fn recycle(self) {
        if let ChunkOrMarker::Chunk(c) = self {
            c.recycle();
        }
    }
}

/// Packs the front of a scalar element queue into one chunk item:
/// a leading marker is returned standalone; otherwise up to `budget`
/// points are drained, folding an immediately following marker into
/// [`Chunk::end`]. Returns `None` when the queue is empty.
///
/// Operators that batch output through an internal `VecDeque<Element>`
/// (chaos injection, stream repair, composition, archive replay) use
/// this to speak the chunked protocol without reshaping their logic.
pub fn pack_queue<V: Pixel>(
    queue: &mut VecDeque<Element<V>>,
    budget: usize,
) -> Option<ChunkOrMarker<V>> {
    let budget = budget.max(1);
    let first = queue.pop_front()?;
    let mut chunk = match Marker::from_element(first) {
        Ok(m) => return Some(ChunkOrMarker::Marker(m)),
        Err(p) => {
            let mut c = Chunk::with_budget(budget);
            c.points.push(p);
            c
        }
    };
    while chunk.points.len() < budget {
        match queue.front() {
            Some(Element::Point(_)) => {
                if let Some(Element::Point(p)) = queue.pop_front() {
                    chunk.points.push(p);
                }
            }
            Some(_) => {
                if let Some(el) = queue.pop_front() {
                    chunk.end = Marker::from_element(el).ok();
                }
                break;
            }
            None => break,
        }
    }
    if chunk.end.is_none() {
        // A marker right at the budget boundary still belongs to this run.
        if let Some(el) = queue.front() {
            if !matches!(el, Element::Point(_)) {
                if let Some(el) = queue.pop_front() {
                    chunk.end = Marker::from_element(el).ok();
                }
            }
        }
    }
    Some(ChunkOrMarker::Chunk(chunk))
}

/// Drains a stream through the chunked interface and returns the
/// flattened element sequence — the differential-test and bench helper
/// for comparing against [`GeoStream::drain_elements`].
pub fn drain_chunked<S: GeoStream + ?Sized>(stream: &mut S, budget: usize) -> Vec<Element<S::V>> {
    let mut out = Vec::new();
    while let Some(item) = stream.next_chunk(budget) {
        item.into_elements(&mut |el| out.push(el));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StreamSchema, Timestamp, VecStream};
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn source(w: u32, h: u32) -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), w, h);
        VecStream::single_sector("chunk-src", lattice, 0, |c, r| f64::from(c + 10 * r))
    }

    #[test]
    fn default_adapter_matches_scalar_flattening() {
        for budget in [1usize, 3, 8, 1024] {
            let scalar = source(8, 4).drain_elements();
            let chunked = drain_chunked(&mut source(8, 4), budget);
            assert_eq!(scalar, chunked, "budget {budget}");
        }
    }

    #[test]
    fn chunks_never_cross_markers() {
        let mut s = source(8, 4);
        while let Some(item) = s.next_chunk(5) {
            if let ChunkOrMarker::Chunk(c) = &item {
                assert!(!c.points.is_empty(), "chunks carry at least one point");
                let row = c.points[0].cell.row;
                assert!(c.points.iter().all(|p| p.cell.row == row), "run stays in one frame");
                assert!(c.points.len() <= 5 || c.end.is_some());
            }
            item.recycle();
        }
    }

    #[test]
    fn partial_run_attaches_trailing_marker() {
        // Row width 8, budget 5: the second run of each row holds 3
        // points and must carry the row's FrameEnd in `end` rather than
        // splitting it into a separate pull.
        let mut s = source(8, 2);
        let mut saw_partial_run_with_end = false;
        while let Some(item) = s.next_chunk(5) {
            if let ChunkOrMarker::Chunk(c) = &item {
                if c.points.len() == 3 {
                    assert!(matches!(c.end, Some(Marker::FrameEnd(_))));
                    saw_partial_run_with_end = true;
                }
            }
            item.recycle();
        }
        assert!(saw_partial_run_with_end);
    }

    #[test]
    fn pack_queue_round_trips() {
        let els = source(6, 3).drain_elements();
        for budget in [1usize, 4, 100] {
            let mut q: VecDeque<Element<f32>> = els.iter().cloned().collect();
            let mut out = Vec::new();
            while let Some(item) = pack_queue(&mut q, budget) {
                item.into_elements(&mut |el| out.push(el));
            }
            assert_eq!(out, els, "budget {budget}");
        }
    }

    #[test]
    fn pool_reuses_buffers() {
        let mut c = Chunk::<f32>::with_budget(256);
        c.points.push(PointRecord { cell: geostreams_geo::Cell::new(0, 0), value: 1.0 });
        let cap = c.points.capacity();
        let ptr = c.points.as_ptr() as usize;
        c.recycle();
        let c2 = Chunk::<f32>::with_budget(16);
        assert!(c2.points.is_empty());
        assert_eq!(c2.points.as_ptr() as usize, ptr, "buffer came back from the pool");
        assert!(c2.points.capacity() >= cap);
    }

    #[test]
    fn pool_conserves_buffers_across_thread_exit() {
        // Regression: buffers recycled on a worker thread used to be
        // stranded in its thread-local pool at exit. They must migrate
        // to the shared tier and stay reusable. Rgb8 is used by no
        // other test in this binary, so the counts are interference-free.
        use geostreams_raster::Rgb8;
        const N: usize = 8;
        let (_, shared_before) = pool_counts::<Rgb8>();
        let ptrs = std::thread::spawn(|| {
            let mut ptrs = Vec::new();
            let mut chunks = Vec::new();
            for _ in 0..N {
                let mut c = Chunk::<Rgb8>::with_budget(64);
                c.points.push(PointRecord {
                    cell: geostreams_geo::Cell::new(0, 0),
                    value: Rgb8::default(),
                });
                ptrs.push(c.points.as_ptr() as usize);
                chunks.push(c);
            }
            for c in chunks {
                c.recycle();
            }
            ptrs
        })
        .join()
        .expect("worker thread");
        let (_, shared_after) = pool_counts::<Rgb8>();
        assert_eq!(
            shared_after,
            shared_before + N,
            "all {N} buffers recycled on the worker migrated to the shared pool"
        );
        // And they are genuinely reusable from this (different) thread.
        let c = Chunk::<Rgb8>::with_budget(16);
        assert!(c.points.capacity() >= 64, "buffer came back with its capacity");
        assert!(
            ptrs.contains(&(c.points.as_ptr() as usize)),
            "reused buffer is one the worker thread pooled"
        );
        c.recycle();
    }

    #[test]
    fn pool_put_overflow_spills_to_shared_tier() {
        // Fill this thread's local tier past POOL_MAX_VECS; the
        // overflow must land in the shared pool instead of being
        // dropped. (f64 buffers; counts are lower bounds because other
        // tests may touch the shared tier concurrently.)
        let (_, shared_before) = pool_counts::<f64>();
        let bufs: Vec<Vec<PointRecord<f64>>> =
            (0..POOL_MAX_VECS + 4).map(|_| Vec::with_capacity(8)).collect();
        for b in bufs {
            pool_put(b);
        }
        let (local, shared) = pool_counts::<f64>();
        assert!(local <= POOL_MAX_VECS);
        assert!(shared >= shared_before + 4, "overflow spilled, not dropped");
    }

    #[test]
    fn element_counts_cover_markers() {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 2, 1);
        let mut s = VecStream::new(
            StreamSchema::new("m", Crs::LatLon),
            vec![Element::<f32>::point(geostreams_geo::Cell::new(0, 0), 1.0)],
        );
        let item = s.next_chunk(4).expect("one item");
        assert_eq!(item.element_count(), 1);
        assert_eq!(item.point_count(), 1);
        let _ = (lattice, Timestamp::new(0));
    }
}
