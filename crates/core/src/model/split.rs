//! Splitting a multiplexed transmission into per-band GeoStreams.
//!
//! A satellite downlink is physically **one** stream: the instrument
//! interleaves the spectral bands according to its scan organization —
//! band-sequential for image-by-image instruments, line-interleaved for
//! row-by-row scanners (Fig. 1 / §3.3 of the paper). The algebra, on the
//! other hand, models each band as its own GeoStream (Definition 5).
//!
//! [`split2`] bridges the two: it turns an interleaved element sequence
//! into two pullable per-band streams. When one side is pulled and the
//! transport's next elements belong to the *other* band, those elements
//! are queued on the other side — this queue is precisely the buffering
//! that §3.3 attributes to the organization of the image data: "If the
//! data is transmitted on an image-by-image basis, the operator has to
//! buffer a complete image whereas for a row-by-row organization, it only
//! has to buffer a single row." Experiment E3 measures these queues (plus
//! the composition operator's own match buffer).

use super::element::Element;
use super::schema::StreamSchema;
use super::stream::GeoStream;
use crate::stats::{OpReport, OpStats};
use geostreams_raster::Pixel;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Shared state between the two sides of a split.
struct SplitState<V> {
    /// The interleaved transport: `(side, element)` in transmission order.
    transport: Box<dyn Iterator<Item = (u8, Element<V>)> + Send>,
    /// Pending queues per side.
    queues: [VecDeque<Element<V>>; 2],
    /// Buffer accounting per side (points queued for a side while the
    /// other side is being pulled).
    stats: [OpStats; 2],
}

impl<V: Pixel> SplitState<V> {
    /// Pulls the next element for `side`, draining the transport into the
    /// other side's queue as needed.
    fn pull(&mut self, side: u8) -> Option<Element<V>> {
        let si = side as usize;
        if let Some(el) = self.queues[si].pop_front() {
            if el.is_point() {
                self.stats[si].buffer_shrink(1, V::BYTES as u64);
            }
            return Some(el);
        }
        loop {
            let (owner, el) = self.transport.next()?;
            let oi = owner as usize & 1;
            if oi == si {
                return Some(el);
            }
            if el.is_point() {
                self.stats[oi].buffer_grow(1, V::BYTES as u64);
            }
            self.queues[oi].push_back(el);
        }
    }
}

/// One side of a split transport.
pub struct SideStream<V> {
    state: Arc<Mutex<SplitState<V>>>,
    side: u8,
    schema: StreamSchema,
}

impl<V: Pixel> GeoStream for SideStream<V> {
    type V = V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<V>> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).pull(self.side)
    }

    fn op_stats(&self) -> OpStats {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats
            [self.side as usize]
            .clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        out.push(OpReport::new(format!("{}[split]", self.schema.name), self.op_stats()));
    }
}

/// Splits an interleaved `(side, element)` sequence into two per-band
/// streams with the transmission-coupled buffering semantics described in
/// the module docs.
pub fn split2<V: Pixel>(
    transport: impl Iterator<Item = (u8, Element<V>)> + Send + 'static,
    schema0: StreamSchema,
    schema1: StreamSchema,
) -> (SideStream<V>, SideStream<V>) {
    let state = Arc::new(Mutex::new(SplitState {
        transport: Box::new(transport),
        queues: [VecDeque::new(), VecDeque::new()],
        stats: [OpStats::default(), OpStats::default()],
    }));
    (
        SideStream { state: Arc::clone(&state), side: 0, schema: schema0 },
        SideStream { state, side: 1, schema: schema1 },
    )
}

/// Shared state of a [`tee2`] duplication.
struct TeeState<S: GeoStream> {
    input: S,
    queues: [VecDeque<Element<S::V>>; 2],
    stats: [OpStats; 2],
    done: bool,
}

/// One consumer of a teed stream.
pub struct TeeStream<S: GeoStream> {
    state: Arc<Mutex<TeeState<S>>>,
    side: u8,
    schema: StreamSchema,
}

impl<S: GeoStream> GeoStream for TeeStream<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let si = self.side as usize;
        if let Some(el) = st.queues[si].pop_front() {
            if el.is_point() {
                st.stats[si].buffer_shrink(1, S::V::BYTES as u64);
            }
            return Some(el);
        }
        if st.done {
            return None;
        }
        match st.input.next_element() {
            Some(el) => {
                let oi = 1 - si;
                if el.is_point() {
                    st.stats[oi].buffer_grow(1, S::V::BYTES as u64);
                }
                st.queues[oi].push_back(el.clone());
                Some(el)
            }
            None => {
                st.done = true;
                None
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats
            [self.side as usize]
            .clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        // Report the upstream pipeline once (from side 0) plus this side's
        // tee queue.
        if self.side == 0 {
            self.state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .input
                .collect_stats(out);
        }
        out.push(OpReport::new(format!("{}[tee{}]", self.schema.name, self.side), self.op_stats()));
    }
}

/// Duplicates one stream into two independent consumers. The slower
/// consumer's pending elements are queued (and accounted) — this is how a
/// query DAG can reference the same stream twice, e.g. the paper's §3.4
/// NDVI expression `(G₁ − G₂) ⊘ (G₂ + G₁)` which reads each band twice.
pub fn tee2<S: GeoStream>(input: S) -> (TeeStream<S>, TeeStream<S>) {
    let schema0 = input.schema().clone();
    let schema1 = schema0.clone();
    let state = Arc::new(Mutex::new(TeeState {
        input,
        queues: [VecDeque::new(), VecDeque::new()],
        stats: [OpStats::default(), OpStats::default()],
        done: false,
    }));
    (
        TeeStream { state: Arc::clone(&state), side: 0, schema: schema0 },
        TeeStream { state, side: 1, schema: schema1 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn elements(n: u32) -> Vec<Element<f32>> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), n, 1);
        let mut s: VecStream<f32> = VecStream::single_sector("x", lattice, 0, |c, _| f64::from(c));
        s.drain_elements()
    }

    #[test]
    fn round_robin_interleaving_needs_no_queueing() {
        let a = elements(8);
        let b = elements(8);
        let transport: Vec<(u8, Element<f32>)> =
            a.into_iter().zip(b).flat_map(|(x, y)| [(0u8, x), (1u8, y)]).collect();
        let (mut s0, mut s1) = split2(
            transport.into_iter(),
            StreamSchema::new("band0", Crs::LatLon),
            StreamSchema::new("band1", Crs::LatLon),
        );
        // Alternate pulls: queues stay at ≤1 point.
        loop {
            let e0 = s0.next_element();
            let e1 = s1.next_element();
            if e0.is_none() && e1.is_none() {
                break;
            }
        }
        assert!(s0.op_stats().buffered_points_peak <= 1);
        assert!(s1.op_stats().buffered_points_peak <= 1);
    }

    #[test]
    fn band_sequential_transmission_queues_whole_image() {
        let a = elements(16);
        let b = elements(16);
        let n_points = 16;
        // All of band 0, then all of band 1 (image-by-image downlink).
        let transport: Vec<(u8, Element<f32>)> =
            a.into_iter().map(|e| (0u8, e)).chain(b.into_iter().map(|e| (1u8, e))).collect();
        let (mut s0, mut s1) = split2(
            transport.into_iter(),
            StreamSchema::new("band0", Crs::LatLon),
            StreamSchema::new("band1", Crs::LatLon),
        );
        // Pull band 1 first: the entire band-0 image must queue.
        let first = s1.next_element();
        assert!(first.is_some());
        assert_eq!(s0.op_stats().buffered_points, n_points);
        // Draining band 0 releases the queue.
        while s0.next_element().is_some() {}
        assert_eq!(s0.op_stats().buffered_points, 0);
        assert_eq!(s0.op_stats().buffered_points_peak, n_points);
        while s1.next_element().is_some() {}
    }

    #[test]
    fn tee_duplicates_every_element() {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 4, 2);
        let src: VecStream<f32> =
            VecStream::single_sector("x", lattice, 0, |c, r| f64::from(c + 10 * r));
        let (mut a, mut b) = tee2(src);
        let ea = a.drain_elements();
        let eb = b.drain_elements();
        assert_eq!(ea, eb);
        assert_eq!(ea.iter().filter(|e| e.is_point()).count(), 8);
        // Side A consumed everything first, so side B's queue peaked at
        // the full point count.
        assert_eq!(b.op_stats().buffered_points_peak, 8);
    }

    #[test]
    fn tee_alternating_consumers_stay_small() {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 8, 8);
        let src: VecStream<f32> = VecStream::single_sector("x", lattice, 0, |c, _| f64::from(c));
        let (mut a, mut b) = tee2(src);
        loop {
            let ea = a.next_element();
            let eb = b.next_element();
            if ea.is_none() && eb.is_none() {
                break;
            }
        }
        assert!(a.op_stats().buffered_points_peak <= 1);
        assert!(b.op_stats().buffered_points_peak <= 1);
    }

    #[test]
    fn each_side_sees_only_its_elements() {
        let a = elements(4);
        let b_el = elements(4);
        let transport: Vec<(u8, Element<f32>)> = a
            .iter()
            .cloned()
            .map(|e| (0u8, e))
            .chain(b_el.iter().cloned().map(|e| (1u8, e)))
            .collect();
        let (mut s0, mut s1) = split2(
            transport.into_iter(),
            StreamSchema::new("band0", Crs::LatLon),
            StreamSchema::new("band1", Crs::LatLon),
        );
        let got0 = s0.drain_elements();
        let got1 = s1.drain_elements();
        assert_eq!(got0, a);
        assert_eq!(got1, b_el);
    }
}
