//! Timestamps and their semantics.
//!
//! §3.3 of the paper: "If incoming points are timestamped based on when
//! the points were measured, a stream composition operator would never
//! produce new image data as respective timestamps would never match.
//! That is why in practice, point data is timestamped using scan-sector
//! identifiers." Both semantics exist in this implementation; the
//! composition operator behaves exactly as described under each.

use serde::{Deserialize, Serialize};

/// A logical point in time: either a scan-sector identifier or a
/// measurement instant in microseconds, depending on the stream's
/// [`TimeSemantics`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Creates a timestamp from its raw value.
    pub const fn new(v: i64) -> Self {
        Timestamp(v)
    }

    /// The raw value.
    pub const fn value(self) -> i64 {
        self.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// How a stream's timestamps are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TimeSemantics {
    /// All points of one scan sector share the sector's identifier:
    /// the semantics that makes cross-band composition possible.
    #[default]
    SectorId,
    /// Each point (or small burst) is stamped with the instant it was
    /// measured; points from different streams essentially never match.
    MeasurementTime,
}

/// A set of timestamps `T` for the temporal restriction `G|T`
/// (Definition 7). §3.1 lists the specification styles: "a collection of
/// points in time, as an open interval or as a set of (re-occurring)
/// intervals, e.g., if an application requires only data during a
/// specific time period every day".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimeSet {
    /// An explicit collection of instants.
    Instants(Vec<i64>),
    /// A half-open interval `[lo, hi)`; either bound may be unbounded.
    Interval {
        /// Inclusive lower bound (`None` = unbounded).
        lo: Option<i64>,
        /// Exclusive upper bound (`None` = unbounded).
        hi: Option<i64>,
    },
    /// The recurring window `[offset, offset+len)` every `period` ticks —
    /// "only data during a specific time period every day".
    Recurring {
        /// Cycle length.
        period: i64,
        /// Window start within the cycle.
        offset: i64,
        /// Window length.
        len: i64,
    },
}

impl TimeSet {
    /// Membership test, O(1) except for `Instants` which is O(n) over a
    /// typically tiny list.
    pub fn contains(&self, t: Timestamp) -> bool {
        match self {
            TimeSet::Instants(v) => v.contains(&t.0),
            TimeSet::Interval { lo, hi } => {
                lo.is_none_or(|l| t.0 >= l) && hi.is_none_or(|h| t.0 < h)
            }
            TimeSet::Recurring { period, offset, len } => {
                if *period <= 0 {
                    return false;
                }
                let phase = (t.0 - offset).rem_euclid(*period);
                phase < *len
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_order() {
        assert!(Timestamp::new(1) < Timestamp::new(2));
        assert_eq!(Timestamp::new(5).value(), 5);
    }

    #[test]
    fn interval_membership() {
        let t = TimeSet::Interval { lo: Some(10), hi: Some(20) };
        assert!(!t.contains(Timestamp::new(9)));
        assert!(t.contains(Timestamp::new(10)));
        assert!(t.contains(Timestamp::new(19)));
        assert!(!t.contains(Timestamp::new(20)));
    }

    #[test]
    fn open_ended_intervals() {
        let t = TimeSet::Interval { lo: None, hi: Some(5) };
        assert!(t.contains(Timestamp::new(-1000)));
        assert!(!t.contains(Timestamp::new(5)));
        let t = TimeSet::Interval { lo: Some(5), hi: None };
        assert!(t.contains(Timestamp::new(1_000_000)));
    }

    #[test]
    fn instants_membership() {
        let t = TimeSet::Instants(vec![1, 5, 9]);
        assert!(t.contains(Timestamp::new(5)));
        assert!(!t.contains(Timestamp::new(4)));
    }

    #[test]
    fn recurring_daily_window() {
        // Every 24 "hours", the window [6, 9).
        let t = TimeSet::Recurring { period: 24, offset: 6, len: 3 };
        assert!(t.contains(Timestamp::new(6)));
        assert!(t.contains(Timestamp::new(8)));
        assert!(!t.contains(Timestamp::new(9)));
        assert!(t.contains(Timestamp::new(24 * 10 + 7)));
        assert!(!t.contains(Timestamp::new(24 * 10 + 5)));
        // Negative times wrap correctly.
        assert!(t.contains(Timestamp::new(-24 + 7)));
    }

    #[test]
    fn degenerate_recurring_is_empty() {
        let t = TimeSet::Recurring { period: 0, offset: 0, len: 1 };
        assert!(!t.contains(Timestamp::new(0)));
    }
}
