//! The `GeoStream` trait and basic sources.

use super::chunk::{Chunk, ChunkOrMarker, Marker};
use super::element::{Element, FrameEnd, FrameInfo, PointRecord, SectorEnd, SectorInfo};
use super::schema::{Organization, StreamSchema};
use super::timestamp::Timestamp;
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox, LatticeGeoref};
use geostreams_raster::Pixel;

/// A pull-based stream of geospatial image data (Definition 3/5 of the
/// paper, plus transport framing).
///
/// The algebra is *closed*: every operator consumes one or two
/// `GeoStream`s and is itself a `GeoStream`, which is what lets complex
/// queries compose (§3: "the result of applying an operator to one or two
/// GeoStreams is again a GeoStream").
pub trait GeoStream {
    /// Pixel type of the stream's value set.
    type V: Pixel;

    /// Static schema.
    fn schema(&self) -> &StreamSchema;

    /// Pulls the next element; `None` means the stream has ended.
    fn next_element(&mut self) -> Option<Element<Self::V>>;

    /// Pulls the next run of up to `budget` points (or a standalone
    /// marker). See [`crate::model::chunk`] for the chunk contract.
    ///
    /// The default implementation adapts any element-at-a-time operator
    /// by accumulating its scalar output, so the algebra stays closed:
    /// legacy operators keep working unmodified inside chunked
    /// pipelines. Hot operators override this with a batch-native path.
    ///
    /// A stream instance should be driven through *one* of the two pull
    /// interfaces; interleaving `next_element` and `next_chunk` calls on
    /// the same instance is allowed but may split runs arbitrarily.
    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<Self::V>> {
        let budget = budget.max(1);
        let first = self.next_element()?;
        let mut chunk = match Marker::from_element(first) {
            Ok(m) => return Some(ChunkOrMarker::Marker(m)),
            Err(p) => {
                let mut c = Chunk::with_budget(budget);
                c.points.push(p);
                c
            }
        };
        while chunk.points.len() < budget {
            match self.next_element() {
                None => break,
                Some(el) => match Marker::from_element(el) {
                    Ok(m) => {
                        chunk.end = Some(m);
                        break;
                    }
                    Err(p) => chunk.points.push(p),
                },
            }
        }
        Some(ChunkOrMarker::Chunk(chunk))
    }

    /// This operator's own counters (sources may return zeros).
    fn op_stats(&self) -> OpStats {
        OpStats::default()
    }

    /// Appends this operator's (and its inputs') stats to a report,
    /// upstream first.
    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        out.push(OpReport::new(self.schema().name.clone(), self.op_stats()));
    }

    /// Drains the stream, returning only the point records (test helper).
    fn drain_points(&mut self) -> Vec<PointRecord<Self::V>>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(el) = self.next_element() {
            if let Element::Point(p) = el {
                out.push(p);
            }
        }
        out
    }

    /// Drains the stream, returning every element (test helper).
    fn drain_elements(&mut self) -> Vec<Element<Self::V>>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(el) = self.next_element() {
            out.push(el);
        }
        out
    }
}

/// Boxed dynamically-typed stream used by the planner (pipelines are
/// normalized to `f32` pixels; sources of other types get a cast
/// adapter).
pub type BoxedF32Stream = Box<dyn GeoStream<V = f32> + Send>;

/// Free-function form of [`GeoStream::drain_points`], callable on boxed
/// trait objects.
pub fn drain_points_of<S: GeoStream>(s: &mut S) -> Vec<PointRecord<S::V>> {
    let mut out = Vec::new();
    while let Some(el) = s.next_element() {
        if let Element::Point(p) = el {
            out.push(p);
        }
    }
    out
}

impl<S: GeoStream + ?Sized> GeoStream for Box<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        (**self).schema()
    }

    fn next_element(&mut self) -> Option<Element<Self::V>> {
        (**self).next_element()
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<Self::V>> {
        (**self).next_chunk(budget)
    }

    fn op_stats(&self) -> OpStats {
        (**self).op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        (**self).collect_stats(out)
    }
}

impl<S: GeoStream + ?Sized> GeoStream for &mut S {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        (**self).schema()
    }

    fn next_element(&mut self) -> Option<Element<Self::V>> {
        (**self).next_element()
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<Self::V>> {
        (**self).next_chunk(budget)
    }

    fn op_stats(&self) -> OpStats {
        (**self).op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        (**self).collect_stats(out)
    }
}

/// A source that replays a pre-built element sequence. The workhorse of
/// unit tests and a building block for trace replay.
#[derive(Debug, Clone)]
pub struct VecStream<V> {
    schema: StreamSchema,
    elements: Vec<Element<V>>,
    /// Replay cursor into `elements` (a slice position rather than a
    /// consuming iterator, so the chunk path can copy whole point runs).
    idx: usize,
    stats: OpStats,
}

impl<V: Pixel> VecStream<V> {
    /// Creates a source from a schema and element sequence.
    pub fn new(schema: StreamSchema, elements: Vec<Element<V>>) -> Self {
        VecStream { schema, elements, idx: 0, stats: OpStats::default() }
    }

    /// Builds a single-sector stream over `lattice` with one frame per
    /// row (row-by-row organization) whose values come from `f(col, row)`.
    pub fn single_sector(
        name: &str,
        lattice: LatticeGeoref,
        sector_id: u64,
        f: impl Fn(u32, u32) -> f64,
    ) -> VecStream<V> {
        let mut schema = StreamSchema::new(name, lattice.crs);
        schema.sector_lattice = Some(lattice);
        let mut elements = Vec::new();
        push_sector(&mut elements, lattice, sector_id, Organization::RowByRow, 0, &f);
        VecStream::new(schema, elements)
    }

    /// Sets the schema's nominal value range (builder style).
    pub fn with_value_range(mut self, lo: f64, hi: f64) -> Self {
        self.schema.value_range = (lo, hi);
        self
    }

    /// Sets the schema's organization tag (builder style).
    pub fn with_organization(mut self, org: Organization) -> Self {
        self.schema.organization = org;
        self
    }

    /// Builds a multi-sector, row-by-row stream; sector `i` gets
    /// timestamp `i` and values `f(sector, col, row)`.
    pub fn sectors(
        name: &str,
        lattice: LatticeGeoref,
        n_sectors: u64,
        f: impl Fn(u64, u32, u32) -> f64,
    ) -> VecStream<V> {
        let mut schema = StreamSchema::new(name, lattice.crs);
        schema.sector_lattice = Some(lattice);
        let mut elements = Vec::new();
        let mut frame_id = 0;
        for s in 0..n_sectors {
            push_sector(&mut elements, lattice, s, Organization::RowByRow, frame_id, &|c, r| {
                f(s, c, r)
            });
            frame_id += u64::from(lattice.height);
        }
        VecStream::new(schema, elements)
    }
}

/// Appends a full sector in row-by-row organization to `elements`.
fn push_sector<V: Pixel>(
    elements: &mut Vec<Element<V>>,
    lattice: LatticeGeoref,
    sector_id: u64,
    organization: Organization,
    first_frame_id: u64,
    f: &impl Fn(u32, u32) -> f64,
) {
    let ts = Timestamp::new(sector_id as i64);
    elements.push(Element::SectorStart(SectorInfo {
        sector_id,
        lattice,
        band: 0,
        organization,
        timestamp: ts,
    }));
    for row in 0..lattice.height {
        let frame_id = first_frame_id + u64::from(row);
        elements.push(Element::FrameStart(FrameInfo {
            frame_id,
            sector_id,
            timestamp: ts,
            cells: CellBox::new(0, row, lattice.width.saturating_sub(1), row),
            synth_ns: crate::obs::now_ns(),
        }));
        for col in 0..lattice.width {
            elements.push(Element::point(Cell::new(col, row), V::from_f64(f(col, row))));
        }
        elements.push(Element::FrameEnd(FrameEnd { frame_id, sector_id }));
    }
    elements.push(Element::SectorEnd(SectorEnd { sector_id }));
}

impl<V: Pixel> GeoStream for VecStream<V> {
    type V = V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<V>> {
        let el = self.elements.get(self.idx)?.clone();
        self.idx += 1;
        match &el {
            Element::Point(_) => self.stats.points_out += 1,
            Element::FrameStart(_) => self.stats.frames_out += 1,
            _ => {}
        }
        Some(el)
    }

    /// Batch-native pull: the backing sequence is already materialized,
    /// so a whole run of points is copied straight off the slice with no
    /// per-element dispatch.
    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<V>> {
        let budget = budget.max(1);
        let first = self.elements.get(self.idx)?;
        if let Ok(m) = Marker::from_element(first.clone()) {
            self.idx += 1;
            if matches!(m, Marker::FrameStart(_)) {
                self.stats.frames_out += 1;
            }
            return Some(ChunkOrMarker::Marker(m));
        }
        let rest = &self.elements[self.idx..];
        let run = rest.iter().take(budget).take_while(|e| matches!(e, Element::Point(_))).count();
        let mut chunk = Chunk::with_budget(budget);
        chunk.points.extend(rest[..run].iter().filter_map(|e| match e {
            Element::Point(p) => Some(*p),
            _ => None,
        }));
        self.idx += run;
        self.stats.points_out += run as u64;
        if run < budget {
            // The run ended at a marker; fold it into the chunk.
            if let Some(el) = self.elements.get(self.idx) {
                if let Ok(m) = Marker::from_element(el.clone()) {
                    if matches!(m, Marker::FrameStart(_)) {
                        self.stats.frames_out += 1;
                    }
                    chunk.end = Some(m);
                    self.idx += 1;
                }
            }
        }
        Some(ChunkOrMarker::Chunk(chunk))
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// A source that pulls elements from a caller-supplied closure — the
/// adapter the DSMS uses to feed operator pipelines from ingest channels.
pub struct ChannelLike<V> {
    schema: StreamSchema,
    pull: Box<dyn FnMut() -> Option<Element<V>> + Send>,
    stats: OpStats,
}

impl<V: Pixel> ChannelLike<V> {
    /// Creates a source from a pull closure (return `None` to end the
    /// stream).
    pub fn new(
        schema: StreamSchema,
        pull: impl FnMut() -> Option<Element<V>> + Send + 'static,
    ) -> Self {
        ChannelLike { schema, pull: Box::new(pull), stats: OpStats::default() }
    }
}

impl<V: Pixel> GeoStream for ChannelLike<V> {
    type V = V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<V>> {
        let el = (self.pull)()?;
        if el.is_point() {
            self.stats.points_out += 1;
        }
        Some(el)
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// A source that pulls whole [`ChunkOrMarker`] items from a
/// caller-supplied closure — the chunk-native counterpart of
/// [`ChannelLike`], used by the DSMS so chunks cross ingest channels
/// intact instead of being re-split into per-point sends.
pub struct ChunkChannel<V: Pixel> {
    schema: StreamSchema,
    pull: Box<dyn FnMut() -> Option<ChunkOrMarker<V>> + Send>,
    /// Flattening buffer serving legacy `next_element` consumers.
    buf: std::collections::VecDeque<Element<V>>,
    stats: OpStats,
}

impl<V: Pixel> ChunkChannel<V> {
    /// Creates a source from a chunk-pull closure (return `None` to end
    /// the stream).
    pub fn new(
        schema: StreamSchema,
        pull: impl FnMut() -> Option<ChunkOrMarker<V>> + Send + 'static,
    ) -> Self {
        ChunkChannel {
            schema,
            pull: Box::new(pull),
            buf: std::collections::VecDeque::new(),
            stats: OpStats::default(),
        }
    }
}

impl<V: Pixel> GeoStream for ChunkChannel<V> {
    type V = V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<V>> {
        loop {
            if let Some(el) = self.buf.pop_front() {
                if el.is_point() {
                    self.stats.points_out += 1;
                }
                return Some(el);
            }
            let item = (self.pull)()?;
            item.into_elements(&mut |el| self.buf.push_back(el));
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<V>> {
        // Serve any scalar leftovers first so mixed-mode callers never
        // observe reordering.
        if !self.buf.is_empty() {
            let item = super::chunk::pack_queue(&mut self.buf, budget);
            if let Some(it) = &item {
                self.stats.points_out += it.point_count() as u64;
            }
            return item;
        }
        let item = (self.pull)()?;
        self.stats.points_out += item.point_count() as u64;
        Some(item)
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_geo::{Crs, Rect};

    fn lattice(w: u32, h: u32) -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), w, h)
    }

    #[test]
    fn single_sector_protocol_shape() {
        let mut s: VecStream<f32> =
            VecStream::single_sector("t", lattice(3, 2), 9, |c, r| f64::from(c + 10 * r));
        let els = s.drain_elements();
        // 1 SectorStart + 2*(FrameStart + 3 points + FrameEnd) + 1 SectorEnd.
        assert_eq!(els.len(), 1 + 2 * 5 + 1);
        assert!(matches!(els[0], Element::SectorStart(ref si) if si.sector_id == 9));
        assert!(matches!(els[1], Element::FrameStart(ref fi) if fi.cells.row_min == 0));
        assert!(matches!(els.last(), Some(Element::SectorEnd(se)) if se.sector_id == 9));
    }

    #[test]
    fn sector_values_follow_generator() {
        let mut s: VecStream<f32> =
            VecStream::single_sector("t", lattice(4, 4), 0, |c, r| f64::from(c * r));
        let points = s.drain_points();
        assert_eq!(points.len(), 16);
        let p = points.iter().find(|p| p.cell == Cell::new(3, 2)).unwrap();
        assert_eq!(p.value, 6.0);
    }

    #[test]
    fn multi_sector_timestamps_increase() {
        let mut s: VecStream<f32> = VecStream::sectors("t", lattice(2, 2), 3, |s, _, _| s as f64);
        let els = s.drain_elements();
        let sector_ids: Vec<u64> = els
            .iter()
            .filter_map(|e| match e {
                Element::SectorStart(si) => Some(si.sector_id),
                _ => None,
            })
            .collect();
        assert_eq!(sector_ids, vec![0, 1, 2]);
        // Frame ids never repeat.
        let mut frame_ids: Vec<u64> = els
            .iter()
            .filter_map(|e| match e {
                Element::FrameStart(fi) => Some(fi.frame_id),
                _ => None,
            })
            .collect();
        let n = frame_ids.len();
        frame_ids.dedup();
        assert_eq!(frame_ids.len(), n);
    }

    #[test]
    fn vecstream_counts_emitted_points() {
        let mut s: VecStream<f32> = VecStream::single_sector("t", lattice(5, 5), 0, |_, _| 0.0);
        let _ = s.drain_elements();
        assert_eq!(s.op_stats().points_out, 25);
        assert_eq!(s.op_stats().frames_out, 5);
    }

    #[test]
    fn channel_like_pulls_until_none() {
        let mut vals =
            vec![Element::point(Cell::new(0, 0), 1.0f32), Element::point(Cell::new(1, 0), 2.0f32)]
                .into_iter();
        let mut s = ChannelLike::new(StreamSchema::new("ch", Crs::LatLon), move || vals.next());
        assert!(s.next_element().is_some());
        assert!(s.next_element().is_some());
        assert!(s.next_element().is_none());
        assert_eq!(s.op_stats().points_out, 2);
    }

    #[test]
    fn boxed_stream_is_a_stream() {
        let s: VecStream<f32> = VecStream::single_sector("t", lattice(2, 2), 0, |_, _| 1.0);
        let mut boxed: Box<dyn GeoStream<V = f32> + Send> = Box::new(s);
        let mut n = 0;
        while let Some(el) = boxed.next_element() {
            if el.is_point() {
                n += 1;
            }
        }
        assert_eq!(n, 4);
    }
}
