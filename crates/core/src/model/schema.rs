//! Stream schemas.

use super::timestamp::TimeSemantics;
use geostreams_geo::{Crs, LatticeGeoref};
use serde::{Deserialize, Serialize};

/// Point organization of a stream, per Fig. 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Organization {
    /// "Airborne cameras typically obtain data in an image-by-image
    /// fashion" — one frame covers a whole (possibly shifted) lattice.
    ImageByImage,
    /// "Most satellite instruments obtain data in a row-by-row fashion
    /// where strips of image data arrive at a time" — one frame is a
    /// single lattice row.
    #[default]
    RowByRow,
    /// "Some instruments, such as LIDAR, have non-uniform point lattice
    /// structures, and points are only ordered by time."
    PointByPoint,
}

impl std::fmt::Display for Organization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Organization::ImageByImage => "image-by-image",
            Organization::RowByRow => "row-by-row",
            Organization::PointByPoint => "point-by-point",
        })
    }
}

/// Static description of a GeoStream: everything an operator must know
/// before seeing the first element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSchema {
    /// Stream name (for catalogs and reports).
    pub name: String,
    /// Coordinate system of the point lattices (Definition 5: this is
    /// what makes the stream a *GeoStream*).
    pub crs: Crs,
    /// Spectral band identifier.
    pub band: u16,
    /// Point organization.
    pub organization: Organization,
    /// Timestamp semantics.
    pub time_semantics: TimeSemantics,
    /// Nominal value range for display scaling `(lo, hi)`.
    pub value_range: (f64, f64),
    /// Representative sector lattice, when known ahead of time (used for
    /// cost estimation; actual lattices arrive via `SectorStart`).
    pub sector_lattice: Option<LatticeGeoref>,
}

impl StreamSchema {
    /// Creates a schema with the given name and CRS and sensible defaults.
    pub fn new(name: impl Into<String>, crs: Crs) -> Self {
        StreamSchema {
            name: name.into(),
            crs,
            band: 0,
            organization: Organization::RowByRow,
            time_semantics: TimeSemantics::SectorId,
            value_range: (0.0, 1.0),
            sector_lattice: None,
        }
    }

    /// Returns a copy with a derived name (operators decorate the name so
    /// pipeline reports stay readable).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        StreamSchema { name: name.into(), ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organization_display() {
        assert_eq!(Organization::RowByRow.to_string(), "row-by-row");
        assert_eq!(Organization::ImageByImage.to_string(), "image-by-image");
        assert_eq!(Organization::PointByPoint.to_string(), "point-by-point");
    }

    #[test]
    fn schema_defaults() {
        let s = StreamSchema::new("goes.b1", Crs::geostationary(-75.0));
        assert_eq!(s.organization, Organization::RowByRow);
        assert_eq!(s.time_semantics, TimeSemantics::SectorId);
        assert_eq!(s.name, "goes.b1");
        let r = s.renamed("x");
        assert_eq!(r.name, "x");
        assert_eq!(r.crs, s.crs);
    }
}
