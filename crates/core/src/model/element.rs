//! Stream elements: the wire protocol of a GeoStream.
//!
//! A stream is transported as a sequence of [`Element`]s:
//!
//! ```text
//! SectorStart (metadata: full lattice of the upcoming scan sector)
//!   FrameStart (timestamp + cell range)
//!     Point*    (lattice cell + value)
//!   FrameEnd
//!   FrameStart …
//! SectorEnd
//! SectorStart …
//! ```
//!
//! The sector metadata is exactly the "auxiliary information about the
//! spatial region currently scanned by an instrument … added as metadata
//! to the stream of image data" that §3.2 prescribes so that spatial
//! transforms need not block indefinitely. A *frame* is the unit of
//! arrival sharing one timestamp (a whole image for frame cameras, a
//! single row for GOES-style scanners, a small burst for LIDAR — Fig. 1);
//! an *image* in the paper's Definition 4 corresponds to all frames of
//! one timestamp.

use super::schema::Organization;
use super::timestamp::Timestamp;
use geostreams_geo::{Cell, CellBox, LatticeGeoref};
use serde::{Deserialize, Serialize};

/// Metadata announcing a scan sector: the full spatial extent the
/// instrument is about to deliver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectorInfo {
    /// Monotonically increasing sector identifier.
    pub sector_id: u64,
    /// Georeferenced lattice covering the whole sector.
    pub lattice: LatticeGeoref,
    /// Spectral band of this stream.
    pub band: u16,
    /// Point organization within the sector.
    pub organization: Organization,
    /// Sector timestamp (equals every frame's timestamp under sector-id
    /// semantics).
    pub timestamp: Timestamp,
}

/// Metadata opening a frame: a maximal same-timestamp chunk of arrival.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrameInfo {
    /// Frame identifier, unique within the stream.
    pub frame_id: u64,
    /// Sector this frame belongs to.
    pub sector_id: u64,
    /// Shared timestamp of every point in the frame.
    pub timestamp: Timestamp,
    /// Cell range of the sector lattice this frame covers.
    pub cells: CellBox,
    /// Synthesis tick: when the frame was materialized, on the
    /// [`now_ns`](crate::obs::now_ns) process clock (0 = unknown).
    /// Event-time freshness metadata only — excluded from equality so
    /// separately-synthesized but identical streams still compare
    /// equal, and delivery-side lag is `now_ns() - synth_ns`.
    #[serde(default)]
    pub synth_ns: u64,
}

impl PartialEq for FrameInfo {
    fn eq(&self, other: &Self) -> bool {
        // synth_ns is wall-clock provenance, not frame identity.
        self.frame_id == other.frame_id
            && self.sector_id == other.sector_id
            && self.timestamp == other.timestamp
            && self.cells == other.cells
    }
}

/// Closes a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameEnd {
    /// Frame being closed.
    pub frame_id: u64,
    /// Sector the frame belongs to.
    pub sector_id: u64,
}

/// Closes a scan sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectorEnd {
    /// Sector being closed.
    pub sector_id: u64,
}

/// One stream point: a lattice cell plus its value. The world coordinate
/// and timestamp are derived from the enclosing sector/frame metadata,
/// which keeps the per-point payload minimal (the paper's Definition 1
/// restricts point sets to regular lattices precisely to allow this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointRecord<V> {
    /// Cell within the sector lattice.
    pub cell: Cell,
    /// The point's value.
    pub value: V,
}

/// A stream element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element<V> {
    /// Announces a scan sector (metadata).
    SectorStart(SectorInfo),
    /// Opens a frame.
    FrameStart(FrameInfo),
    /// A data point.
    Point(PointRecord<V>),
    /// Closes a frame.
    FrameEnd(FrameEnd),
    /// Closes a sector.
    SectorEnd(SectorEnd),
}

impl<V> Element<V> {
    /// Convenience constructor for a point element.
    pub fn point(cell: Cell, value: V) -> Self {
        Element::Point(PointRecord { cell, value })
    }

    /// Is this a point element?
    pub fn is_point(&self) -> bool {
        matches!(self, Element::Point(_))
    }

    /// Maps the value type, preserving metadata.
    pub fn map_value<W>(self, f: impl FnOnce(V) -> W) -> Element<W> {
        match self {
            Element::SectorStart(s) => Element::SectorStart(s),
            Element::FrameStart(fi) => Element::FrameStart(fi),
            Element::Point(p) => Element::Point(PointRecord { cell: p.cell, value: f(p.value) }),
            Element::FrameEnd(fe) => Element::FrameEnd(fe),
            Element::SectorEnd(se) => Element::SectorEnd(se),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_geo::{Crs, Rect};

    fn sector() -> SectorInfo {
        SectorInfo {
            sector_id: 7,
            lattice: LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 2, 2),
            band: 1,
            organization: Organization::RowByRow,
            timestamp: Timestamp::new(7),
        }
    }

    #[test]
    fn element_point_constructor() {
        let el: Element<u8> = Element::point(Cell::new(1, 2), 42);
        assert!(el.is_point());
        match el {
            Element::Point(p) => {
                assert_eq!(p.cell, Cell::new(1, 2));
                assert_eq!(p.value, 42);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn map_value_preserves_metadata() {
        let el: Element<u8> = Element::SectorStart(sector());
        let mapped: Element<f32> = el.map_value(f32::from);
        assert!(matches!(mapped, Element::SectorStart(s) if s.sector_id == 7));

        let el: Element<u8> = Element::point(Cell::new(0, 0), 10);
        let mapped: Element<f32> = el.map_value(|v| f32::from(v) * 2.0);
        match mapped {
            Element::Point(p) => assert_eq!(p.value, 20.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn elements_serialize() {
        let el: Element<f32> = Element::FrameStart(FrameInfo {
            frame_id: 3,
            sector_id: 7,
            timestamp: Timestamp::new(7),
            cells: CellBox::new(0, 1, 1, 1),
            synth_ns: 0,
        });
        let json = serde_json::to_string(&el).unwrap();
        let back: Element<f32> = serde_json::from_str(&json).unwrap();
        assert_eq!(el, back);
    }
}
