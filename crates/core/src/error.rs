//! Error type of the core query engine.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while planning or executing stream queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A geospatial computation failed.
    Geo(geostreams_geo::GeoError),
    /// The query text could not be parsed.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset into the query text.
        offset: usize,
    },
    /// A named source stream is not registered in the catalog.
    UnknownSource(String),
    /// An operator received streams whose schemas cannot be combined
    /// (different CRS, lattice, or timestamp semantics).
    SchemaMismatch(String),
    /// A plan parameter is invalid (e.g. magnification factor 0).
    InvalidParameter(String),
    /// The plan references a feature the executor does not support.
    Unsupported(String),
    /// Static plan analysis refused the plan (unbounded buffering,
    /// over-budget worst-case memory, or error-level diagnostics).
    PlanRejected(String),
    /// The tiled raster archive failed (I/O, corrupt segment record,
    /// or an unreadable replay slice).
    Storage(String),
    /// Stored bytes failed an integrity check (CRC mismatch on a WAL
    /// frame, segment record, or tile payload). Unlike [`Storage`],
    /// this means the data on disk is provably not what was written —
    /// it must never be decoded into pixels.
    ///
    /// [`Storage`]: CoreError::Storage
    Corruption(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Geo(e) => write!(f, "geospatial error: {e}"),
            CoreError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            CoreError::UnknownSource(name) => write!(f, "unknown source stream `{name}`"),
            CoreError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            CoreError::PlanRejected(msg) => write!(f, "plan rejected: {msg}"),
            CoreError::Storage(msg) => write!(f, "storage error: {msg}"),
            CoreError::Corruption(msg) => write!(f, "corruption detected: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<geostreams_geo::GeoError> for CoreError {
    fn from(e: geostreams_geo::GeoError) -> Self {
        CoreError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::Parse { message: "expected `(`".into(), offset: 7 };
        assert!(e.to_string().contains("byte 7"));
        let e = CoreError::UnknownSource("goes.b1".into());
        assert!(e.to_string().contains("goes.b1"));
    }

    #[test]
    fn geo_errors_convert() {
        let g = geostreams_geo::GeoError::InvalidUtmZone(99);
        let e: CoreError = g.clone().into();
        assert_eq!(e, CoreError::Geo(g));
    }
}
