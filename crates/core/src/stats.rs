//! Per-operator runtime statistics.
//!
//! The paper's evaluation of its operators is a space/time-complexity
//! analysis: restrictions are "non-blocking and have constant cost per
//! point" (§3.1), stretch transforms buffer "the largest frame that can
//! occur in G" (§3.2, the ≈280 MB GOES figure), and a composition "has to
//! buffer a complete image whereas for a row-by-row organization, it only
//! has to buffer a single row" (§3.3). [`OpStats`] makes those quantities
//! observable so the experiment suite can verify each claim.

use serde::{Deserialize, Serialize};

/// Counters maintained by every stream operator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// Points consumed from the input stream(s).
    pub points_in: u64,
    /// Points emitted downstream.
    pub points_out: u64,
    /// Frames consumed.
    pub frames_in: u64,
    /// Frames emitted.
    pub frames_out: u64,
    /// Current number of buffered points (values held for future output).
    pub buffered_points: u64,
    /// High-water mark of [`buffered_points`](Self::buffered_points).
    pub buffered_points_peak: u64,
    /// Current buffered bytes (pixel payloads plus bookkeeping).
    pub buffered_bytes: u64,
    /// High-water mark of [`buffered_bytes`](Self::buffered_bytes).
    pub buffered_bytes_peak: u64,
    /// Number of times the operator consumed an input element without
    /// being able to emit anything — the "blocking" behavior §3.2 warns
    /// about for spatial transforms.
    pub stalls: u64,
}

impl OpStats {
    /// Records `n` buffered points occupying `bytes` additional bytes.
    #[inline]
    pub fn buffer_grow(&mut self, n: u64, bytes: u64) {
        self.buffered_points += n;
        self.buffered_bytes += bytes;
        if self.buffered_points > self.buffered_points_peak {
            self.buffered_points_peak = self.buffered_points;
        }
        if self.buffered_bytes > self.buffered_bytes_peak {
            self.buffered_bytes_peak = self.buffered_bytes;
        }
    }

    /// Releases `n` buffered points occupying `bytes` bytes.
    #[inline]
    pub fn buffer_shrink(&mut self, n: u64, bytes: u64) {
        self.buffered_points = self.buffered_points.saturating_sub(n);
        self.buffered_bytes = self.buffered_bytes.saturating_sub(bytes);
    }

    /// Merges another operator's counters into this one (used when a
    /// macro operator aggregates its internal pipeline).
    pub fn merge(&mut self, other: &OpStats) {
        self.points_in += other.points_in;
        self.points_out += other.points_out;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.buffered_points_peak = self.buffered_points_peak.max(other.buffered_points_peak);
        self.buffered_bytes_peak = self.buffered_bytes_peak.max(other.buffered_bytes_peak);
        self.stalls += other.stalls;
    }

    /// Selectivity: fraction of input points that survived.
    pub fn selectivity(&self) -> f64 {
        if self.points_in == 0 {
            1.0
        } else {
            self.points_out as f64 / self.points_in as f64
        }
    }
}

/// A named snapshot of one operator's stats within a pipeline report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpReport {
    /// Operator name (e.g. `restrict_space`, `reproject[geos->latlon]`).
    pub name: String,
    /// Counter snapshot.
    pub stats: OpStats,
    /// Per-element pull-latency histogram (nanoseconds), present when
    /// the operator ran wrapped in an
    /// [`obs::TracedStream`](crate::obs::TracedStream).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pull_latency: Option<crate::obs::HistogramSnapshot>,
    /// Per-frame latency histogram (nanoseconds, FrameStart→FrameEnd),
    /// present when traced.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub frame_latency: Option<crate::obs::HistogramSnapshot>,
}

impl OpReport {
    /// A report with counters only (no latency observations).
    pub fn new(name: impl Into<String>, stats: OpStats) -> Self {
        OpReport { name: name.into(), stats, pull_latency: None, frame_latency: None }
    }

    /// Median per-element pull latency in nanoseconds (0 if untraced).
    pub fn pull_p50_ns(&self) -> u64 {
        self.pull_latency.as_ref().map_or(0, |h| h.p50())
    }

    /// 95th-percentile pull latency in nanoseconds (0 if untraced).
    pub fn pull_p95_ns(&self) -> u64 {
        self.pull_latency.as_ref().map_or(0, |h| h.p95())
    }

    /// 99th-percentile pull latency in nanoseconds (0 if untraced).
    pub fn pull_p99_ns(&self) -> u64 {
        self.pull_latency.as_ref().map_or(0, |h| h.p99())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_tracking_peaks() {
        let mut s = OpStats::default();
        s.buffer_grow(10, 40);
        s.buffer_grow(5, 20);
        s.buffer_shrink(12, 48);
        s.buffer_grow(1, 4);
        assert_eq!(s.buffered_points, 4);
        assert_eq!(s.buffered_points_peak, 15);
        assert_eq!(s.buffered_bytes_peak, 60);
    }

    #[test]
    fn shrink_saturates() {
        let mut s = OpStats::default();
        s.buffer_grow(2, 8);
        s.buffer_shrink(100, 800);
        assert_eq!(s.buffered_points, 0);
        assert_eq!(s.buffered_bytes, 0);
    }

    #[test]
    fn selectivity_defaults_to_one() {
        let s = OpStats::default();
        assert_eq!(s.selectivity(), 1.0);
        let s = OpStats { points_in: 100, points_out: 25, ..Default::default() };
        assert_eq!(s.selectivity(), 0.25);
    }

    #[test]
    fn merge_takes_peak_maxima() {
        let mut a = OpStats { buffered_points_peak: 5, points_in: 1, ..Default::default() };
        let b = OpStats { buffered_points_peak: 9, points_in: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.buffered_points_peak, 9);
        assert_eq!(a.points_in, 3);
    }
}
