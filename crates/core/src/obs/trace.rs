//! Structured operator/query event log.
//!
//! A bounded ring of [`TraceEvent`]s that the executor, operators and
//! the DSMS append to at *coarse* granularity (query/sector/frame
//! boundaries, stalls, buffer growth — never per point). Tests and the
//! frontend drain it; when full, the oldest events are dropped and
//! counted.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A query pipeline started executing.
    QueryStart,
    /// A query pipeline ran to completion.
    QueryEnd,
    /// A sector boundary passed through an operator.
    Sector,
    /// An operator consumed input without emitting (blocking behavior).
    Stall,
    /// An operator's buffer grew past a previous high-water mark.
    BufferPeak,
    /// A network request was served.
    Request,
    /// Anything else (detail carries the specifics).
    Other,
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since the log was created.
    pub ts_us: u64,
    /// Query id (0 when not tied to a query).
    pub query_id: u32,
    /// Operator or subsystem name.
    pub op: String,
    /// Event kind.
    pub kind: TraceKind,
    /// Free-form detail (counts, regions, error text).
    pub detail: String,
}

/// A bounded, thread-safe ring buffer of trace events.
#[derive(Debug)]
pub struct TraceLog {
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    /// Evicted-event count. `Relaxed` on both sides: the counter is a
    /// statistic, and the events themselves are already synchronized by
    /// the `events` mutex (the lock's acquire/release orders the ring;
    /// the atomic never carries a handoff of its own).
    dropped: AtomicU64,
}

impl TraceLog {
    /// Creates a log holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&self, query_id: u32, op: &str, kind: TraceKind, detail: impl Into<String>) {
        let ev = TraceEvent {
            ts_us: self.epoch.elapsed().as_micros() as u64,
            query_id,
            op: op.to_string(),
            kind,
            detail: detail.into(),
        };
        let mut events = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(ev);
    }

    /// Removes and returns every buffered event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        events.drain(..).collect()
    }

    /// Copies the buffered events without draining them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let events = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        events.iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum number of buffered events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for TraceLog {
    /// A log with the default capacity (4096 events).
    fn default() -> Self {
        TraceLog::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_in_order() {
        let log = TraceLog::new(16);
        log.record(1, "restrict_space", TraceKind::QueryStart, "");
        log.record(1, "restrict_space", TraceKind::Sector, "sector 0");
        log.record(1, "restrict_space", TraceKind::QueryEnd, "42 points");
        assert_eq!(log.len(), 3);
        let evs = log.drain();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, TraceKind::QueryStart);
        assert_eq!(evs[2].detail, "42 points");
        assert!(evs.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(log.is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let log = TraceLog::new(3);
        for i in 0..5 {
            log.record(0, "op", TraceKind::Other, format!("{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let evs = log.drain();
        assert_eq!(evs[0].detail, "2");
        assert_eq!(evs[2].detail, "4");
    }

    #[test]
    fn snapshot_does_not_drain() {
        let log = TraceLog::new(8);
        log.record(0, "op", TraceKind::Stall, "");
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn events_serialize() {
        let log = TraceLog::new(8);
        log.record(7, "compose", TraceKind::BufferPeak, "1024 points");
        let evs = log.drain();
        let json = serde_json::to_string(&evs).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, evs);
    }
}
