//! Observability: histograms, metric registry, and operator tracing.
//!
//! The paper's evaluation (§3–§4) is a space/time argument — restriction
//! cost per point, frame-scoped buffering, composition cost by point
//! organization. This module makes those quantities *measurable* on a
//! running system rather than asserted:
//!
//! * [`Histogram`] — a lock-free, log2-bucketed latency/size histogram
//!   (64 `AtomicU64` buckets; record/merge/percentile/snapshot);
//! * [`Registry`] — named counters, gauges and histograms with label
//!   sets, rendered as Prometheus text exposition v0.0.4 by hand
//!   (std-only, scrape-ready);
//! * [`TraceLog`] — a bounded ring of structured [`TraceEvent`]s
//!   (query/sector boundaries, stalls, buffer peaks);
//! * [`TracedStream`] — a [`GeoStream`](crate::model::GeoStream)
//!   decorator the planner threads through every operator so
//!   [`RunReport`](crate::exec::RunReport) can expose per-op pull/frame
//!   latency percentiles;
//! * [`TraceContext`] / [`Span`] / [`FlightRecorder`] / [`SpanStream`]
//!   — causal tracing: a per-query trace context propagated on the
//!   chunk flow, per-stage spans with parentage and outcomes, and a
//!   bounded flight recorder with failure-edge dumps.
//!
//! Everything here is `std`-only: no new dependencies.

mod clock;
mod hist;
mod registry;
mod span;
mod trace;
mod traced;

pub use clock::{SampledClock, PULL_SAMPLE_EVERY};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, HistogramHandle, MetricKey, Registry};
pub use span::{
    now_ns, FlightRecorder, FrameHook, RecorderDump, RecorderSnapshot, Span, SpanGuard,
    SpanOutcome, SpanStream, TraceContext, DEFAULT_SPAN_CAPACITY,
};
pub use trace::{TraceEvent, TraceKind, TraceLog};
pub use traced::{PipelineObs, TracedStream};
