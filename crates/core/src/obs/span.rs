//! Causal spans and the per-query flight recorder.
//!
//! PR 1's [`TraceLog`](super::TraceLog) answers "what happened
//! recently"; it cannot answer "where did query 42's frame 907 stall",
//! because its events carry no causal identity. This module adds one:
//!
//! * [`TraceContext`] — `{trace_id, span_id, parent}` minted per
//!   registered query. It is `Copy` and rides on
//!   [`Chunk::ctx`](crate::model::Chunk) through channel fan-out, so a
//!   consumer can link its scan span to the producing pump span without
//!   any allocation on the pooled hot path.
//! * [`Span`] — one stage's execution record: start/end ticks (process
//!   epoch, see [`now_ns`]), points handled, outcome, and an optional
//!   cross-trace [`Span::link`].
//! * [`FlightRecorder`] — a bounded per-query span ring plus a small
//!   set of frozen dumps captured at failure edges (watchdog
//!   cancellation, supervisor restart, pump panic).
//! * [`SpanGuard`] — RAII handle that closes its span on drop or
//!   explicit [`SpanGuard::finish`].
//! * [`SpanStream`] — a transparent [`GeoStream`] decorator that
//!   accounts points into a span, optionally captures the first
//!   chunk-carried context as the span's link, and can observe
//!   `FrameStart` markers for event-time freshness accounting.

use crate::model::{ChunkOrMarker, Element, FrameInfo, GeoStream, Marker, StreamSchema};
use crate::stats::{OpReport, OpStats};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default span-ring capacity of a [`FlightRecorder`].
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Frozen dumps kept per recorder (oldest win: the first failures of a
/// run are the interesting ones).
const MAX_DUMPS: usize = 8;

/// Nanoseconds since the process-wide monotonic epoch.
///
/// All span ticks and freshness stamps share this clock so lags are
/// plain subtractions; the epoch is the first call in the process.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Causal identity of one span: which trace it belongs to, which span
/// it is, and which span caused it (`parent == 0` means root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Trace (one per registered query, or per ingest runtime).
    pub trace_id: u64,
    /// This span's id, unique within the trace.
    pub span_id: u64,
    /// Causing span id within the same trace (0 = root).
    pub parent: u64,
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanOutcome {
    /// Ran to completion (or is still open at dump time).
    Ok,
    /// Cut short by the watchdog or a shutdown.
    Cancelled,
    /// The stage died (pump panic, ingest crash).
    Error,
}

/// One recorded stage execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Span id, unique within the trace.
    pub span_id: u64,
    /// Parent span id (0 = root of the trace).
    pub parent: u64,
    /// Query the trace was minted for (`u32::MAX` = shared ingest).
    pub query_id: u32,
    /// Stage label (e.g. `delivery`, `restrict_space`, `scan:b4-ir`).
    pub stage: String,
    /// Start tick ([`now_ns`] clock).
    pub start_ns: u64,
    /// End tick; 0 while the span is still open.
    pub end_ns: u64,
    /// Points that passed through the stage.
    pub points: u64,
    /// How the stage ended.
    pub outcome: SpanOutcome,
    /// Cross-trace causal link (e.g. a scan span linking the ingest
    /// pump context carried on the first chunk it received).
    pub link: Option<TraceContext>,
}

/// A frozen copy of the span ring, captured at a failure edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecorderDump {
    /// Why the dump was taken (`watchdog`, `restart:band3`, ...).
    pub reason: String,
    /// When it was taken ([`now_ns`] clock).
    pub at_ns: u64,
    /// The ring contents at that instant, oldest first.
    pub spans: Vec<Span>,
}

/// Everything a recorder knows, in one serializable value — the
/// payload of `GET /trace/<query-id>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecorderSnapshot {
    /// Query the recorder belongs to.
    pub query_id: u32,
    /// Trace id minted for the query.
    pub trace_id: u64,
    /// Spans evicted from the ring because it was full.
    pub dropped: u64,
    /// Current ring contents, oldest first.
    pub spans: Vec<Span>,
    /// Failure-edge dumps, oldest first.
    pub dumps: Vec<RecorderDump>,
}

/// Bounded per-query span ring with failure-edge dumps.
///
/// Span ids are allocated from an atomic so planner construction can
/// reserve a parent id *before* building children (the pipeline is
/// built inside-out). `build_parent` threads a parent id into source
/// factories, which cannot take parameters.
#[derive(Debug)]
pub struct FlightRecorder {
    trace_id: u64,
    query_id: u32,
    capacity: usize,
    next_span: AtomicU64,
    build_parent: AtomicU64,
    spans: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
    dumps: Mutex<Vec<RecorderDump>>,
}

impl FlightRecorder {
    /// A recorder for `query_id` holding at most `capacity` spans.
    pub fn new(query_id: u32, capacity: usize) -> Self {
        static TRACE_IDS: AtomicU64 = AtomicU64::new(1);
        FlightRecorder {
            trace_id: TRACE_IDS.fetch_add(1, Ordering::Relaxed),
            query_id,
            capacity: capacity.max(1),
            next_span: AtomicU64::new(1),
            build_parent: AtomicU64::new(0),
            spans: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            dumps: Mutex::new(Vec::new()),
        }
    }

    /// A recorder with the default capacity.
    pub fn for_query(query_id: u32) -> Self {
        FlightRecorder::new(query_id, DEFAULT_SPAN_CAPACITY)
    }

    /// Trace id minted for this recorder.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Query this recorder belongs to.
    pub fn query_id(&self) -> u32 {
        self.query_id
    }

    /// Reserves the next span id without opening a span.
    pub fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Sets the parent id that source factories should chain under.
    pub fn set_build_parent(&self, span_id: u64) {
        self.build_parent.store(span_id, Ordering::Relaxed);
    }

    /// Parent id for factory-built stages (0 when none was set).
    pub fn build_parent(&self) -> u64 {
        self.build_parent.load(Ordering::Relaxed)
    }

    /// Opens a span under `parent` and returns its RAII guard.
    pub fn begin(self: &Arc<Self>, stage: &str, parent: u64) -> SpanGuard {
        let id = self.alloc_span();
        self.begin_with_id(id, stage, parent)
    }

    /// Opens a span whose id was reserved earlier via
    /// [`FlightRecorder::alloc_span`].
    pub fn begin_with_id(self: &Arc<Self>, span_id: u64, stage: &str, parent: u64) -> SpanGuard {
        SpanGuard {
            rec: Arc::clone(self),
            span: Some(Span {
                trace_id: self.trace_id,
                span_id,
                parent,
                query_id: self.query_id,
                stage: stage.to_string(),
                start_ns: now_ns(),
                end_ns: 0,
                points: 0,
                outcome: SpanOutcome::Ok,
                link: None,
            }),
        }
    }

    /// Records an already-finished span (e.g. a backfill handoff whose
    /// duration is only known at the splice switch). Returns its id.
    pub fn record_span(
        &self,
        stage: &str,
        parent: u64,
        start_ns: u64,
        end_ns: u64,
        points: u64,
        outcome: SpanOutcome,
    ) -> u64 {
        let span_id = self.alloc_span();
        self.push(Span {
            trace_id: self.trace_id,
            span_id,
            parent,
            query_id: self.query_id,
            stage: stage.to_string(),
            start_ns,
            end_ns,
            points,
            outcome,
            link: None,
        });
        span_id
    }

    fn push(&self, span: Span) {
        let mut ring = self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Copies the ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let ring = self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter().cloned().collect()
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum buffered spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Freezes the current ring contents under `reason`. At most
    /// [`MAX_DUMPS`] dumps are kept; later ones are dropped (the first
    /// failures of a run are the diagnostic ones).
    pub fn freeze(&self, reason: &str) {
        let spans = self.snapshot();
        let mut dumps = self.dumps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if dumps.len() < MAX_DUMPS {
            dumps.push(RecorderDump { reason: reason.to_string(), at_ns: now_ns(), spans });
        }
    }

    /// Copies the failure-edge dumps, oldest first.
    pub fn dumps(&self) -> Vec<RecorderDump> {
        self.dumps.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Serializable snapshot of everything the recorder holds.
    pub fn to_snapshot(&self) -> RecorderSnapshot {
        RecorderSnapshot {
            query_id: self.query_id,
            trace_id: self.trace_id,
            dropped: self.dropped(),
            spans: self.snapshot(),
            dumps: self.dumps(),
        }
    }
}

/// RAII handle on an open [`Span`]. The span lands in the recorder on
/// [`SpanGuard::finish`] or on drop (outcome `Ok`).
#[derive(Debug)]
pub struct SpanGuard {
    rec: Arc<FlightRecorder>,
    span: Option<Span>,
}

impl SpanGuard {
    /// This span's id.
    pub fn span_id(&self) -> u64 {
        self.span.as_ref().map_or(0, |s| s.span_id)
    }

    /// This span's causal identity (for stamping onto chunks).
    pub fn ctx(&self) -> TraceContext {
        match &self.span {
            Some(s) => TraceContext { trace_id: s.trace_id, span_id: s.span_id, parent: s.parent },
            None => TraceContext { trace_id: self.rec.trace_id(), span_id: 0, parent: 0 },
        }
    }

    /// Adds to the span's point count.
    pub fn add_points(&mut self, n: u64) {
        if let Some(s) = &mut self.span {
            s.points += n;
        }
    }

    /// True once a cross-trace link has been captured.
    pub fn has_link(&self) -> bool {
        self.span.as_ref().is_some_and(|s| s.link.is_some())
    }

    /// Captures a cross-trace causal link (first one wins).
    pub fn set_link(&mut self, ctx: TraceContext) {
        if let Some(s) = &mut self.span {
            if s.link.is_none() {
                s.link = Some(ctx);
            }
        }
    }

    /// Closes the span with an explicit outcome.
    pub fn finish(mut self, outcome: SpanOutcome) {
        self.close(outcome);
    }

    fn close(&mut self, outcome: SpanOutcome) {
        if let Some(mut s) = self.span.take() {
            s.end_ns = now_ns();
            s.outcome = outcome;
            self.rec.push(s);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // A guard dropped during unwind (pump panic) records the death
        // instead of a spurious success.
        let outcome = if std::thread::panicking() { SpanOutcome::Error } else { SpanOutcome::Ok };
        self.close(outcome);
    }
}

/// Per-frame freshness observer: called with each `FrameStart` seen at
/// the wrapped stage (used at delivery to compute synthesis→delivery
/// lag and watermarks).
pub type FrameHook = Box<dyn FnMut(&FrameInfo) + Send>;

/// A transparent [`GeoStream`] decorator that accounts the wrapped
/// stage into a [`Span`].
///
/// Unlike [`TracedStream`](super::TracedStream) it takes no latency
/// measurements of its own — it only counts points, closes the span
/// when the stream ends, optionally captures the first chunk-carried
/// [`TraceContext`] as the span's link, and optionally reports
/// `FrameStart` markers to a [`FrameHook`]. It is invisible to
/// `collect_stats`, so operator reports are unchanged.
pub struct SpanStream<S: GeoStream> {
    inner: S,
    guard: Option<SpanGuard>,
    capture_link: bool,
    on_frame: Option<FrameHook>,
}

impl<S: GeoStream> SpanStream<S> {
    /// Wraps `inner`, accounting into `guard`.
    pub fn new(inner: S, guard: SpanGuard) -> Self {
        SpanStream { inner, guard: Some(guard), capture_link: false, on_frame: None }
    }

    /// Capture the first chunk-carried context as the span's link.
    pub fn with_link_capture(mut self) -> Self {
        self.capture_link = true;
        self
    }

    /// Observe every `FrameStart` marker (builder style).
    pub fn with_frame_hook(mut self, hook: impl FnMut(&FrameInfo) + Send + 'static) -> Self {
        self.on_frame = Some(Box::new(hook));
        self
    }

    /// The wrapped stream.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn finish(&mut self, outcome: SpanOutcome) {
        if let Some(g) = self.guard.take() {
            g.finish(outcome);
        }
    }

    fn note_frame(&mut self, fi: &FrameInfo) {
        if let Some(hook) = &mut self.on_frame {
            hook(fi);
        }
    }
}

impl<S: GeoStream> GeoStream for SpanStream<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        self.inner.schema()
    }

    fn next_element(&mut self) -> Option<Element<Self::V>> {
        let el = self.inner.next_element();
        match &el {
            Some(Element::Point(_)) => {
                if let Some(g) = &mut self.guard {
                    g.add_points(1);
                }
            }
            Some(Element::FrameStart(fi)) => {
                let fi = *fi;
                self.note_frame(&fi);
            }
            None => self.finish(SpanOutcome::Ok),
            _ => {}
        }
        el
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<Self::V>> {
        let item = self.inner.next_chunk(budget);
        match &item {
            Some(ChunkOrMarker::Chunk(c)) => {
                if let Some(g) = &mut self.guard {
                    g.add_points(c.points.len() as u64);
                    if self.capture_link && !g.has_link() {
                        if let Some(ctx) = c.ctx {
                            g.set_link(ctx);
                        }
                    }
                }
                if let Some(Marker::FrameStart(fi)) = &c.end {
                    let fi = *fi;
                    self.note_frame(&fi);
                }
            }
            Some(ChunkOrMarker::Marker(Marker::FrameStart(fi))) => {
                let fi = *fi;
                self.note_frame(&fi);
            }
            None => self.finish(SpanOutcome::Ok),
            _ => {}
        }
        item
    }

    fn op_stats(&self) -> OpStats {
        self.inner.op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.inner.collect_stats(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn source() -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        VecStream::single_sector("src", lattice, 0, |c, r| f64::from(c + r))
    }

    #[test]
    fn guard_records_span_with_parentage() {
        let rec = Arc::new(FlightRecorder::new(7, 16));
        let root = rec.begin("delivery", 0);
        let root_id = root.span_id();
        let mut child = rec.begin("restrict_space", root_id);
        child.add_points(42);
        child.finish(SpanOutcome::Ok);
        root.finish(SpanOutcome::Ok);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        // Child finished first, so it lands first.
        assert_eq!(spans[0].stage, "restrict_space");
        assert_eq!(spans[0].parent, root_id);
        assert_eq!(spans[0].points, 42);
        assert_eq!(spans[1].stage, "delivery");
        assert_eq!(spans[1].parent, 0);
        assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
        assert!(spans.iter().all(|s| s.trace_id == rec.trace_id()));
    }

    #[test]
    fn ring_evicts_and_counts_drops() {
        let rec = Arc::new(FlightRecorder::new(1, 2));
        for i in 0..5 {
            rec.begin(&format!("s{i}"), 0).finish(SpanOutcome::Ok);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let spans = rec.snapshot();
        assert_eq!(spans[0].stage, "s3");
        assert_eq!(spans[1].stage, "s4");
    }

    #[test]
    fn span_stream_counts_points_and_closes_on_exhaustion() {
        let rec = Arc::new(FlightRecorder::new(1, 16));
        let guard = rec.begin("scan", 0);
        let mut s = SpanStream::new(source(), guard);
        while s.next_chunk(16).is_some() {}
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "scan");
        assert_eq!(spans[0].points, 64);
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }

    #[test]
    fn freeze_captures_ring_and_caps_dumps() {
        let rec = Arc::new(FlightRecorder::new(1, 8));
        rec.begin("pump", 0).finish(SpanOutcome::Error);
        for i in 0..12 {
            rec.freeze(&format!("restart:{i}"));
        }
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 8, "dump count is capped");
        assert_eq!(dumps[0].reason, "restart:0");
        assert_eq!(dumps[0].spans.len(), 1);
        assert_eq!(dumps[0].spans[0].outcome, SpanOutcome::Error);
    }

    #[test]
    fn snapshot_round_trips_as_json() {
        let rec = Arc::new(FlightRecorder::new(3, 8));
        let mut g = rec.begin("scan", 0);
        g.set_link(TraceContext { trace_id: 99, span_id: 5, parent: 0 });
        g.finish(SpanOutcome::Cancelled);
        rec.freeze("watchdog");
        let snap = rec.to_snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RecorderSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
