//! Named metric registry with Prometheus text rendering.
//!
//! A [`Registry`] hands out cheap cloneable handles ([`Counter`],
//! [`Gauge`], [`HistogramHandle`]) keyed by metric name plus an
//! optional label set, and renders everything it knows as Prometheus
//! text exposition format v0.0.4 — by hand, std-only, so a running
//! DSMS can be scraped without pulling in any client library.

use super::hist::{bucket_upper_bound, Histogram, NUM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (e.g. `geostreams_frames_delivered_total`).
    pub name: String,
    /// Label pairs, kept sorted for stable rendering.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    fn render_labels(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A monotonically increasing counter handle.
///
/// # Memory-ordering contract
///
/// Every access is `Ordering::Relaxed`, deliberately: a counter is a
/// pure statistic. No thread reads it to decide whether *other* data is
/// ready — nothing is published or acquired through it, so the only
/// property needed is per-location atomicity, which `Relaxed` gives.
/// Scrapes may observe increments slightly out of order across
/// counters; the exposition endpoint documents totals as eventually
/// consistent. If a counter ever doubles as a readiness flag it must be
/// split into a separate `Acquire`/`Release` atomic — geolint's
/// `relaxed-strong-mix` rule flags exactly that mixing per field.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
///
/// Same memory-ordering contract as [`Counter`]: all accesses are
/// `Relaxed` because a gauge is an observational statistic (queue
/// depth, bytes buffered), never a synchronization handoff. Writers on
/// the hot path pay one uncontended atomic RMW and no fences.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds to the gauge.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts from the gauge (saturating at zero is the caller's
    /// concern; this wraps like the underlying atomic).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared histogram handle.
pub type HistogramHandle = Arc<Histogram>;

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<AtomicU64>>,
    gauges: BTreeMap<MetricKey, Arc<AtomicU64>>,
    histograms: BTreeMap<MetricKey, HistogramHandle>,
    help: BTreeMap<String, String>,
}

/// A registry of named counters, gauges and histograms.
///
/// Registration takes a short mutex; the returned handles are
/// lock-free. Register once (at pipeline/server construction), record
/// on the hot path through the handle.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Counter(Arc::clone(inner.counters.entry(key).or_default()))
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Gauge(Arc::clone(inner.gauges.entry(key).or_default()))
    }

    /// Gets or creates a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(inner.histograms.entry(key).or_default())
    }

    /// Attaches HELP text to a metric name (rendered once per name).
    pub fn set_help(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Value of a counter if it exists (test/debug convenience).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.counters.get(&key).map(|c| c.load(Ordering::Relaxed))
    }

    /// Renders every registered metric as Prometheus text exposition
    /// format v0.0.4.
    ///
    /// Counters render as `name{labels} value`; gauges likewise;
    /// histograms render cumulative `name_bucket{le="…"}` lines (only
    /// buckets at or below the last non-empty one, plus `+Inf`),
    /// followed by `name_sum` and `name_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        let mut last_name = String::new();
        let emit_head = |out: &mut String, name: &str, kind: &str, last: &mut String| {
            if *last != name {
                if let Some(help) = inner.help.get(name) {
                    let _ = writeln!(out, "# HELP {name} {help}");
                }
                let _ = writeln!(out, "# TYPE {name} {kind}");
                *last = name.to_string();
            }
        };
        for (key, v) in &inner.counters {
            emit_head(&mut out, &key.name, "counter", &mut last_name);
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                key.render_labels(None),
                v.load(Ordering::Relaxed)
            );
        }
        for (key, v) in &inner.gauges {
            emit_head(&mut out, &key.name, "gauge", &mut last_name);
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                key.render_labels(None),
                v.load(Ordering::Relaxed)
            );
        }
        for (key, h) in &inner.histograms {
            emit_head(&mut out, &key.name, "histogram", &mut last_name);
            let snap = h.snapshot();
            let last_nonempty = snap.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for (i, &n) in snap.buckets.iter().enumerate() {
                cumulative += n;
                if i > last_nonempty || i == NUM_BUCKETS - 1 {
                    break;
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.name,
                    key.render_labels(Some(("le", &bucket_upper_bound(i).to_string()))),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                key.name,
                key.render_labels(Some(("le", "+Inf"))),
                snap.count
            );
            let _ = writeln!(out, "{}_sum{} {}", key.name, key.render_labels(None), snap.sum);
            let _ = writeln!(out, "{}_count{} {}", key.name, key.render_labels(None), snap.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_storage() {
        let r = Registry::new();
        let a = r.counter("hits_total", &[]);
        let b = r.counter("hits_total", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("hits_total", &[]), Some(3));
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        r.counter("req_total", &[("code", "200")]).add(7);
        r.counter("req_total", &[("code", "500")]).inc();
        assert_eq!(r.counter_value("req_total", &[("code", "200")]), Some(7));
        assert_eq!(r.counter_value("req_total", &[("code", "500")]), Some(1));
        // Label order is normalized.
        let x = r.counter("multi", &[("b", "2"), ("a", "1")]);
        let y = r.counter("multi", &[("a", "1"), ("b", "2")]);
        x.inc();
        assert_eq!(y.get(), 1);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth", &[]);
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn prometheus_rendering_is_parseable() {
        let r = Registry::new();
        r.set_help("req_total", "Total requests.");
        r.counter("req_total", &[("code", "200")]).add(5);
        r.gauge("depth", &[]).set(3);
        let h = r.histogram("lat_ns", &[]);
        h.record(100);
        h.record(100);
        h.record(100_000);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP req_total Total requests."));
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{code=\"200\"} 5"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 3"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 100200"));
        assert!(text.contains("lat_ns_count 3"));
        // Bucket counts are cumulative and non-decreasing.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= prev, "{line}");
            prev = n;
        }
        assert_eq!(prev, 3);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("odd", &[("q", "a\"b\\c")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("odd{q=\"a\\\"b\\\\c\"} 1"));
    }
}
