//! Lock-free log2-bucketed histogram.
//!
//! The paper argues about operator cost distributions ("constant cost
//! per point", §3.1) — a histogram with power-of-two buckets is the
//! cheapest structure that can verify such claims on a hot path: one
//! `leading_zeros` and three relaxed atomic adds per sample, no locks,
//! no allocation.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds the value 0, bucket `i` (1..=62)
/// holds values in `[2^(i-1), 2^i)`, and bucket 63 holds everything
/// from `2^62` up (including `u64::MAX`).
pub const NUM_BUCKETS: usize = 64;

/// Index of the bucket that `value` falls into.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the value reported for
/// percentiles that land in it — conservative for latencies).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= NUM_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-size, lock-free histogram of `u64` samples (typically
/// nanoseconds or bytes). All mutation is relaxed atomics: safe to
/// share across threads behind an `Arc` and cheap enough for per-point
/// hot paths.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Three relaxed atomic adds; no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records `n` samples of the same `value` with a single set of
    /// atomic adds — the per-chunk form used by the vectorized executor
    /// to keep latency histograms element-denominated (`count` advances
    /// by `n`) without paying one `record` call per element.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wraps on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`p` in `[0, 100]`); 0 if the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// Resets every bucket to zero (not atomic across buckets; callers
    /// that need a consistent view should snapshot instead).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A plain-value copy of the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets: buckets.to_vec(), count: self.count(), sum: self.sum() }
    }
}

/// A point-in-time, serializable copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`NUM_BUCKETS` entries; see
    /// [`bucket_upper_bound`] for the value range of each).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`p` in `[0, 100]`); 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Arithmetic mean of the recorded samples; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1 << 62), NUM_BUCKETS - 1);
        // (2^62)-1 is the top of the last bounded bucket; 2^62 and up
        // saturate into the final catch-all bucket.
        assert_eq!(bucket_index((1 << 62) - 1), NUM_BUCKETS - 2);
    }

    #[test]
    fn upper_bounds_bracket_their_bucket() {
        for v in [0u64, 1, 2, 3, 5, 100, 1023, 1024, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn record_and_count() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 100_106);
        let s = h.snapshot();
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn percentile_picks_the_right_bucket() {
        let h = Histogram::new();
        // 99 fast samples (~1µs) and one slow outlier (~1ms).
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        // 1000 lands in bucket [512, 1024) whose upper bound is 1023.
        assert_eq!(h.percentile(0.0), 1023);
        assert_eq!(h.percentile(50.0), 1023);
        let p99 = h.percentile(99.0);
        assert!(p99 < 1_000_000, "p99={p99}");
        let p100 = h.percentile(100.0);
        assert!(p100 >= 1_000_000, "p100={p100}");
    }

    #[test]
    fn record_n_matches_n_records() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..37 {
            a.record(900);
        }
        b.record_n(900, 37);
        b.record_n(900, 0); // no-op
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(10);
        b.record(1 << 30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 20 + (1 << 30));
        let s = a.snapshot();
        assert_eq!(s.buckets[bucket_index(10)], 2);
        assert_eq!(s.buckets[bucket_index(1 << 30)], 1);
    }

    #[test]
    fn snapshot_merge_matches_atomic_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 9, 17] {
            a.record(v);
            b.record(v * 3);
        }
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(sa, a.snapshot());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = std::sync::Arc::clone(&h);
            joins.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(i + t);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
