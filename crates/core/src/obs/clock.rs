//! Sampled pull-timing: the clock discipline behind geolint's
//! `instant-in-chunk-loop` rule.
//!
//! Taking an `Instant` pair around every chunk pull costs two clock
//! reads per item and — worse, under the morsel driver — lets worker
//! and driver clock reads double-count the same wall interval. The
//! [`SampledClock`] reads the clock on every [`PULL_SAMPLE_EVERY`]th
//! pull only, charges the intervening pulls at the last measured
//! per-element cost, and keeps the histogram element-denominated
//! (`pull_latency.count == elements`), mirroring the discipline
//! [`TracedStream`](crate::obs::TracedStream) already uses for per-op
//! timing.

use std::time::Instant;

use super::hist::Histogram;

/// Sample every Nth pull (power of two, so the phase check is a mask).
pub const PULL_SAMPLE_EVERY: u64 = 16;

/// A sampling pull timer. One per driver (or per worker): the state is
/// deliberately not shared, so concurrent workers each measure their
/// own pulls and no interval is counted twice.
#[derive(Debug, Default)]
pub struct SampledClock {
    seq: u64,
    /// Elements pulled since the last sampled measurement.
    unsampled_elements: u64,
    /// Per-element cost of the last sampled pull (charged to unsampled
    /// pulls and to the end-of-stream flush).
    last_unit_ns: u64,
}

impl SampledClock {
    /// A fresh clock; its first pull is always sampled.
    pub fn new() -> Self {
        SampledClock::default()
    }

    /// Starts timing one pull: returns `Some(start)` on sampled pulls,
    /// `None` on the rest (no clock read at all).
    pub fn begin(&mut self) -> Option<Instant> {
        let sampled = self.seq & (PULL_SAMPLE_EVERY - 1) == 0;
        self.seq = self.seq.wrapping_add(1);
        if sampled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finishes one pull of `n` elements. Sampled pulls measure and
    /// record the accumulated unsampled backlog at the fresh unit cost;
    /// unsampled pulls just grow the backlog.
    pub fn end(&mut self, started: Option<Instant>, n: u64, hist: &Histogram) {
        match started {
            Some(t0) => {
                let dt = t0.elapsed().as_nanos() as u64;
                let unit = dt / n.max(1);
                self.last_unit_ns = unit;
                hist.record_n(unit, n + self.unsampled_elements);
                self.unsampled_elements = 0;
            }
            None => self.unsampled_elements += n,
        }
    }

    /// Flushes the unsampled backlog at the last measured unit cost
    /// (call once at end of stream so `count` equals elements).
    pub fn flush(&mut self, hist: &Histogram) {
        if self.unsampled_elements > 0 {
            hist.record_n(self.last_unit_ns, self.unsampled_elements);
            self.unsampled_elements = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_count_stays_element_denominated() {
        let hist = Histogram::new();
        let mut clock = SampledClock::new();
        let mut elements = 0u64;
        for i in 0..100u64 {
            let n = (i % 7) + 1;
            let t0 = clock.begin();
            elements += n;
            clock.end(t0, n, &hist);
        }
        clock.flush(&hist);
        assert_eq!(hist.snapshot().count, elements);
    }

    #[test]
    fn only_every_sixteenth_pull_reads_the_clock() {
        let mut clock = SampledClock::new();
        let mut sampled = 0;
        for _ in 0..64 {
            if clock.begin().is_some() {
                sampled += 1;
            }
        }
        assert_eq!(sampled, 64 / PULL_SAMPLE_EVERY as usize);
    }

    #[test]
    fn flush_without_backlog_is_a_no_op() {
        let hist = Histogram::new();
        let mut clock = SampledClock::new();
        let t0 = clock.begin();
        clock.end(t0, 4, &hist);
        clock.flush(&hist);
        assert_eq!(hist.snapshot().count, 4);
    }
}
