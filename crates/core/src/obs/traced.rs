//! Per-operator tracing wrapper.
//!
//! [`TracedStream`] decorates any [`GeoStream`] with latency histograms
//! and coarse trace events. The per-point hot path is two `Instant`
//! reads and one atomic histogram record — no locks, no allocation.
//! Boundary events (sectors, stalls, buffer peaks) additionally go to
//! an optional shared [`TraceLog`].

use super::hist::Histogram;
use super::span::{FlightRecorder, SpanGuard, SpanOutcome};
use super::trace::{TraceKind, TraceLog};
use crate::model::{ChunkOrMarker, Element, GeoStream, Marker, StreamSchema};
use crate::stats::{OpReport, OpStats};
use std::sync::Arc;
use std::time::Instant;

/// Shared configuration for instrumenting a pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineObs {
    /// Query id stamped on trace events.
    pub query_id: u32,
    /// Optional shared event log (sector boundaries, stalls, peaks).
    pub trace: Option<Arc<TraceLog>>,
    /// Optional per-query flight recorder; when set, the planner opens
    /// one span per operator and chains them by parentage.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Span id the next wrapped operator should chain under (0 = root).
    pub parent: u64,
}

impl PipelineObs {
    /// Observation config for a query, without an event log.
    pub fn for_query(query_id: u32) -> Self {
        PipelineObs { query_id, trace: None, recorder: None, parent: 0 }
    }

    /// Attaches a shared event log (builder style).
    pub fn with_trace(mut self, trace: Arc<TraceLog>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a per-query flight recorder (builder style).
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Same config, chained under `parent` (builder style).
    pub fn under(mut self, parent: u64) -> Self {
        self.parent = parent;
        self
    }
}

/// Chunked pulls are clock-sampled at this rate (must be a power of
/// two): one timed pull amortizes its latency over the elements of the
/// untimed pulls since the previous sample. Reading the monotonic
/// clock twice per pull is the single largest instrumentation cost on
/// cheap pipelines — sampling keeps the traced chunked hot path within
/// the gate's 5% overhead budget while histogram counts stay
/// element-denominated.
const PULL_SAMPLE_EVERY: u64 = 16;

/// A [`GeoStream`] decorator that measures its inner operator.
pub struct TracedStream<S: GeoStream> {
    inner: S,
    pull_ns: Arc<Histogram>,
    frame_ns: Arc<Histogram>,
    frame_open: Option<Instant>,
    last_stalls: u64,
    last_buffer_peak: u64,
    obs: PipelineObs,
    span: Option<SpanGuard>,
    /// Chunked pulls issued so far (sampling phase).
    pull_seq: u64,
    /// Frames opened so far on the chunked path (frame-latency
    /// sampling phase).
    frame_seq: u64,
    /// Elements delivered by untimed chunked pulls since the last
    /// clock sample, waiting to be recorded at the next one.
    unsampled_elements: u64,
    /// Per-element latency of the last clock sample, used to flush
    /// [`unsampled_elements`](Self::unsampled_elements) at end of
    /// stream.
    last_unit_ns: u64,
}

impl<S: GeoStream> TracedStream<S> {
    /// Wraps `inner` with fresh histograms.
    pub fn new(inner: S, obs: PipelineObs) -> Self {
        TracedStream::with_span(inner, obs, None)
    }

    /// Wraps `inner`, additionally accounting into `span` (opened by
    /// the planner with the operator's causal parentage).
    pub fn with_span(inner: S, obs: PipelineObs, span: Option<SpanGuard>) -> Self {
        TracedStream {
            inner,
            pull_ns: Arc::new(Histogram::new()),
            frame_ns: Arc::new(Histogram::new()),
            frame_open: None,
            last_stalls: 0,
            last_buffer_peak: 0,
            obs,
            span,
            pull_seq: 0,
            frame_seq: 0,
            unsampled_elements: 0,
            last_unit_ns: 0,
        }
    }

    /// The wrapped stream.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Handle to the per-element pull-latency histogram (nanoseconds).
    pub fn pull_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.pull_ns)
    }

    /// Handle to the per-frame latency histogram (nanoseconds).
    pub fn frame_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.frame_ns)
    }

    /// Emits boundary trace events when the inner operator stalled or
    /// grew its buffer past the previous peak. Called on frame/sector
    /// edges only — off the per-point path.
    fn check_pressure(&mut self) {
        let Some(trace) = &self.obs.trace else { return };
        let stats = self.inner.op_stats();
        let name = &self.inner.schema().name;
        if stats.stalls > self.last_stalls {
            trace.record(
                self.obs.query_id,
                name,
                TraceKind::Stall,
                format!("+{} stalls ({} total)", stats.stalls - self.last_stalls, stats.stalls),
            );
            self.last_stalls = stats.stalls;
        }
        if stats.buffered_points_peak > self.last_buffer_peak {
            trace.record(
                self.obs.query_id,
                name,
                TraceKind::BufferPeak,
                format!(
                    "{} points / {} bytes buffered",
                    stats.buffered_points_peak, stats.buffered_bytes_peak
                ),
            );
            self.last_buffer_peak = stats.buffered_points_peak;
        }
    }

    /// Boundary bookkeeping for a marker observed on the chunked path:
    /// frame latency, sector trace events, pressure checks. `t0` is the
    /// pull start of the item that carried the marker, when that pull
    /// was clock-sampled. Frame latency is itself sampled: every
    /// [`PULL_SAMPLE_EVERY`]th frame forces a clock read at its start
    /// so some frames always land in the histogram even when the pull
    /// sampling phase never lines up with a `FrameStart`.
    fn note_marker(&mut self, m: &Marker, t0: Option<Instant>) {
        match m {
            Marker::FrameStart(_) => {
                let timed = self.frame_seq & (PULL_SAMPLE_EVERY - 1) == 0;
                self.frame_seq = self.frame_seq.wrapping_add(1);
                self.frame_open = if timed { t0.or_else(|| Some(Instant::now())) } else { t0 };
            }
            Marker::FrameEnd(_) => {
                if let Some(opened) = self.frame_open.take() {
                    self.frame_ns.record(opened.elapsed().as_nanos() as u64);
                }
                // Pressure checks run on sector edges only here: one
                // `op_stats()` walk per frame is measurable on the
                // chunked hot path, and peaks/stalls are high-water
                // marks that coalesce losslessly to the next check.
            }
            Marker::SectorStart(si) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} start", si.sector_id),
                    );
                }
            }
            Marker::SectorEnd(se) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} end", se.sector_id),
                    );
                }
                self.check_pressure();
            }
        }
    }
}

impl<S: GeoStream> GeoStream for TracedStream<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        self.inner.schema()
    }

    fn next_element(&mut self) -> Option<Element<Self::V>> {
        let t0 = Instant::now();
        let el = self.inner.next_element();
        let dt = t0.elapsed().as_nanos() as u64;
        self.pull_ns.record(dt);
        match &el {
            Some(Element::Point(_)) => {
                if let Some(span) = &mut self.span {
                    span.add_points(1);
                }
            }
            Some(Element::FrameStart(_)) => self.frame_open = Some(t0),
            Some(Element::FrameEnd(_)) => {
                let opened = self.frame_open.take().unwrap_or(t0);
                self.frame_ns.record(opened.elapsed().as_nanos() as u64);
                self.check_pressure();
            }
            Some(Element::SectorStart(si)) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} start", si.sector_id),
                    );
                }
            }
            Some(Element::SectorEnd(se)) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} end", se.sector_id),
                    );
                }
                self.check_pressure();
            }
            None => {
                self.check_pressure();
                if let Some(span) = self.span.take() {
                    span.finish(SpanOutcome::Ok);
                }
            }
        }
        el
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<Self::V>> {
        let sampled = self.pull_seq & (PULL_SAMPLE_EVERY - 1) == 0;
        self.pull_seq = self.pull_seq.wrapping_add(1);
        let t0 = if sampled { Some(Instant::now()) } else { None };
        let item = self.inner.next_chunk(budget);
        match &item {
            Some(item) => {
                let n = item.element_count().max(1);
                self.unsampled_elements += n;
                if let Some(t0) = t0 {
                    // One amortized latency record per clock sample: the
                    // per-element cost is this pull's time divided over
                    // its own elements, recorded on behalf of everything
                    // accumulated since the previous sample so histogram
                    // counts still equal element counts.
                    let unit = t0.elapsed().as_nanos() as u64 / n;
                    self.last_unit_ns = unit;
                    self.pull_ns.record_n(unit, self.unsampled_elements);
                    self.unsampled_elements = 0;
                }
                if let Some(span) = &mut self.span {
                    if let ChunkOrMarker::Chunk(c) = item {
                        span.add_points(c.points.len() as u64);
                    }
                }
                if let Some(m) = item.marker() {
                    let m = m.clone();
                    self.note_marker(&m, t0);
                }
            }
            None => {
                // Flush the elements still unaccounted since the last
                // clock sample at its per-element latency, then record
                // the end-of-stream pull itself if it was sampled.
                if self.unsampled_elements > 0 {
                    self.pull_ns.record_n(self.last_unit_ns, self.unsampled_elements);
                    self.unsampled_elements = 0;
                }
                if let Some(t0) = t0 {
                    self.pull_ns.record(t0.elapsed().as_nanos() as u64);
                }
                self.check_pressure();
                if let Some(span) = self.span.take() {
                    span.finish(SpanOutcome::Ok);
                }
            }
        }
        item
    }

    fn op_stats(&self) -> OpStats {
        self.inner.op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.inner.collect_stats(out);
        // Decorate the inner operator's own report (the last one pushed)
        // with this wrapper's latency observations.
        if let Some(last) = out.last_mut() {
            last.pull_latency = Some(self.pull_ns.snapshot());
            last.frame_latency = Some(self.frame_ns.snapshot());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use crate::ops::SpatialRestrict;
    use geostreams_geo::{Crs, LatticeGeoref, Rect, Region};

    fn source() -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        VecStream::single_sector("src", lattice, 0, |c, r| f64::from(c + r))
    }

    #[test]
    fn traced_stream_is_transparent() {
        let mut plain = source();
        let plain_pts = plain.drain_points();
        let mut traced = TracedStream::new(source(), PipelineObs::for_query(1));
        let traced_pts = traced.drain_points();
        assert_eq!(plain_pts, traced_pts);
    }

    #[test]
    fn latency_lands_in_the_report() {
        let region = Region::Rect(Rect::new(0.0, 0.0, 4.0, 4.0));
        let op = SpatialRestrict::new(source(), region);
        let mut traced = TracedStream::new(op, PipelineObs::for_query(1));
        while traced.next_element().is_some() {}
        let mut per_op = Vec::new();
        traced.collect_stats(&mut per_op);
        assert_eq!(per_op.len(), 2);
        // The decorated (last) report carries latency; the inner source
        // does not (it was not wrapped).
        assert!(per_op[0].pull_latency.is_none());
        let lat = per_op[1].pull_latency.as_ref().expect("latency recorded");
        assert!(lat.count > 0);
        let frames = per_op[1].frame_latency.as_ref().expect("frame latency");
        assert!(frames.count > 0);
    }

    #[test]
    fn sector_events_hit_the_trace_log() {
        let log = Arc::new(TraceLog::new(64));
        let obs = PipelineObs::for_query(9).with_trace(Arc::clone(&log));
        let mut traced = TracedStream::new(source(), obs);
        while traced.next_element().is_some() {}
        let evs = log.drain();
        assert!(evs.iter().any(|e| e.kind == TraceKind::Sector && e.query_id == 9));
    }
}
