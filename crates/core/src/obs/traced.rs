//! Per-operator tracing wrapper.
//!
//! [`TracedStream`] decorates any [`GeoStream`] with latency histograms
//! and coarse trace events. The per-point hot path is two `Instant`
//! reads and one atomic histogram record — no locks, no allocation.
//! Boundary events (sectors, stalls, buffer peaks) additionally go to
//! an optional shared [`TraceLog`].

use super::hist::Histogram;
use super::trace::{TraceKind, TraceLog};
use crate::model::{ChunkOrMarker, Element, GeoStream, Marker, StreamSchema};
use crate::stats::{OpReport, OpStats};
use std::sync::Arc;
use std::time::Instant;

/// Shared configuration for instrumenting a pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineObs {
    /// Query id stamped on trace events.
    pub query_id: u32,
    /// Optional shared event log (sector boundaries, stalls, peaks).
    pub trace: Option<Arc<TraceLog>>,
}

impl PipelineObs {
    /// Observation config for a query, without an event log.
    pub fn for_query(query_id: u32) -> Self {
        PipelineObs { query_id, trace: None }
    }

    /// Attaches a shared event log (builder style).
    pub fn with_trace(mut self, trace: Arc<TraceLog>) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// A [`GeoStream`] decorator that measures its inner operator.
pub struct TracedStream<S: GeoStream> {
    inner: S,
    pull_ns: Arc<Histogram>,
    frame_ns: Arc<Histogram>,
    frame_open: Option<Instant>,
    last_stalls: u64,
    last_buffer_peak: u64,
    obs: PipelineObs,
}

impl<S: GeoStream> TracedStream<S> {
    /// Wraps `inner` with fresh histograms.
    pub fn new(inner: S, obs: PipelineObs) -> Self {
        TracedStream {
            inner,
            pull_ns: Arc::new(Histogram::new()),
            frame_ns: Arc::new(Histogram::new()),
            frame_open: None,
            last_stalls: 0,
            last_buffer_peak: 0,
            obs,
        }
    }

    /// The wrapped stream.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Handle to the per-element pull-latency histogram (nanoseconds).
    pub fn pull_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.pull_ns)
    }

    /// Handle to the per-frame latency histogram (nanoseconds).
    pub fn frame_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.frame_ns)
    }

    /// Emits boundary trace events when the inner operator stalled or
    /// grew its buffer past the previous peak. Called on frame/sector
    /// edges only — off the per-point path.
    fn check_pressure(&mut self) {
        let Some(trace) = &self.obs.trace else { return };
        let stats = self.inner.op_stats();
        let name = &self.inner.schema().name;
        if stats.stalls > self.last_stalls {
            trace.record(
                self.obs.query_id,
                name,
                TraceKind::Stall,
                format!("+{} stalls ({} total)", stats.stalls - self.last_stalls, stats.stalls),
            );
            self.last_stalls = stats.stalls;
        }
        if stats.buffered_points_peak > self.last_buffer_peak {
            trace.record(
                self.obs.query_id,
                name,
                TraceKind::BufferPeak,
                format!(
                    "{} points / {} bytes buffered",
                    stats.buffered_points_peak, stats.buffered_bytes_peak
                ),
            );
            self.last_buffer_peak = stats.buffered_points_peak;
        }
    }

    /// Boundary bookkeeping for a marker observed on the chunked path:
    /// frame latency, sector trace events, pressure checks. `t0` is the
    /// pull start of the item that carried the marker.
    fn note_marker(&mut self, m: &Marker, t0: Instant) {
        match m {
            Marker::FrameStart(_) => self.frame_open = Some(t0),
            Marker::FrameEnd(_) => {
                let opened = self.frame_open.take().unwrap_or(t0);
                self.frame_ns.record(opened.elapsed().as_nanos() as u64);
                self.check_pressure();
            }
            Marker::SectorStart(si) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} start", si.sector_id),
                    );
                }
            }
            Marker::SectorEnd(se) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} end", se.sector_id),
                    );
                }
                self.check_pressure();
            }
        }
    }
}

impl<S: GeoStream> GeoStream for TracedStream<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        self.inner.schema()
    }

    fn next_element(&mut self) -> Option<Element<Self::V>> {
        let t0 = Instant::now();
        let el = self.inner.next_element();
        let dt = t0.elapsed().as_nanos() as u64;
        self.pull_ns.record(dt);
        match &el {
            Some(Element::FrameStart(_)) => self.frame_open = Some(t0),
            Some(Element::FrameEnd(_)) => {
                let opened = self.frame_open.take().unwrap_or(t0);
                self.frame_ns.record(opened.elapsed().as_nanos() as u64);
                self.check_pressure();
            }
            Some(Element::SectorStart(si)) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} start", si.sector_id),
                    );
                }
            }
            Some(Element::SectorEnd(se)) => {
                if let Some(trace) = &self.obs.trace {
                    trace.record(
                        self.obs.query_id,
                        &self.inner.schema().name,
                        TraceKind::Sector,
                        format!("sector {} end", se.sector_id),
                    );
                }
                self.check_pressure();
            }
            None => self.check_pressure(),
            _ => {}
        }
        el
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<Self::V>> {
        let t0 = Instant::now();
        let item = self.inner.next_chunk(budget);
        let dt = t0.elapsed().as_nanos() as u64;
        match &item {
            Some(item) => {
                // One amortized latency record per chunk: the per-element
                // cost is the pull time divided over everything the
                // chunk carried, so histogram counts still equal element
                // counts.
                let n = item.element_count().max(1);
                self.pull_ns.record_n(dt / n, n);
                if let Some(m) = item.marker() {
                    let m = m.clone();
                    self.note_marker(&m, t0);
                }
            }
            None => {
                self.pull_ns.record(dt);
                self.check_pressure();
            }
        }
        item
    }

    fn op_stats(&self) -> OpStats {
        self.inner.op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.inner.collect_stats(out);
        // Decorate the inner operator's own report (the last one pushed)
        // with this wrapper's latency observations.
        if let Some(last) = out.last_mut() {
            last.pull_latency = Some(self.pull_ns.snapshot());
            last.frame_latency = Some(self.frame_ns.snapshot());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use crate::ops::SpatialRestrict;
    use geostreams_geo::{Crs, LatticeGeoref, Rect, Region};

    fn source() -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        VecStream::single_sector("src", lattice, 0, |c, r| f64::from(c + r))
    }

    #[test]
    fn traced_stream_is_transparent() {
        let mut plain = source();
        let plain_pts = plain.drain_points();
        let mut traced = TracedStream::new(source(), PipelineObs::for_query(1));
        let traced_pts = traced.drain_points();
        assert_eq!(plain_pts, traced_pts);
    }

    #[test]
    fn latency_lands_in_the_report() {
        let region = Region::Rect(Rect::new(0.0, 0.0, 4.0, 4.0));
        let op = SpatialRestrict::new(source(), region);
        let mut traced = TracedStream::new(op, PipelineObs::for_query(1));
        while traced.next_element().is_some() {}
        let mut per_op = Vec::new();
        traced.collect_stats(&mut per_op);
        assert_eq!(per_op.len(), 2);
        // The decorated (last) report carries latency; the inner source
        // does not (it was not wrapped).
        assert!(per_op[0].pull_latency.is_none());
        let lat = per_op[1].pull_latency.as_ref().expect("latency recorded");
        assert!(lat.count > 0);
        let frames = per_op[1].frame_latency.as_ref().expect("frame latency");
        assert!(frames.count > 0);
    }

    #[test]
    fn sector_events_hit_the_trace_log() {
        let log = Arc::new(TraceLog::new(64));
        let obs = PipelineObs::for_query(9).with_trace(Arc::clone(&log));
        let mut traced = TracedStream::new(source(), obs);
        while traced.next_element().is_some() {}
        let evs = log.drain();
        assert!(evs.iter().any(|e| e.kind == TraceKind::Sector && e.query_id == 9));
    }
}
