//! Restriction pushdown facts: the effective temporal window and
//! spatial extent each *source* of a plan is observed through.
//!
//! The optimizer pushes restriction operators toward the sources to cut
//! work inside the pipeline; this module derives the same facts without
//! rewriting, as data: for every source leaf, the intersection of all
//! temporal restrictions (`G|T`, Definition 7) and spatial restrictions
//! (`G|R`, Definition 6) on the path from the plan root. Two consumers
//! use it:
//!
//! * the DSMS planner routes each source to the **archive**, the **live
//!   feed**, or a **hybrid splice** of both by comparing the source's
//!   temporal window against the live feed's start ("now"), and hands
//!   the spatial extent to the archive so replay decodes only
//!   intersecting tiles (restriction pushdown into the store);
//! * the static analyzer ([`super::analyze`]) classifies replay
//!   sources as bounded and flags wholly-past windows that no archive
//!   can serve.

use super::ast::Expr;
use super::plan::Catalog;
use crate::model::TimeSet;
use geostreams_geo::{map_region, Crs, Rect, Region};
use std::collections::HashMap;

/// A half-open window `[lo, hi)` of logical timestamps; `None` bounds
/// are unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeWindow {
    /// Inclusive lower bound (`None` = unbounded past).
    pub lo: Option<i64>,
    /// Exclusive upper bound (`None` = unbounded future).
    pub hi: Option<i64>,
}

impl TimeWindow {
    /// The unrestricted window.
    pub fn unbounded() -> Self {
        TimeWindow { lo: None, hi: None }
    }

    /// Intersection of two windows.
    pub fn intersect(&self, other: &TimeWindow) -> TimeWindow {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        TimeWindow { lo, hi }
    }

    /// True when no timestamp can fall inside the window.
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(lo), Some(hi)) if lo >= hi)
    }

    /// True when the whole window lies strictly before `now` — a live
    /// feed starting at `now` can never deliver anything inside it.
    pub fn wholly_before(&self, now: i64) -> bool {
        !self.is_empty() && self.hi.is_some_and(|hi| hi <= now)
    }

    /// True when the window starts before `now` (the stream epoch is 0,
    /// so an unbounded lower bound starts in the past exactly when
    /// `now > 0`): the window has a portion only an archive can serve.
    pub fn starts_before(&self, now: i64) -> bool {
        !self.is_empty() && self.lo.unwrap_or(0) < now && self.hi.is_none_or(|hi| hi > 0)
    }

    /// Shifts both bounds by `delta` (saturating).
    pub fn shifted(&self, delta: i64) -> TimeWindow {
        TimeWindow {
            lo: self.lo.map(|v| v.saturating_add(delta)),
            hi: self.hi.map(|v| v.saturating_add(delta)),
        }
    }
}

impl std::fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let lo = self.lo.map_or("-inf".to_string(), |v| v.to_string());
        let hi = self.hi.map_or("+inf".to_string(), |v| v.to_string());
        write!(f, "[{lo}, {hi})")
    }
}

/// Conservative window of a [`TimeSet`]: the smallest interval
/// containing every selected timestamp (recurring sets are unbounded).
pub fn time_set_window(times: &TimeSet) -> TimeWindow {
    match times {
        TimeSet::Instants(v) => match (v.iter().min(), v.iter().max()) {
            (Some(lo), Some(hi)) => TimeWindow { lo: Some(*lo), hi: Some(hi.saturating_add(1)) },
            // An empty instant set selects nothing.
            _ => TimeWindow { lo: Some(0), hi: Some(0) },
        },
        TimeSet::Interval { lo, hi } => TimeWindow { lo: *lo, hi: *hi },
        TimeSet::Recurring { .. } => TimeWindow::unbounded(),
    }
}

/// The restriction context one source leaf is observed through.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceWindow {
    /// Source name.
    pub name: String,
    /// Intersection of every temporal restriction above the leaf.
    pub window: TimeWindow,
    /// Bounding rectangle (in the source's own CRS) of the intersection
    /// of every spatial restriction above the leaf; `None` when the
    /// leaf is spatially unrestricted (or a constraint could not be
    /// mapped, which degrades to "no pushdown", never to wrong answers).
    pub region: Option<Rect>,
}

/// Spatial constraints are carried down as `(region, crs)` pairs and
/// only mapped into the source CRS at the leaf (the same conservative
/// bounding-box mapping the optimizer's pushdown uses).
#[derive(Clone)]
struct SpaceConstraint {
    region: Region,
    crs: Crs,
}

fn walk(
    expr: &Expr,
    window: TimeWindow,
    space: Vec<SpaceConstraint>,
    catalog: &Catalog,
    out: &mut Vec<SourceWindow>,
) {
    match expr {
        Expr::Source(name) => {
            let mut region: Option<Rect> = None;
            if let Some(schema) = catalog.schema(name) {
                for c in &space {
                    let rect = if c.crs == schema.crs {
                        Some(c.region.bbox())
                    } else {
                        map_region(&c.region, &c.crs, &schema.crs, 8).ok()
                    };
                    // An unmappable constraint cannot prune safely.
                    let Some(rect) = rect else { continue };
                    region = Some(match region {
                        Some(r) => r.intersect(&rect),
                        None => rect,
                    });
                }
            }
            out.push(SourceWindow { name: name.clone(), window, region });
        }
        Expr::RestrictTime { input, times } => {
            walk(input, window.intersect(&time_set_window(times)), space, catalog, out);
        }
        Expr::RestrictSpace { input, region, crs } => {
            let mut space = space;
            space.push(SpaceConstraint { region: region.clone(), crs: *crs });
            walk(input, window, space, catalog, out);
        }
        Expr::AggSpace { input, .. } => {
            // The aggregate region is expressed in the stream CRS at
            // that point of the plan, which this walk does not track;
            // keep the temporal facts only (no spatial pruning through
            // aggregates).
            walk(input, window, space, catalog, out);
        }
        Expr::Delay { input, d } => {
            // `delay(g, d)` re-stamps data from `d` sectors ago with the
            // current timestamp: output window [lo, hi) consumes input
            // from [lo - d, hi).
            let shifted = TimeWindow { lo: window.shifted(-i64::from(*d)).lo, hi: window.hi };
            walk(input, shifted, space, catalog, out);
        }
        Expr::Orient { input, .. } => {
            // Orientation changes move points in world space: spatial
            // constraints from above do not transfer below.
            walk(input, window, Vec::new(), catalog, out);
        }
        Expr::RestrictValue { input, .. }
        | Expr::MapValue { input, .. }
        | Expr::Stretch { input, .. }
        | Expr::Focal { input, .. }
        | Expr::Magnify { input, .. }
        | Expr::Downsample { input, .. }
        | Expr::Reproject { input, .. }
        | Expr::Shed { input, .. }
        | Expr::AggTime { input, .. } => walk(input, window, space, catalog, out),
        Expr::Compose { left, right, .. } => {
            walk(left, window, space.clone(), catalog, out);
            walk(right, window, space, catalog, out);
        }
        Expr::Ndvi { nir, vis } => {
            walk(nir, window, space.clone(), catalog, out);
            walk(vis, window, space, catalog, out);
        }
    }
}

/// Per-leaf restriction windows in plan visit order (a source referenced
/// twice yields two entries).
pub fn source_windows(expr: &Expr, catalog: &Catalog) -> Vec<SourceWindow> {
    let mut out = Vec::new();
    walk(expr, TimeWindow::unbounded(), Vec::new(), catalog, &mut out);
    out
}

/// Per-source windows merged by name: when a source appears under
/// several restriction contexts the merge is the conservative *union*
/// (widest window, union of extents), since the shared feed must satisfy
/// every occurrence.
pub fn merged_source_windows(expr: &Expr, catalog: &Catalog) -> HashMap<String, SourceWindow> {
    let mut merged: HashMap<String, SourceWindow> = HashMap::new();
    for sw in source_windows(expr, catalog) {
        match merged.get_mut(&sw.name) {
            None => {
                merged.insert(sw.name.clone(), sw);
            }
            Some(prev) => {
                prev.window = TimeWindow {
                    lo: match (prev.window.lo, sw.window.lo) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        _ => None,
                    },
                    hi: match (prev.window.hi, sw.window.hi) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    },
                };
                prev.region = match (prev.region, sw.region) {
                    (Some(a), Some(b)) => Some(a.union(&b)),
                    _ => None,
                };
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StreamSchema, VecStream};
    use crate::query::parse_query;
    use geostreams_geo::LatticeGeoref;

    fn catalog() -> Catalog {
        let lattice =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 64, 64);
        let mut cat = Catalog::new();
        for name in ["g1", "g2"] {
            let mut schema = StreamSchema::new(name, Crs::LatLon);
            schema.sector_lattice = Some(lattice);
            let name = name.to_string();
            cat.register(schema, move || {
                Box::new(VecStream::<f32>::single_sector(&name, lattice, 0, |_, _| 0.0))
            });
        }
        cat
    }

    fn windows(q: &str) -> Vec<SourceWindow> {
        source_windows(&parse_query(q).unwrap(), &catalog())
    }

    #[test]
    fn unrestricted_source_is_unbounded() {
        let w = windows("scale(g1, 2, 0)");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].window, TimeWindow::unbounded());
        assert_eq!(w[0].region, None);
    }

    #[test]
    fn nested_time_restrictions_intersect() {
        let w = windows("restrict_time(restrict_time(g1, interval(0, 10)), interval(3, none))");
        assert_eq!(w[0].window, TimeWindow { lo: Some(3), hi: Some(10) });
        assert!(!w[0].window.is_empty());
        assert!(w[0].window.wholly_before(10));
        assert!(w[0].window.starts_before(4));
        assert!(!w[0].window.starts_before(3));
    }

    #[test]
    fn instants_become_a_covering_interval() {
        let w = windows("restrict_time(g1, instants(7, 2, 5))");
        assert_eq!(w[0].window, TimeWindow { lo: Some(2), hi: Some(8) });
    }

    #[test]
    fn spatial_restriction_maps_into_the_source_crs() {
        let w = windows("restrict_space(g1, bbox(-123, 37, -122, 38), \"latlon\")");
        let r = w[0].region.unwrap();
        assert!((r.x_min - -123.0).abs() < 1e-9 && (r.y_max - 38.0).abs() < 1e-9);
    }

    #[test]
    fn compose_applies_the_window_to_both_sides() {
        let w = windows("restrict_time(ndvi(g1, g2), interval(1, 4))");
        assert_eq!(w.len(), 2);
        for sw in &w {
            assert_eq!(sw.window, TimeWindow { lo: Some(1), hi: Some(4) });
        }
    }

    #[test]
    fn delay_widens_the_window_downward() {
        let w = windows("restrict_time(delay(g1, 2), interval(5, 8))");
        assert_eq!(w[0].window, TimeWindow { lo: Some(3), hi: Some(8) });
    }

    #[test]
    fn merged_windows_union_per_name() {
        let expr = parse_query(
            "compose(restrict_time(g1, interval(0, 2)), \"+\", restrict_time(g1, interval(5, 9)))",
        )
        .unwrap();
        let merged = merged_source_windows(&expr, &catalog());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged["g1"].window, TimeWindow { lo: Some(0), hi: Some(9) });
    }

    #[test]
    fn empty_window_detected() {
        let w = windows("restrict_time(g1, interval(9, 3))");
        assert!(w[0].window.is_empty());
        assert!(!w[0].window.wholly_before(100));
        assert!(!w[0].window.starts_before(100));
    }
}
