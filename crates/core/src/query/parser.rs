//! Recursive-descent parser for the textual query algebra.
//!
//! In the §4 prototype, "user queries … are transmitted to the server,
//! parsed, and registered". The grammar is a small functional expression
//! language:
//!
//! ```text
//! expr    := ident | call
//! call    := name '(' args ')'
//! args    := (expr | number | string | region | times) (',' …)*
//! region  := bbox(x1, y1, x2, y2) | polygon(x1, y1, x2, y2, x3, y3, …)
//! times   := interval(lo|none, hi|none) | instants(t, …) | every(p, o, l)
//! ```
//!
//! See [`parse_query`] for the operator vocabulary.

use super::ast::Expr;
use crate::error::{CoreError, Result};
use crate::model::TimeSet;
use crate::ops::{
    AggFunc, FocalFunc, GammaOp, Orientation, ShedPolicy, StretchMode, StretchScope, ValueFunc,
};
use geostreams_geo::{Coord, Crs, Polygon, Rect, Region};
use geostreams_raster::resample::Kernel;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Parse { message: message.into(), offset: self.pos }
    }

    fn tokens(mut self) -> Result<Vec<(Token, usize)>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'(' => {
                    out.push((Token::LParen, start));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Token::RParen, start));
                    self.pos += 1;
                }
                b',' => {
                    out.push((Token::Comma, start));
                    self.pos += 1;
                }
                b'"' | b'\'' => {
                    let quote = c;
                    self.pos += 1;
                    let s0 = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated string"));
                    }
                    let text = std::str::from_utf8(&self.src[s0..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?
                        .to_string();
                    self.pos += 1;
                    out.push((Token::Str(text), start));
                }
                b'-' | b'+' | b'0'..=b'9' | b'.' => {
                    let s0 = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len()
                        && matches!(
                            self.src[self.pos],
                            b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+'
                        )
                    {
                        // Allow exponent signs only right after e/E.
                        if matches!(self.src[self.pos], b'-' | b'+')
                            && !matches!(self.src[self.pos - 1], b'e' | b'E')
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.src[s0..self.pos]);
                    let n: f64 =
                        text.parse().map_err(|_| self.error(format!("bad number `{text}`")))?;
                    out.push((Token::Number(n), s0));
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    // Identifiers may contain '-' and '.' after the first
                    // character (source names like `goes-sim.b1-vis`);
                    // the grammar has no infix operators so this is
                    // unambiguous.
                    let s0 = self.pos;
                    while self.pos < self.src.len()
                        && matches!(self.src[self.pos],
                            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b'-')
                    {
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.src[s0..self.pos]);
                    out.push((Token::Ident(text.to_string()), s0));
                }
                other => {
                    return Err(self.error(format!("unexpected character `{}`", other as char)))
                }
            }
        }
        Ok(out)
    }
}

/// One parsed argument of a call.
#[derive(Debug, Clone)]
enum Arg {
    Expr(Expr),
    Number(f64),
    Str(String),
    Region(Region),
    Times(TimeSet),
}

impl Arg {
    fn kind(&self) -> &'static str {
        match self {
            Arg::Expr(_) => "expression",
            Arg::Number(_) => "number",
            Arg::Str(_) => "string",
            Arg::Region(_) => "region",
            Arg::Times(_) => "time set",
        }
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(usize::MAX, |(_, o)| *o)
    }

    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Parse { message: message.into(), offset: self.offset().min(1 << 20) }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token) -> Result<()> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(self.error(format!("expected {want:?}, found {t:?}"))),
            None => Err(self.error(format!("expected {want:?}, found end of input"))),
        }
    }

    /// Parses one argument (expression, literal, region, or time set).
    fn parse_arg(&mut self) -> Result<Arg> {
        match self.peek() {
            Some(Token::Number(_)) => {
                if let Some(Token::Number(n)) = self.next() {
                    Ok(Arg::Number(n))
                } else {
                    unreachable!()
                }
            }
            Some(Token::Str(_)) => {
                if let Some(Token::Str(s)) = self.next() {
                    Ok(Arg::Str(s))
                } else {
                    unreachable!()
                }
            }
            Some(Token::Ident(_)) => {
                let Some(Token::Ident(name)) = self.next() else { unreachable!() };
                if self.peek() == Some(&Token::LParen) {
                    self.parse_call(name)
                } else if name == "none" {
                    // Bare keyword used by interval().
                    Ok(Arg::Str("none".into()))
                } else {
                    Ok(Arg::Expr(Expr::Source(name)))
                }
            }
            other => Err(self.error(format!("expected argument, found {other:?}"))),
        }
    }

    fn parse_args(&mut self) -> Result<Vec<Arg>> {
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.next();
            return Ok(args);
        }
        loop {
            args.push(self.parse_arg()?);
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.error(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        Ok(args)
    }

    fn numbers(&self, args: &[Arg], what: &str) -> Result<Vec<f64>> {
        args.iter()
            .map(|a| match a {
                Arg::Number(n) => Ok(*n),
                other => Err(self.error(format!("{what} expects numbers, found {}", other.kind()))),
            })
            .collect()
    }

    fn expr_arg(&self, args: &[Arg], i: usize, ctx: &str) -> Result<Expr> {
        match args.get(i) {
            Some(Arg::Expr(e)) => Ok(e.clone()),
            other => Err(self.error(format!(
                "{ctx}: argument {} must be an expression, found {}",
                i + 1,
                other.map_or("nothing", |a| a.kind())
            ))),
        }
    }

    fn str_arg(&self, args: &[Arg], i: usize, ctx: &str) -> Result<String> {
        match args.get(i) {
            Some(Arg::Str(s)) => Ok(s.clone()),
            other => Err(self.error(format!(
                "{ctx}: argument {} must be a string, found {}",
                i + 1,
                other.map_or("nothing", |a| a.kind())
            ))),
        }
    }

    fn num_arg(&self, args: &[Arg], i: usize, ctx: &str) -> Result<f64> {
        match args.get(i) {
            Some(Arg::Number(n)) => Ok(*n),
            other => Err(self.error(format!(
                "{ctx}: argument {} must be a number, found {}",
                i + 1,
                other.map_or("nothing", |a| a.kind())
            ))),
        }
    }

    fn region_arg(&self, args: &[Arg], i: usize, ctx: &str) -> Result<Region> {
        match args.get(i) {
            Some(Arg::Region(r)) => Ok(r.clone()),
            other => Err(self.error(format!(
                "{ctx}: argument {} must be a region (bbox/polygon), found {}",
                i + 1,
                other.map_or("nothing", |a| a.kind())
            ))),
        }
    }

    fn crs_arg(&self, args: &[Arg], i: usize, default: Crs, ctx: &str) -> Result<Crs> {
        match args.get(i) {
            None => Ok(default),
            Some(Arg::Str(s)) => s.parse().map_err(|e: String| self.error(format!("{ctx}: {e}"))),
            Some(other) => {
                Err(self.error(format!("{ctx}: CRS must be a string, found {}", other.kind())))
            }
        }
    }

    /// Parses a call with a known head name.
    fn parse_call(&mut self, name: String) -> Result<Arg> {
        let args = self.parse_args()?;
        let lname = name.to_ascii_lowercase();
        match lname.as_str() {
            // ---- literals ------------------------------------------------
            "bbox" => {
                let n = self.numbers(&args, "bbox")?;
                if n.len() != 4 {
                    return Err(self.error("bbox expects 4 numbers"));
                }
                Ok(Arg::Region(Region::Rect(Rect::new(n[0], n[1], n[2], n[3]))))
            }
            "polygon" => {
                let n = self.numbers(&args, "polygon")?;
                if n.len() < 6 || n.len() % 2 != 0 {
                    return Err(self.error("polygon expects at least 3 coordinate pairs"));
                }
                let verts: Vec<Coord> = n.chunks_exact(2).map(|c| Coord::new(c[0], c[1])).collect();
                let poly =
                    Polygon::new(verts).map_err(|e| self.error(format!("bad polygon: {e}")))?;
                Ok(Arg::Region(Region::Polygon(poly)))
            }
            "interval" => {
                if args.len() != 2 {
                    return Err(self.error("interval expects 2 arguments (number or none)"));
                }
                let bound = |a: &Arg| -> Result<Option<i64>> {
                    match a {
                        Arg::Number(n) => Ok(Some(*n as i64)),
                        Arg::Str(s) if s == "none" => Ok(None),
                        other => Err(self.error(format!(
                            "interval bound must be number or none, found {}",
                            other.kind()
                        ))),
                    }
                };
                Ok(Arg::Times(TimeSet::Interval { lo: bound(&args[0])?, hi: bound(&args[1])? }))
            }
            "instants" => {
                let n = self.numbers(&args, "instants")?;
                Ok(Arg::Times(TimeSet::Instants(n.into_iter().map(|v| v as i64).collect())))
            }
            "every" => {
                let n = self.numbers(&args, "every")?;
                if n.len() != 3 {
                    return Err(self.error("every expects (period, offset, len)"));
                }
                Ok(Arg::Times(TimeSet::Recurring {
                    period: n[0] as i64,
                    offset: n[1] as i64,
                    len: n[2] as i64,
                }))
            }
            // ---- restrictions --------------------------------------------
            "restrict_space" => {
                let input = self.expr_arg(&args, 0, "restrict_space")?;
                let region = self.region_arg(&args, 1, "restrict_space")?;
                let crs = self.crs_arg(&args, 2, Crs::LatLon, "restrict_space")?;
                Ok(Arg::Expr(Expr::RestrictSpace { input: Box::new(input), region, crs }))
            }
            "restrict_time" => {
                let input = self.expr_arg(&args, 0, "restrict_time")?;
                let times = match args.get(1) {
                    Some(Arg::Times(t)) => t.clone(),
                    other => {
                        return Err(self.error(format!(
                            "restrict_time: argument 2 must be a time set, found {}",
                            other.map_or("nothing", |a| a.kind())
                        )))
                    }
                };
                Ok(Arg::Expr(Expr::RestrictTime { input: Box::new(input), times }))
            }
            "restrict_value" => {
                let input = self.expr_arg(&args, 0, "restrict_value")?;
                let nums = self.numbers(&args[1..], "restrict_value")?;
                if nums.is_empty() || nums.len() % 2 != 0 {
                    return Err(self.error("restrict_value expects (expr, lo, hi, [lo, hi]…)"));
                }
                let ranges = nums.chunks_exact(2).map(|c| (c[0], c[1])).collect();
                Ok(Arg::Expr(Expr::RestrictValue { input: Box::new(input), ranges }))
            }
            // ---- value transforms ----------------------------------------
            "scale" => {
                let input = self.expr_arg(&args, 0, "scale")?;
                let scale = self.num_arg(&args, 1, "scale")?;
                let offset = self.num_arg(&args, 2, "scale")?;
                Ok(Arg::Expr(Expr::MapValue {
                    input: Box::new(input),
                    func: ValueFunc::Linear { scale, offset },
                }))
            }
            "normalize" => {
                let input = self.expr_arg(&args, 0, "normalize")?;
                let lo = self.num_arg(&args, 1, "normalize")?;
                let hi = self.num_arg(&args, 2, "normalize")?;
                Ok(Arg::Expr(Expr::MapValue {
                    input: Box::new(input),
                    func: ValueFunc::Normalize { lo, hi },
                }))
            }
            "clamp" => {
                let input = self.expr_arg(&args, 0, "clamp")?;
                let lo = self.num_arg(&args, 1, "clamp")?;
                let hi = self.num_arg(&args, 2, "clamp")?;
                Ok(Arg::Expr(Expr::MapValue {
                    input: Box::new(input),
                    func: ValueFunc::Clamp { lo, hi },
                }))
            }
            "abs" => {
                let input = self.expr_arg(&args, 0, "abs")?;
                Ok(Arg::Expr(Expr::MapValue { input: Box::new(input), func: ValueFunc::Abs }))
            }
            "gamma" => {
                let input = self.expr_arg(&args, 0, "gamma")?;
                let g = self.num_arg(&args, 1, "gamma")?;
                Ok(Arg::Expr(Expr::MapValue {
                    input: Box::new(input),
                    func: ValueFunc::Gamma { g },
                }))
            }
            "threshold" => {
                let input = self.expr_arg(&args, 0, "threshold")?;
                let t = self.num_arg(&args, 1, "threshold")?;
                Ok(Arg::Expr(Expr::MapValue {
                    input: Box::new(input),
                    func: ValueFunc::Threshold { t },
                }))
            }
            "stretch" => {
                let input = self.expr_arg(&args, 0, "stretch")?;
                let mode_s = self.str_arg(&args, 1, "stretch")?;
                let mode = match mode_s.as_str() {
                    "linear" => StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
                    "histeq" => StretchMode::HistEq { bins: 256 },
                    "gauss" | "gaussian" => StretchMode::Gaussian { n_sigma: 2.0 },
                    other => return Err(self.error(format!("unknown stretch mode `{other}`"))),
                };
                let scope = match args.get(2) {
                    None => StretchScope::Image,
                    Some(Arg::Str(s)) if s == "frame" => StretchScope::Frame,
                    Some(Arg::Str(s)) if s == "image" => StretchScope::Image,
                    Some(other) => {
                        return Err(self.error(format!(
                            "stretch scope must be \"frame\" or \"image\", found {}",
                            other.kind()
                        )))
                    }
                };
                Ok(Arg::Expr(Expr::Stretch { input: Box::new(input), mode, scope }))
            }
            // ---- spatial transforms --------------------------------------
            "focal" => {
                let input = self.expr_arg(&args, 0, "focal")?;
                let func_s = self.str_arg(&args, 1, "focal")?;
                let func = FocalFunc::from_name(&func_s)
                    .ok_or_else(|| self.error(format!("unknown focal function `{func_s}`")))?;
                let k = match args.get(2) {
                    None => 3,
                    Some(Arg::Number(n)) => *n as u32,
                    Some(other) => {
                        return Err(self.error(format!(
                            "focal kernel size must be a number, found {}",
                            other.kind()
                        )))
                    }
                };
                Ok(Arg::Expr(Expr::Focal { input: Box::new(input), func, k }))
            }
            "orient" | "rotate" | "flip" => {
                let input = self.expr_arg(&args, 0, &lname)?;
                let name_s = match args.get(1) {
                    Some(Arg::Str(s)) => s.clone(),
                    Some(Arg::Number(n)) => format!("{}", *n as i64),
                    other => {
                        return Err(self.error(format!(
                            "{lname}: orientation must be a string or angle, found {}",
                            other.map_or("nothing", |a| a.kind())
                        )))
                    }
                };
                let orientation = Orientation::from_name(&name_s)
                    .ok_or_else(|| self.error(format!("unknown orientation `{name_s}`")))?;
                Ok(Arg::Expr(Expr::Orient { input: Box::new(input), orientation }))
            }
            "magnify" => {
                let input = self.expr_arg(&args, 0, "magnify")?;
                let k = self.num_arg(&args, 1, "magnify")? as u32;
                Ok(Arg::Expr(Expr::Magnify { input: Box::new(input), k }))
            }
            "downsample" => {
                let input = self.expr_arg(&args, 0, "downsample")?;
                let k = self.num_arg(&args, 1, "downsample")? as u32;
                Ok(Arg::Expr(Expr::Downsample { input: Box::new(input), k }))
            }
            "reproject" => {
                let input = self.expr_arg(&args, 0, "reproject")?;
                let crs: Crs = self
                    .str_arg(&args, 1, "reproject")?
                    .parse()
                    .map_err(|e: String| self.error(format!("reproject: {e}")))?;
                let kernel = match args.get(2) {
                    None => Kernel::Bilinear,
                    Some(Arg::Str(s)) => match s.as_str() {
                        "nearest" => Kernel::Nearest,
                        "bilinear" => Kernel::Bilinear,
                        "bicubic" => Kernel::Bicubic,
                        other => return Err(self.error(format!("unknown kernel `{other}`"))),
                    },
                    Some(other) => {
                        return Err(
                            self.error(format!("kernel must be a string, found {}", other.kind()))
                        )
                    }
                };
                Ok(Arg::Expr(Expr::Reproject { input: Box::new(input), to: crs, kernel }))
            }
            // ---- compositions --------------------------------------------
            "add" | "sub" | "mul" | "div" | "sup" | "inf" | "normdiff" => {
                let left = self.expr_arg(&args, 0, &lname)?;
                let right = self.expr_arg(&args, 1, &lname)?;
                let op = GammaOp::from_symbol(&lname)
                    .ok_or_else(|| self.error(format!("unknown γ operator `{lname}`")))?;
                Ok(Arg::Expr(Expr::Compose { left: Box::new(left), right: Box::new(right), op }))
            }
            "compose" => {
                let left = self.expr_arg(&args, 0, "compose")?;
                let sym = self.str_arg(&args, 1, "compose")?;
                let right = self.expr_arg(&args, 2, "compose")?;
                let op = GammaOp::from_symbol(&sym)
                    .ok_or_else(|| self.error(format!("unknown γ operator `{sym}`")))?;
                Ok(Arg::Expr(Expr::Compose { left: Box::new(left), right: Box::new(right), op }))
            }
            "ndvi" => {
                let nir = self.expr_arg(&args, 0, "ndvi")?;
                let vis = self.expr_arg(&args, 1, "ndvi")?;
                Ok(Arg::Expr(Expr::Ndvi { nir: Box::new(nir), vis: Box::new(vis) }))
            }
            // ---- aggregates ----------------------------------------------
            "shed" => {
                let input = self.expr_arg(&args, 0, "shed")?;
                let policy = match self.str_arg(&args, 1, "shed")?.as_str() {
                    "rows" => ShedPolicy::Rows,
                    "points" => ShedPolicy::Points,
                    other => return Err(self.error(format!("unknown shed policy `{other}`"))),
                };
                let stride = self.num_arg(&args, 2, "shed")? as u32;
                Ok(Arg::Expr(Expr::Shed { input: Box::new(input), policy, stride }))
            }
            "delay" => {
                let input = self.expr_arg(&args, 0, "delay")?;
                let d = self.num_arg(&args, 1, "delay")? as u32;
                Ok(Arg::Expr(Expr::Delay { input: Box::new(input), d }))
            }
            "agg_time" => {
                let input = self.expr_arg(&args, 0, "agg_time")?;
                let func_s = self.str_arg(&args, 1, "agg_time")?;
                let func = AggFunc::from_name(&func_s)
                    .ok_or_else(|| self.error(format!("unknown aggregate `{func_s}`")))?;
                let window = self.num_arg(&args, 2, "agg_time")? as u32;
                Ok(Arg::Expr(Expr::AggTime { input: Box::new(input), func, window }))
            }
            "agg_space" => {
                let input = self.expr_arg(&args, 0, "agg_space")?;
                let func_s = self.str_arg(&args, 1, "agg_space")?;
                let func = AggFunc::from_name(&func_s)
                    .ok_or_else(|| self.error(format!("unknown aggregate `{func_s}`")))?;
                let region = self.region_arg(&args, 2, "agg_space")?;
                Ok(Arg::Expr(Expr::AggSpace { input: Box::new(input), func, region }))
            }
            other => Err(self.error(format!("unknown operator `{other}`"))),
        }
    }
}

/// Parses a query expression.
///
/// Operator vocabulary: `restrict_space`, `restrict_time`,
/// `restrict_value`, `scale`, `normalize`, `clamp`, `abs`, `gamma`,
/// `threshold`, `stretch`, `magnify`, `downsample`, `reproject`, `add`,
/// `sub`, `mul`, `div`, `sup`, `inf`, `normdiff`, `compose`, `ndvi`,
/// `agg_time`, `agg_space`; literals `bbox`, `polygon`, `interval`,
/// `instants`, `every`.
pub fn parse_query(text: &str) -> Result<Expr> {
    let tokens = Lexer::new(text).tokens()?;
    if tokens.is_empty() {
        return Err(CoreError::Parse { message: "empty query".into(), offset: 0 });
    }
    let mut p = Parser { tokens, pos: 0 };
    let arg = p.parse_arg()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing input after expression"));
    }
    match arg {
        Arg::Expr(e) => Ok(e),
        other => Err(CoreError::Parse {
            message: format!("query must be an expression, found {}", other.kind()),
            offset: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_source() {
        assert_eq!(parse_query("goes.b1").unwrap(), Expr::source("goes.b1"));
    }

    #[test]
    fn parses_the_papers_running_example() {
        // ((f_val((G1 − G2) ⊘ (G2 + G1))) ∘ f_UTM)|R
        let q = r#"restrict_space(
            reproject(
                normalize(div(sub(g1, g2), add(g2, g1)), -1, 1),
                "utm:10N", "bilinear"),
            bbox(400000, 4000000, 600000, 4300000), "utm:10N")"#;
        let e = parse_query(q).unwrap();
        match &e {
            Expr::RestrictSpace { input, crs, .. } => {
                assert_eq!(*crs, Crs::utm(10, true));
                assert!(matches!(**input, Expr::Reproject { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.source_names(), vec!["g1".to_string(), "g2".to_string()]);
        assert_eq!(e.operator_count(), 6);
    }

    #[test]
    fn display_round_trips() {
        let queries = [
            "ndvi(goes.b2, goes.b1)",
            "restrict_space(goes.b1, bbox(-123, 37, -121, 39), \"latlon\")",
            "restrict_time(goes.b1, interval(10, 20))",
            "restrict_time(goes.b1, every(24, 6, 3))",
            "restrict_value(goes.b1, 0.25, 0.75)",
            "scale(goes.b1, 2, -1)",
            "stretch(goes.b1, \"histeq\", \"image\")",
            "focal(goes.b1, \"sobel\", 3)",
            "orient(goes.b1, \"rot90\")",
            "orient(goes.b1, \"fliph\")",
            "delay(goes.b1, 2)",
            "shed(goes.b1, \"rows\", 4)",
            "focal(goes.b1, \"median\", 5)",
            "magnify(goes.b1, 4)",
            "downsample(goes.b1, 2)",
            "reproject(goes.b1, \"geos:-75\", \"bicubic\")",
            "sup(goes.b1, goes.b2)",
            "agg_time(goes.b4, \"mean\", 8)",
            "agg_space(goes.b4, \"max\", bbox(0, 0, 1, 1))",
            "restrict_space(goes.b1, polygon(0, 0, 4, 0, 0, 4), \"latlon\")",
        ];
        for q in queries {
            let e1 = parse_query(q).unwrap_or_else(|err| panic!("{q}: {err}"));
            let rendered = e1.to_string();
            let e2 = parse_query(&rendered)
                .unwrap_or_else(|err| panic!("re-parse of `{rendered}`: {err}"));
            assert_eq!(e1, e2, "{q} -> {rendered}");
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        for q in [
            "",
            "bbox(1,2,3,4)",      // literal, not an expression
            "restrict_space(g1)", // missing region
            "magnify(g1)",        // missing factor
            "unknownop(g1)",      // unknown operator
            "add(g1)",            // arity
            "restrict_space(g1, bbox(1,2,3), \"latlon\")", // bbox arity
            "ndvi(g1, g2",        // unbalanced parens
            "reproject(g1, \"mars:1\")", // unknown CRS
            "g1 g2",              // trailing input
            "compose(g1, \"%\", g2)", // unknown gamma
            "stretch(g1, \"funky\")", // unknown mode
        ] {
            assert!(parse_query(q).is_err(), "should reject `{q}`");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse_query("magnify(g1, oops)").unwrap_err();
        match err {
            CoreError::Parse { offset, .. } => assert!(offset > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn interval_none_bounds() {
        let e = parse_query("restrict_time(g, interval(none, 100))").unwrap();
        match e {
            Expr::RestrictTime { times, .. } => {
                assert_eq!(times, TimeSet::Interval { lo: None, hi: Some(100) });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numbers_with_exponents_and_negatives() {
        let e = parse_query("scale(g, -2.5e3, 1e-2)").unwrap();
        match e {
            Expr::MapValue { func: ValueFunc::Linear { scale, offset }, .. } => {
                assert_eq!(scale, -2500.0);
                assert_eq!(offset, 0.01);
            }
            other => panic!("{other:?}"),
        }
    }
}
