//! A simple analytical cost model for query plans.
//!
//! §3.4 motivates the optimizer by the "most significant space and time
//! gains" of restriction pushdown; this model quantifies a plan before
//! running it: estimated points flowing out of every operator, total
//! per-point work, and peak buffer bytes. The weights are calibrated to
//! the operator implementations (a re-projection performs two map
//! projections per point and dwarfs a restriction test).

use super::ast::Expr;
use super::plan::Catalog;
use crate::error::Result;
use crate::ops::StretchScope;
use geostreams_geo::map_region;
use serde::{Deserialize, Serialize};

/// Per-point work units (1 ≈ one arithmetic op + dispatch).
mod weight {
    pub const RESTRICT: f64 = 1.0;
    pub const MAP: f64 = 1.5;
    pub const STRETCH: f64 = 3.0;
    pub const RESAMPLE: f64 = 2.0;
    pub const REPROJECT: f64 = 40.0;
    pub const COMPOSE: f64 = 4.0;
    pub const AGGREGATE: f64 = 2.0;
}

/// Selectivity assumed when the geometry needed to compute a real one
/// is missing (no source lattice, or a degenerate world extent).
///
/// 0.5 is the maximum-entropy guess for "some points pass, some don't":
/// with no metadata there is no basis for anything sharper, and the
/// midpoint keeps the estimate order-preserving — a restriction still
/// reads as cheaper than no restriction, but never as free (which a
/// guess of 0 would claim) nor as useless (a guess of 1). The same duty
/// cycle is used for temporal and value restrictions, whose long-run
/// pass rate is equally unknowable at plan time.
pub const DEFAULT_SELECTIVITY: f64 = 0.5;

/// Buffer-byte stand-in for a plan the static analyzer could not bound
/// (a finite sentinel rather than `f64::INFINITY` so estimates stay
/// JSON-serializable and comparisons stay total).
pub const UNBOUNDED_BUFFER_BYTES: f64 = 1.0e18;

/// Estimated cost of a plan (per scan sector).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Estimated points emitted by the plan root per sector.
    pub points_out: f64,
    /// Total work units across all operators per sector.
    pub work: f64,
    /// Estimated peak buffered bytes.
    pub buffer_bytes: f64,
}

impl CostEstimate {
    fn leaf(points: f64) -> CostEstimate {
        CostEstimate { points_out: points, work: 0.0, buffer_bytes: 0.0 }
    }
}

/// Fraction of a source sector that a region covers (by bbox areas).
fn region_selectivity(catalog: &Catalog, expr: &Expr, region: &geostreams_geo::Region) -> f64 {
    // Find any source's lattice below this expression as the denominator.
    let mut lattice = None;
    expr.visit(&mut |e| {
        if lattice.is_none() {
            if let Expr::Source(name) = e {
                lattice = catalog.schema(name).and_then(|s| s.sector_lattice);
            }
        }
    });
    let Some(lat) = lattice else { return DEFAULT_SELECTIVITY };
    let world = lat.world_bbox();
    if world.area() <= 0.0 {
        return DEFAULT_SELECTIVITY;
    }
    // Map the region into the source CRS when needed (bbox approximation).
    let stream_crs = catalog.crs_of(expr).unwrap_or(lat.crs);
    let rb = if stream_crs == lat.crs {
        region.bbox()
    } else {
        match map_region(region, &stream_crs, &lat.crs, 8) {
            Ok(r) => r,
            Err(_) => return 0.0,
        }
    };
    (rb.intersect(&world).area() / world.area()).clamp(0.0, 1.0)
}

/// Estimates the cost of an expression over a catalog.
///
/// Points and work come from the recursive model below; the buffer
/// bound is taken from the static plan analyzer
/// ([`super::analyze::analyze`]), whose per-operator worst cases are
/// derived from the actual sector lattices rather than the
/// `sqrt(points)` row approximation. An unbounded plan reports
/// [`UNBOUNDED_BUFFER_BYTES`].
pub fn estimate(expr: &Expr, catalog: &Catalog) -> Result<CostEstimate> {
    let mut c = estimate_inner(expr, catalog)?;
    c.buffer_bytes = match super::analyze::analyze(expr, catalog).peak_buffer_bytes {
        Some(bytes) => bytes as f64,
        None => UNBOUNDED_BUFFER_BYTES,
    };
    Ok(c)
}

fn estimate_inner(expr: &Expr, catalog: &Catalog) -> Result<CostEstimate> {
    Ok(match expr {
        Expr::Source(name) => {
            let points = catalog
                .schema(name)
                .and_then(|s| s.sector_lattice)
                .map_or(1.0e6, |l| l.len() as f64);
            CostEstimate::leaf(points)
        }
        Expr::RestrictSpace { input, region, .. } => {
            let c = estimate_inner(input, catalog)?;
            let sel = region_selectivity(catalog, input, region);
            CostEstimate {
                points_out: c.points_out * sel,
                work: c.work + c.points_out * weight::RESTRICT,
                buffer_bytes: c.buffer_bytes,
            }
        }
        Expr::RestrictTime { input, .. } => {
            let c = estimate_inner(input, catalog)?;
            // Per-sector model: a temporal restriction passes or drops
            // whole sectors; use 0.5 as the long-run duty cycle.
            CostEstimate {
                points_out: c.points_out * 0.5,
                work: c.work + c.points_out * 0.01, // per-frame test only
                buffer_bytes: c.buffer_bytes,
            }
        }
        Expr::RestrictValue { input, .. } => {
            let c = estimate_inner(input, catalog)?;
            CostEstimate {
                points_out: c.points_out * 0.5,
                work: c.work + c.points_out * weight::RESTRICT,
                buffer_bytes: c.buffer_bytes,
            }
        }
        Expr::MapValue { input, .. } => {
            let c = estimate_inner(input, catalog)?;
            CostEstimate {
                points_out: c.points_out,
                work: c.work + c.points_out * weight::MAP,
                buffer_bytes: c.buffer_bytes,
            }
        }
        Expr::Stretch { input, scope, .. } => {
            let c = estimate_inner(input, catalog)?;
            let buffered = match scope {
                StretchScope::Image => c.points_out,
                StretchScope::Frame => c.points_out.sqrt(), // ≈ one row
            };
            CostEstimate {
                points_out: c.points_out,
                work: c.work + c.points_out * weight::STRETCH,
                buffer_bytes: c.buffer_bytes.max(buffered * 4.0),
            }
        }
        Expr::Focal { input, k, .. } => {
            let c = estimate_inner(input, catalog)?;
            let k2 = f64::from(*k) * f64::from(*k);
            CostEstimate {
                points_out: c.points_out,
                work: c.work + c.points_out * k2 * weight::RESAMPLE,
                buffer_bytes: c.buffer_bytes.max(c.points_out.sqrt() * f64::from(*k) * 4.0),
            }
        }
        Expr::Orient { input, .. } => {
            let c = estimate_inner(input, catalog)?;
            CostEstimate {
                points_out: c.points_out,
                work: c.work + c.points_out * weight::RESTRICT,
                buffer_bytes: c.buffer_bytes,
            }
        }
        Expr::Magnify { input, k } => {
            let c = estimate_inner(input, catalog)?;
            let k2 = f64::from(*k) * f64::from(*k);
            CostEstimate {
                points_out: c.points_out * k2,
                work: c.work + c.points_out * k2 * weight::RESAMPLE,
                buffer_bytes: c.buffer_bytes,
            }
        }
        Expr::Downsample { input, k } => {
            let c = estimate_inner(input, catalog)?;
            let k2 = f64::from(*k) * f64::from(*k);
            CostEstimate {
                points_out: c.points_out / k2,
                work: c.work + c.points_out * weight::RESAMPLE,
                buffer_bytes: c.buffer_bytes.max(c.points_out.sqrt() * 24.0),
            }
        }
        Expr::Reproject { input, .. } => {
            let c = estimate_inner(input, catalog)?;
            CostEstimate {
                points_out: c.points_out,
                work: c.work + c.points_out * weight::REPROJECT,
                // A band of rows: ~8 rows of the (≈square) sector.
                buffer_bytes: c.buffer_bytes.max(c.points_out.sqrt() * 8.0 * 4.0),
            }
        }
        Expr::Compose { left, right, .. } | Expr::Ndvi { nir: left, vis: right } => {
            let l = estimate_inner(left, catalog)?;
            let r = estimate_inner(right, catalog)?;
            let matched = l.points_out.min(r.points_out);
            CostEstimate {
                points_out: matched,
                work: l.work + r.work + (l.points_out + r.points_out) * weight::COMPOSE,
                // Hash-join buffer ≈ a row of the larger input under
                // row-by-row transmission.
                buffer_bytes: (l.buffer_bytes + r.buffer_bytes)
                    .max(l.points_out.max(r.points_out).sqrt() * 4.0),
            }
        }
        Expr::Shed { input, stride, .. } => {
            let c = estimate_inner(input, catalog)?;
            CostEstimate {
                points_out: c.points_out / f64::from(*stride),
                work: c.work + c.points_out * weight::RESTRICT,
                buffer_bytes: c.buffer_bytes,
            }
        }
        Expr::Delay { input, d } => {
            let c = estimate_inner(input, catalog)?;
            CostEstimate {
                points_out: c.points_out,
                work: c.work + c.points_out * weight::RESTRICT,
                buffer_bytes: c.buffer_bytes + c.points_out * 4.0 * f64::from(*d + 1),
            }
        }
        Expr::AggTime { input, window, .. } => {
            let c = estimate_inner(input, catalog)?;
            CostEstimate {
                points_out: c.points_out,
                work: c.work + c.points_out * weight::AGGREGATE * f64::from(*window),
                buffer_bytes: c.buffer_bytes + c.points_out * 8.0 * f64::from(*window),
            }
        }
        Expr::AggSpace { input, region, .. } => {
            let c = estimate_inner(input, catalog)?;
            let sel = region_selectivity(catalog, input, region);
            CostEstimate {
                points_out: 1.0,
                work: c.work + c.points_out * sel * weight::AGGREGATE,
                buffer_bytes: c.buffer_bytes,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StreamSchema, VecStream};
    use crate::query::optimizer::optimize;
    use crate::query::parser::parse_query;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn catalog() -> Catalog {
        let lattice =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 64, 64);
        let mut cat = Catalog::new();
        for name in ["g1", "g2"] {
            let mut schema = StreamSchema::new(name, Crs::LatLon);
            schema.sector_lattice = Some(lattice);
            let name = name.to_string();
            cat.register(schema, move || {
                Box::new(VecStream::<f32>::single_sector(&name, lattice, 0, |_, _| 0.0))
            });
        }
        cat
    }

    #[test]
    fn source_cost_matches_lattice() {
        let cat = catalog();
        let c = estimate(&Expr::source("g1"), &cat).unwrap();
        assert_eq!(c.points_out, 64.0 * 64.0);
        assert_eq!(c.work, 0.0);
    }

    #[test]
    fn restriction_reduces_points() {
        let cat = catalog();
        // A quarter of the sector.
        let e = parse_query("restrict_space(g1, bbox(-124, 38, -122, 40), \"latlon\")").unwrap();
        let c = estimate(&e, &cat).unwrap();
        assert!((c.points_out - 1024.0).abs() / 1024.0 < 0.1, "{}", c.points_out);
    }

    #[test]
    fn optimizer_reduces_estimated_work() {
        let cat = catalog();
        let q = "restrict_space(
                   reproject(normalize(div(sub(g1, g2), add(g2, g1)), -1, 1), \"utm:10N\"),
                   bbox(430000, 4200000, 480000, 4250000), \"utm:10N\")";
        let e = parse_query(q).unwrap();
        let o = optimize(&e, &cat);
        let base = estimate(&e, &cat).unwrap();
        let opt = estimate(&o, &cat).unwrap();
        assert!(
            opt.work < base.work / 2.0,
            "optimized work {} should be well below {}",
            opt.work,
            base.work
        );
        assert!(opt.buffer_bytes <= base.buffer_bytes);
    }

    #[test]
    fn reprojection_dominates_work() {
        let cat = catalog();
        let plain = estimate(&parse_query("scale(g1, 1, 0)").unwrap(), &cat).unwrap();
        let reproj = estimate(&parse_query("reproject(g1, \"utm:10N\")").unwrap(), &cat).unwrap();
        assert!(reproj.work > 10.0 * plain.work);
    }

    #[test]
    fn unknown_lattice_falls_back_to_default_selectivity() {
        let mut cat = Catalog::new();
        // Registered with no sector lattice: no geometry to compute a
        // real selectivity from.
        cat.register(StreamSchema::new("bare", Crs::LatLon), || {
            let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 4, 4);
            Box::new(VecStream::<f32>::single_sector("bare", lattice, 0, |_, _| 0.0))
        });
        let e = parse_query("restrict_space(bare, bbox(0, 0, 1, 1), \"latlon\")").unwrap();
        let c = estimate(&e, &cat).unwrap();
        let src = estimate(&parse_query("bare").unwrap(), &cat).unwrap();
        assert!(
            (c.points_out - src.points_out * DEFAULT_SELECTIVITY).abs() < 1e-9,
            "{} vs {}",
            c.points_out,
            src.points_out
        );
    }

    #[test]
    fn buffer_bound_comes_from_the_analyzer() {
        let cat = catalog();
        // Image-scoped stretch buffers exactly one 64x64 f32 image.
        let c =
            estimate(&parse_query("stretch(g1, \"linear\", \"image\")").unwrap(), &cat).unwrap();
        assert_eq!(c.buffer_bytes, 64.0 * 64.0 * 4.0);
        // A plan the analyzer cannot bound reports the finite sentinel.
        let mut cat2 = Catalog::new();
        cat2.register(StreamSchema::new("bare", Crs::LatLon), || {
            let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 4, 4);
            Box::new(VecStream::<f32>::single_sector("bare", lattice, 0, |_, _| 0.0))
        });
        let c = estimate(&parse_query("reproject(bare, \"utm:10N\")").unwrap(), &cat2).unwrap();
        assert_eq!(c.buffer_bytes, UNBOUNDED_BUFFER_BYTES);
    }

    #[test]
    fn window_scales_aggregate_buffer() {
        let cat = catalog();
        let w2 = estimate(&parse_query("agg_time(g1, \"mean\", 2)").unwrap(), &cat).unwrap();
        let w8 = estimate(&parse_query("agg_time(g1, \"mean\", 8)").unwrap(), &cat).unwrap();
        assert!(w8.buffer_bytes > 3.0 * w2.buffer_bytes);
    }
}
