//! Query language, optimizer and multi-query index (§3.4 and §4).

pub mod analyze;
pub mod ast;
pub mod canon;
pub mod cascade;
pub mod cost;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod pushdown;

pub use analyze::{
    analyze, analyze_with, AnalyzeOptions, Diagnostic, OpAnalysis, ParallelismReport, PlanReport,
    ReplayEstimate, ReplayProvider, Severity, SharingReport, SubplanKey,
};
pub use ast::Expr;
pub use canon::{canonical_key, canonical_text, canonicalize, key_hex};
pub use cascade::{CascadeTree, NaiveRegionIndex, RegionIndex};
pub use optimizer::optimize;
pub use parser::parse_query;
pub use plan::{Catalog, Planner};
pub use pushdown::{
    merged_source_windows, source_windows, time_set_window, SourceWindow, TimeWindow,
};
