//! Static plan analysis ("planlint"): blocking classes, buffer bounds
//! and typed diagnostics, derived from an [`Expr`] **before** execution.
//!
//! §3 of the paper classifies every operator by its streaming cost —
//! restrictions are non-blocking and O(1) per point, k× downsampling
//! buffers k rows, frame-scoped stretches buffer a whole frame ("for
//! GOES up to 20 840 × 10 820 points ≈ 280 MB"), and re-projection "may
//! block arbitrarily" unless scan-sector metadata bounds the needed
//! neighborhood. The executor discovers these properties at runtime via
//! [`crate::stats::OpStats`]; this module derives the same facts
//! *statically* by walking the expression against a [`Catalog`], so a
//! DSMS can practice Aurora-style admission control: refuse a continuous
//! query whose worst-case buffer demand exceeds a memory budget, and
//! reject outright any plan with no static bound at all.
//!
//! The analysis produces a [`PlanReport`]:
//!
//! * a per-operator [`BlockingClass`] and worst-case buffer bound in
//!   bytes, derived from each source's `sector_lattice` and the pixel
//!   width (f32 = 4 bytes, matching the executor's byte accounting);
//! * schema/CRS type checks — cross-CRS region restrictions,
//!   composition over mismatched coordinate systems or measurement-time
//!   semantics (§3.3: such timestamps "would never match"), degenerate
//!   restriction ranges;
//! * ranked, typed [`Diagnostic`]s, each carrying the operator path and
//!   the paper section the check comes from.
//!
//! The flagship check: a [`Expr::Reproject`] over an input without
//! scan-sector metadata is statically [`BlockingClass::Unbounded`] and
//! yields an error diagnostic; the same plan over a scan-sector source
//! gets a narrow row-band bound.

use super::ast::Expr;
use super::canon::{canonical_key, canonical_text, key_hex};
use super::plan::Catalog;
use super::pushdown::{time_set_window, TimeWindow};
use crate::model::{Organization, TimeSemantics, TimeSet};
use crate::ops::protocol::{
    meet, CertBuilder, ProtocolCertificate, ProtocolContract, StreamGuarantees,
};
use crate::ops::{BlockingClass, StretchScope};
use geostreams_geo::{map_region, Coord, Crs, LatticeGeoref, Region};
use serde::{Deserialize, Serialize};

/// Bytes per buffered stream value (pipelines are normalized to `f32`,
/// and the executor's `OpStats` counts the same unit).
pub const PIXEL_BYTES: u64 = 4;

/// Bytes per downsampling block accumulator (mirrors
/// `ops::spatial::ACC_ENTRY_BYTES`).
const ACC_ENTRY_BYTES: u64 = 24;

/// Bytes per cell of a sliding-window aggregate image (`f64` state).
const AGG_CELL_BYTES: u64 = 8;

/// Sector dimensions assumed when a source registers no
/// `sector_lattice`: the byte bounds then describe a nominal
/// 1000 × 1000-point sector (same default magnitude the cost model
/// uses) and an info diagnostic marks the report as model-based.
const DEFAULT_SECTOR_WIDTH: u32 = 1000;
const DEFAULT_SECTOR_HEIGHT: u32 = 1000;

/// Safety rows the streaming re-projection keeps around the kernel
/// support (mirrors `ReprojectConfig::new`).
const REPROJECT_SAFETY_ROWS: u32 = 2;

/// Diagnostic severity; `Error` diagnostics make a plan inadmissible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational note (e.g. a cost bound is model-based).
    Info,
    /// Suspicious but runnable (e.g. a restriction that selects nothing).
    Warn,
    /// The plan is rejected (unbounded buffering, unknown source,
    /// un-combinable schemas).
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// One typed finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `reproject-unbounded`).
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Slash-separated operator path from the plan root.
    pub path: String,
    /// Paper section the check derives from (e.g. `§3.2`).
    pub section: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} ({})",
            self.severity, self.code, self.path, self.message, self.section
        )
    }
}

/// Archive-index size estimate for serving a source's past temporal
/// window: the evidence that classifies a replayed `G|T` plan as
/// *bounded* (a finite set of archived frames with a known byte size,
/// unlike a live feed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplayEstimate {
    /// Archived frames inside the window.
    pub frames: u64,
    /// Stored tile records backing those frames.
    pub tiles: u64,
    /// Compressed bytes the replay will read.
    pub bytes: u64,
}

/// Supplies archive-index estimates to the analyzer, so the core crate
/// stays independent of the storage layer (`geostreams-store`
/// implements this for its archive).
pub trait ReplayProvider {
    /// Size of the archived slice of `source` inside `[lo, hi)`, or
    /// `None` when the source is not archived at all.
    fn estimate(&self, source: &str, lo: Option<i64>, hi: Option<i64>) -> Option<ReplayEstimate>;
}

/// Context for [`analyze_with`]: what the analyzer may assume about
/// "now" and about archived history.
#[derive(Default)]
pub struct AnalyzeOptions<'a> {
    /// The live feed's current logical time (its starting scan sector
    /// under sector-id semantics); `None` disables past-window
    /// classification entirely (plain [`analyze`] behavior).
    pub now: Option<i64>,
    /// Archive index for replay estimates; `None` means no history is
    /// retained anywhere.
    pub replay: Option<&'a dyn ReplayProvider>,
}

/// Static verdict for one operator of the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpAnalysis {
    /// Slash-separated operator path from the plan root.
    pub path: String,
    /// Operator name (the textual algebra keyword).
    pub operator: String,
    /// Declared blocking class.
    pub blocking: BlockingClass,
    /// Worst-case buffered bytes for this operator alone.
    pub buffer_bytes: u64,
    /// Estimated points flowing out of this operator per sector.
    pub points_per_sector: u64,
    /// For source operators whose temporal window reaches into the
    /// past: the archive's bounded-replay estimate (see
    /// [`ReplayEstimate`]); `None` for live sources and non-sources.
    pub replay: Option<ReplayEstimate>,
}

/// The static analyzer's verdict for a whole plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanReport {
    /// Per-operator analyses, innermost (sources) first.
    pub per_op: Vec<OpAnalysis>,
    /// Worst blocking class across all operators.
    pub blocking: BlockingClass,
    /// Worst-case peak buffered bytes for the whole plan (sum of the
    /// per-operator bounds — all operators of a pipeline buffer
    /// concurrently). `None` when any operator is [`BlockingClass::Unbounded`].
    pub peak_buffer_bytes: Option<u64>,
    /// Findings, ranked most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Composed stream-protocol certificate (see
    /// [`ProtocolCertificate`]): the proof that every operator's marker
    /// and ordering requirements are discharged by its upstream. The
    /// serde default is deliberately *uncertified*, so a report that
    /// never ran the verifier cannot pass admission.
    #[serde(default)]
    pub certificate: ProtocolCertificate,
    /// Structural identity of the plan for multi-query sharing (see
    /// [`crate::query::canon`]): the canonical key the shared-plan
    /// registry groups subscriptions by, plus the keys of every
    /// subexpression, so the registry can detect partial overlap
    /// between plans. The serde default (empty) marks a report from a
    /// peer that predates the sharing subsystem.
    #[serde(default)]
    pub sharing: SharingReport,
    /// How the morsel driver would parallelize this plan, composed from
    /// the per-operator [`Parallelism`](crate::ops::Parallelism)
    /// contracts (see [`crate::exec::split_parallel`]). The serde
    /// default (no stages) marks a report from a peer that predates the
    /// parallel executor.
    #[serde(default)]
    pub parallelism: ParallelismReport,
}

/// The plan's data-parallel decomposition, as the static analyzer sees
/// it: which root operators the morsel driver would peel onto the
/// worker pool, and at what granularity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParallelismReport {
    /// Partitionable stage suffix, upstream first (algebra keywords).
    pub stages: Vec<String>,
    /// Morsel granularity of the suffix; `None` when the plan has no
    /// partitionable suffix and runs serially.
    pub granularity: Option<crate::ops::Granularity>,
}

/// Canonical identity of one subexpression of a plan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubplanKey {
    /// Canonical textual form of the subexpression (re-parsable).
    pub text: String,
    /// Canonical key, 16 hex digits.
    pub key: String,
    /// Operator nodes in the subexpression (sources excluded); the
    /// registry only shares cuts with at least one operator.
    pub operator_count: u64,
}

/// The sharing facts of a plan: its canonical identity and the
/// canonical keys of all subexpressions (deduplicated). `shared_with`
/// is zero from plain analysis; the DSMS's shared-plan registry fills
/// it with the number of *other* live queries on the same canonical
/// key when serving `/explain`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SharingReport {
    /// Canonical key of the whole plan, 16 hex digits.
    pub canonical_key: String,
    /// Canonical textual form of the whole plan.
    pub canonical_text: String,
    /// Canonical keys of every distinct subexpression with at least
    /// one operator, in pre-order.
    pub subplans: Vec<SubplanKey>,
    /// Other live queries sharing this exact plan (registry-filled).
    pub shared_with: u64,
}

impl SharingReport {
    /// Computes the sharing facts of an expression (see
    /// [`crate::query::canon`] for the normalization rules).
    pub fn for_expr(expr: &Expr) -> SharingReport {
        let mut subplans = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        expr.visit(&mut |e| {
            if matches!(e, Expr::Source(_)) {
                return;
            }
            let key = canonical_key(e);
            if seen.insert(key) {
                subplans.push(SubplanKey {
                    text: canonical_text(e),
                    key: key_hex(key),
                    operator_count: e.operator_count() as u64,
                });
            }
        });
        SharingReport {
            canonical_key: key_hex(canonical_key(expr)),
            canonical_text: canonical_text(expr),
            subplans,
            shared_with: 0,
        }
    }
}

impl PlanReport {
    /// True when any diagnostic is [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The error diagnostics, rendered one per line (used by the DSMS
    /// to explain a refused registration).
    pub fn render_errors(&self) -> String {
        let lines: Vec<String> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(Diagnostic::to_string)
            .collect();
        lines.join("; ")
    }

    /// True when an observed buffering peak exceeds the static bound —
    /// the observability cross-check the DSMS counts as
    /// `geostreams_plan_buffer_overrun_total`. An unbounded plan never
    /// "overruns" (there is no bound to exceed).
    pub fn buffer_overrun(&self, observed_bytes: u64) -> bool {
        match self.peak_buffer_bytes {
            Some(bound) => observed_bytes > bound,
            None => false,
        }
    }
}

/// Stream properties derived while walking an expression: the schema
/// facts the next operator up needs for its own classification.
#[derive(Clone)]
struct Derived {
    crs: Crs,
    organization: Organization,
    time_semantics: TimeSemantics,
    /// Effective sector lattice (shrunk by restrictions, resampled by
    /// resolution changes); `None` when no scan-sector metadata exists.
    lattice: Option<LatticeGeoref>,
    /// Stream-protocol guarantees at this point of the plan (threaded
    /// by the certificate builder).
    proto: StreamGuarantees,
}

impl Derived {
    fn width(&self) -> u32 {
        self.lattice.map_or(DEFAULT_SECTOR_WIDTH, |l| l.width)
    }

    fn height(&self) -> u32 {
        self.lattice.map_or(DEFAULT_SECTOR_HEIGHT, |l| l.height)
    }

    fn points(&self) -> u64 {
        u64::from(self.width()) * u64::from(self.height())
    }

    fn row_bytes(&self) -> u64 {
        u64::from(self.width()) * PIXEL_BYTES
    }

    fn image_bytes(&self) -> u64 {
        self.points() * PIXEL_BYTES
    }
}

/// A restriction's effect on the effective lattice: the sub-lattice
/// covered by `rect` (in lattice CRS), or `None` when disjoint.
fn restricted_lattice(lat: &LatticeGeoref, rect: &geostreams_geo::Rect) -> Option<LatticeGeoref> {
    let fp = lat.footprint(rect)?;
    Some(LatticeGeoref::new(
        lat.crs,
        Coord::new(
            lat.origin.x + f64::from(fp.col_min) * lat.step_x,
            lat.origin.y + f64::from(fp.row_min) * lat.step_y,
        ),
        lat.step_x,
        lat.step_y,
        fp.width(),
        fp.height(),
    ))
}

struct Analyzer<'a> {
    catalog: &'a Catalog,
    opts: &'a AnalyzeOptions<'a>,
    /// Stack of effective temporal windows: each `RestrictTime` pushes
    /// its intersection with the window above, so the top is the window
    /// the current subtree is observed through.
    windows: Vec<TimeWindow>,
    per_op: Vec<OpAnalysis>,
    diagnostics: Vec<Diagnostic>,
    cert: CertBuilder,
}

impl Analyzer<'_> {
    fn diag(&mut self, severity: Severity, code: &str, path: &str, message: String, section: &str) {
        self.diagnostics.push(Diagnostic {
            severity,
            code: code.to_string(),
            message,
            path: path.to_string(),
            section: section.to_string(),
        });
    }

    fn record(
        &mut self,
        path: &str,
        operator: &str,
        blocking: BlockingClass,
        buffer_bytes: u64,
        d: &Derived,
    ) {
        self.per_op.push(OpAnalysis {
            path: path.to_string(),
            operator: operator.to_string(),
            blocking,
            buffer_bytes,
            points_per_sector: d.points(),
            replay: None,
        });
    }

    fn window(&self) -> TimeWindow {
        self.windows.last().copied().unwrap_or_else(TimeWindow::unbounded)
    }

    /// Past-window classification for a source leaf (§3.1 `G|T` over
    /// history): decides whether the effective temporal window needs the
    /// archive, and whether the archive can actually serve it. Runs only
    /// under [`AnalyzeOptions::now`]; attaches the replay estimate to
    /// the just-recorded source's [`OpAnalysis`].
    fn classify_replay(&mut self, name: &str, path: &str) {
        let Some(now) = self.opts.now else { return };
        let win = self.window();
        if win.is_empty() {
            return; // `empty-time-set` already warns upstream.
        }
        if win == TimeWindow::unbounded() {
            // No explicit temporal restriction: an ordinary continuous
            // query, live from registration onward (§3.1 default).
            return;
        }
        if win.wholly_before(now) {
            let est = self.opts.replay.and_then(|r| r.estimate(name, win.lo, win.hi));
            match est {
                Some(est) if est.frames > 0 => {
                    self.diag(
                        Severity::Info,
                        "replay-from-archive",
                        path,
                        format!(
                            "temporal window {win} lies wholly before the live feed \
                             (now={now}); served as a bounded archive replay (~{} frames, \
                             {} compressed bytes)",
                            est.frames, est.bytes
                        ),
                        "§3.1",
                    );
                    if let Some(op) = self.per_op.last_mut() {
                        op.replay = Some(est);
                    }
                }
                _ => {
                    self.diag(
                        Severity::Error,
                        "past-interval-unservable",
                        path,
                        format!(
                            "temporal window {win} lies wholly before the live feed \
                             (now={now}) and no archived frames cover it; the query could \
                             only ever return an empty stream"
                        ),
                        "§3.1",
                    );
                }
            }
        } else if win.starts_before(now) {
            // Hybrid: the archive backfills [lo, now), the live feed
            // takes over at the watermark.
            let est = self.opts.replay.and_then(|r| r.estimate(name, win.lo, Some(now)));
            match est {
                Some(est) if est.frames > 0 => {
                    self.diag(
                        Severity::Info,
                        "replay-hybrid",
                        path,
                        format!(
                            "temporal window {win} starts before the live feed (now={now}); \
                             backfilled from the archive (~{} frames, {} compressed bytes), \
                             then spliced onto the live stream at the watermark",
                            est.frames, est.bytes
                        ),
                        "§3.1",
                    );
                    if let Some(op) = self.per_op.last_mut() {
                        op.replay = Some(est);
                    }
                }
                _ => {
                    self.diag(
                        Severity::Warn,
                        "past-start-no-archive",
                        path,
                        format!(
                            "temporal window {win} starts before the live feed (now={now}) \
                             but no archived frames cover the past portion; those frames \
                             will be missing from the result"
                        ),
                        "§3.1",
                    );
                }
            }
        }
    }

    /// Applies the source-leaf protocol contract at `path`. A source —
    /// live scanner, bounded archive replay, or hybrid splice — always
    /// synthesizes a pristine, well-bracketed marker sequence (the
    /// supervised runtime wraps chaotic feeds in `StreamRepair` before
    /// any operator sees them), so all three share the `source` contract
    /// shape; the operator name records which kind the replay
    /// classification picked.
    fn apply_source_contract(&mut self, path: &str) -> StreamGuarantees {
        let replayed = self.per_op.last().and_then(|op| op.replay).is_some();
        let name = match (replayed, self.opts.now) {
            (true, Some(now)) if self.window().wholly_before(now) => "replay-from-archive",
            (true, _) => "replay-hybrid",
            _ => "source",
        };
        self.cert.apply(path, &ProtocolContract::source(name), StreamGuarantees::pristine())
    }

    fn walk(&mut self, expr: &Expr, parent: &str) -> Derived {
        match expr {
            Expr::Source(name) => {
                let path = format!("{parent}/source[{name}]");
                match self.catalog.schema(name) {
                    Some(schema) => {
                        if schema.sector_lattice.is_none() {
                            self.diag(
                                Severity::Info,
                                "source-no-scan-sector",
                                &path,
                                format!(
                                    "source `{name}` registers no sector lattice; byte \
                                     bounds use the default {DEFAULT_SECTOR_WIDTH}x\
                                     {DEFAULT_SECTOR_HEIGHT} sector model"
                                ),
                                "§2",
                            );
                        }
                        let mut d = Derived {
                            crs: schema.crs,
                            organization: schema.organization,
                            time_semantics: schema.time_semantics,
                            lattice: schema.sector_lattice,
                            proto: StreamGuarantees::pristine(),
                        };
                        self.record(&path, "source", BlockingClass::NonBlocking, 0, &d);
                        self.classify_replay(name, &path);
                        d.proto = self.apply_source_contract(&path);
                        d
                    }
                    None => {
                        self.diag(
                            Severity::Error,
                            "unknown-source",
                            &path,
                            format!("source `{name}` is not registered in the catalog"),
                            "§4",
                        );
                        let mut d = Derived {
                            crs: Crs::LatLon,
                            organization: Organization::RowByRow,
                            time_semantics: TimeSemantics::SectorId,
                            lattice: None,
                            proto: StreamGuarantees::pristine(),
                        };
                        self.record(&path, "source", BlockingClass::NonBlocking, 0, &d);
                        d.proto = self.apply_source_contract(&path);
                        d
                    }
                }
            }
            Expr::RestrictSpace { input, region, crs } => {
                let path = format!("{parent}/restrict_space");
                let mut d = self.walk(input, &path);
                if region.bbox().area() <= 0.0 {
                    self.diag(
                        Severity::Warn,
                        "empty-region",
                        &path,
                        "spatial restriction region has zero area; no point can pass".into(),
                        "§3.1",
                    );
                }
                let rect_in_stream = if *crs == d.crs {
                    Some(region.bbox())
                } else {
                    self.diag(
                        Severity::Info,
                        "region-cross-crs",
                        &path,
                        format!(
                            "region given in {crs} over a {} stream; the planner maps it \
                             (conservative bounding box)",
                            d.crs
                        ),
                        "§3.4",
                    );
                    match map_region(region, crs, &d.crs, 8) {
                        Ok(rect) => Some(rect),
                        Err(e) => {
                            self.diag(
                                Severity::Error,
                                "region-unmappable",
                                &path,
                                format!("region cannot be mapped into the stream CRS: {e}"),
                                "§3.4",
                            );
                            None
                        }
                    }
                };
                if let (Some(lat), Some(rect)) = (d.lattice, rect_in_stream) {
                    match restricted_lattice(&lat, &rect) {
                        Some(sub) => d.lattice = Some(sub),
                        None => {
                            self.diag(
                                Severity::Warn,
                                "region-disjoint",
                                &path,
                                "restriction region does not intersect the source sector; \
                                 the query selects no points"
                                    .into(),
                                "§3.1",
                            );
                            d.lattice = Some(LatticeGeoref::new(
                                lat.crs, lat.origin, lat.step_x, lat.step_y, 0, 0,
                            ));
                        }
                    }
                }
                self.record(&path, "restrict_space", BlockingClass::NonBlocking, 0, &d);
                d.proto = self.cert.apply(
                    &path,
                    &crate::ops::restrict::restriction_contract("restrict_space"),
                    d.proto,
                );
                d
            }
            Expr::RestrictTime { input, times } => {
                let path = format!("{parent}/restrict_time");
                let narrowed = self.window().intersect(&time_set_window(times));
                self.windows.push(narrowed);
                let d = self.walk(input, &path);
                self.windows.pop();
                let degenerate = match times {
                    TimeSet::Instants(v) => v.is_empty(),
                    TimeSet::Interval { lo: Some(lo), hi: Some(hi) } => lo >= hi,
                    TimeSet::Interval { .. } => false,
                    TimeSet::Recurring { period, len, .. } => *period <= 0 || *len <= 0,
                };
                if degenerate {
                    self.diag(
                        Severity::Warn,
                        "empty-time-set",
                        &path,
                        "temporal restriction selects no timestamps; no sector can pass".into(),
                        "§3.1",
                    );
                }
                self.record(&path, "restrict_time", BlockingClass::NonBlocking, 0, &d);
                let mut d = d;
                d.proto = self.cert.apply(
                    &path,
                    &crate::ops::restrict::restriction_contract("restrict_time"),
                    d.proto,
                );
                d
            }
            Expr::RestrictValue { input, ranges } => {
                let path = format!("{parent}/restrict_value");
                let d = self.walk(input, &path);
                if ranges.is_empty() || ranges.iter().all(|(lo, hi)| lo > hi) {
                    self.diag(
                        Severity::Warn,
                        "degenerate-value-range",
                        &path,
                        "value restriction accepts no values; every point is dropped".into(),
                        "§3.1",
                    );
                }
                self.record(&path, "restrict_value", BlockingClass::NonBlocking, 0, &d);
                let mut d = d;
                d.proto = self.cert.apply(
                    &path,
                    &crate::ops::restrict::restriction_contract("restrict_value"),
                    d.proto,
                );
                d
            }
            Expr::MapValue { input, .. } => {
                let path = format!("{parent}/map_value");
                let d = self.walk(input, &path);
                self.record(&path, "map_value", BlockingClass::NonBlocking, 0, &d);
                let mut d = d;
                d.proto = self.cert.apply(
                    &path,
                    &crate::ops::value_transform::value_transform_contract("map_value"),
                    d.proto,
                );
                d
            }
            Expr::Stretch { input, scope, .. } => {
                let path = format!("{parent}/stretch");
                let d = self.walk(input, &path);
                let (class, bytes) = match (scope, d.organization) {
                    (StretchScope::Frame, Organization::RowByRow | Organization::PointByPoint) => {
                        (BlockingClass::BoundedRows(1), d.row_bytes())
                    }
                    _ => {
                        self.diag(
                            Severity::Info,
                            "stretch-buffers-image",
                            &path,
                            format!(
                                "image-scoped stretch must buffer the whole image \
                                 ({} bytes) before emitting",
                                d.image_bytes()
                            ),
                            "§3.2",
                        );
                        (BlockingClass::BoundedFrame, d.image_bytes())
                    }
                };
                self.record(&path, "stretch", class, bytes, &d);
                let mut d = d;
                d.proto =
                    self.cert.apply(&path, &crate::ops::stretch::stretch_contract(*scope), d.proto);
                d
            }
            Expr::Focal { input, k, .. } => {
                let path = format!("{parent}/focal");
                let d = self.walk(input, &path);
                let class = BlockingClass::BoundedRows(*k);
                let bytes = u64::from(*k) * d.row_bytes();
                self.record(&path, "focal", class, bytes, &d);
                let mut d = d;
                d.proto = self.cert.apply(&path, &crate::ops::focal::focal_contract(), d.proto);
                d
            }
            Expr::Orient { input, orientation } => {
                let path = format!("{parent}/orient");
                let mut d = self.walk(input, &path);
                if orientation.swaps_axes() {
                    if let Some(lat) = d.lattice {
                        d.lattice = Some(LatticeGeoref::new(
                            lat.crs, lat.origin, lat.step_x, lat.step_y, lat.height, lat.width,
                        ));
                    }
                }
                self.record(&path, "orient", BlockingClass::NonBlocking, 0, &d);
                d.proto = self.cert.apply(&path, &crate::ops::orient::orient_contract(), d.proto);
                d
            }
            Expr::Magnify { input, k } => {
                let path = format!("{parent}/magnify");
                let mut d = self.walk(input, &path);
                if *k == 0 {
                    self.diag(
                        Severity::Error,
                        "invalid-parameter",
                        &path,
                        "magnification factor must be at least 1".into(),
                        "§3.2",
                    );
                } else if let Some(lat) = d.lattice {
                    d.lattice = Some(lat.magnified(*k));
                }
                self.record(&path, "magnify", BlockingClass::NonBlocking, 0, &d);
                d.proto = self.cert.apply(&path, &crate::ops::spatial::magnify_contract(), d.proto);
                d
            }
            Expr::Downsample { input, k } => {
                let path = format!("{parent}/downsample");
                let mut d = self.walk(input, &path);
                if *k == 0 {
                    self.diag(
                        Severity::Error,
                        "invalid-parameter",
                        &path,
                        "downsampling factor must be at least 1".into(),
                        "§3.2",
                    );
                    self.record(&path, "downsample", BlockingClass::NonBlocking, 0, &d);
                    d.proto = self.cert.apply(
                        &path,
                        &crate::ops::spatial::downsample_contract(),
                        d.proto,
                    );
                    return d;
                }
                // One output row of block accumulators spans k input rows.
                let out_width = u64::from(d.width() / *k);
                let bytes = out_width.max(1) * ACC_ENTRY_BYTES;
                if let Some(lat) = d.lattice {
                    d.lattice = Some(lat.reduced(*k));
                }
                self.record(&path, "downsample", BlockingClass::BoundedRows(*k), bytes, &d);
                d.proto =
                    self.cert.apply(&path, &crate::ops::spatial::downsample_contract(), d.proto);
                d
            }
            Expr::Reproject { input, to, kernel } => {
                let path = format!("{parent}/reproject");
                let mut d = self.walk(input, &path);
                match d.lattice {
                    Some(lat) => {
                        let band = 2 * (kernel.support() + REPROJECT_SAFETY_ROWS) + 1;
                        let bytes = u64::from(band) * d.row_bytes();
                        // Derive the output lattice the way the streaming
                        // operator does: same cell count over the mapped
                        // world bbox.
                        d.lattice = map_region(&Region::Rect(lat.world_bbox()), &lat.crs, to, 8)
                            .ok()
                            .map(|rect| LatticeGeoref::north_up(*to, rect, lat.width, lat.height));
                        if d.lattice.is_none() {
                            self.diag(
                                Severity::Warn,
                                "reproject-extent-unknown",
                                &path,
                                format!(
                                    "sector extent cannot be mapped into {to}; downstream \
                                     bounds fall back to the default sector model"
                                ),
                                "§3.2",
                            );
                        }
                        d.crs = *to;
                        self.record(
                            &path,
                            "reproject",
                            BlockingClass::BoundedRows(band),
                            bytes,
                            &d,
                        );
                    }
                    None => {
                        self.diag(
                            Severity::Error,
                            "reproject-unbounded",
                            &path,
                            format!(
                                "re-projection to {to} over a stream without scan-sector \
                                 metadata may block arbitrarily; register the source with \
                                 a sector lattice or restrict the stream first"
                            ),
                            "§3.2",
                        );
                        d.crs = *to;
                        self.record(&path, "reproject", BlockingClass::Unbounded, 0, &d);
                    }
                }
                d.proto =
                    self.cert.apply(&path, &crate::ops::reproject::reproject_contract(), d.proto);
                d
            }
            Expr::Compose { left, right, op } => {
                let path = format!("{parent}/compose[{}]", op.symbol());
                let l = self.walk(left, &path);
                let r = self.walk(right, &path);
                self.compose_like(&path, "compose", l, r)
            }
            Expr::Ndvi { nir, vis } => {
                let path = format!("{parent}/ndvi");
                let l = self.walk(nir, &path);
                let r = self.walk(vis, &path);
                self.compose_like(&path, "ndvi", l, r)
            }
            Expr::Shed { input, stride, .. } => {
                let path = format!("{parent}/shed");
                let d = self.walk(input, &path);
                if *stride == 0 {
                    self.diag(
                        Severity::Error,
                        "invalid-parameter",
                        &path,
                        "shed stride must be at least 1".into(),
                        "§3.1",
                    );
                }
                self.record(&path, "shed", BlockingClass::NonBlocking, 0, &d);
                let mut d = d;
                d.proto = self.cert.apply(&path, &crate::ops::shed::shed_contract(), d.proto);
                d
            }
            Expr::Delay { input, d: shift } => {
                let path = format!("{parent}/delay");
                // `delay(g, d)` re-stamps data from `d` sectors ago: an
                // output window [lo, hi) consumes input from [lo-d, hi).
                let w = self.window();
                let shifted = TimeWindow { lo: w.shifted(-i64::from(*shift)).lo, hi: w.hi };
                self.windows.push(shifted);
                let d = self.walk(input, &path);
                self.windows.pop();
                if *shift == 0 {
                    self.diag(
                        Severity::Error,
                        "invalid-parameter",
                        &path,
                        "delay must shift by at least one sector".into(),
                        "§3.3",
                    );
                }
                let bytes = u64::from(shift + 1) * d.image_bytes();
                self.record(&path, "delay", BlockingClass::BoundedFrame, bytes, &d);
                let mut d = d;
                d.proto = self.cert.apply(&path, &crate::ops::delay::delay_contract(), d.proto);
                d
            }
            Expr::AggTime { input, window, .. } => {
                let path = format!("{parent}/agg_time");
                let d = self.walk(input, &path);
                if *window == 0 {
                    self.diag(
                        Severity::Error,
                        "invalid-parameter",
                        &path,
                        "aggregate window must span at least one image".into(),
                        "§6",
                    );
                }
                let bytes = u64::from(*window) * d.points() * AGG_CELL_BYTES;
                self.record(&path, "agg_time", BlockingClass::BoundedFrame, bytes, &d);
                let mut d = d;
                d.proto = self.cert.apply(
                    &path,
                    &crate::ops::aggregate::aggregate_contract("agg_time"),
                    d.proto,
                );
                d
            }
            Expr::AggSpace { input, region, .. } => {
                let path = format!("{parent}/agg_space");
                let mut d = self.walk(input, &path);
                if region.bbox().area() <= 0.0 {
                    self.diag(
                        Severity::Warn,
                        "empty-region",
                        &path,
                        "aggregate region has zero area; the aggregate sees no points".into(),
                        "§6",
                    );
                }
                // The output is a 1×1-lattice scalar stream.
                d.lattice = Some(LatticeGeoref::north_up(d.crs, region.bbox(), 1, 1));
                self.record(&path, "agg_space", BlockingClass::NonBlocking, 0, &d);
                d.proto = self.cert.apply(
                    &path,
                    &crate::ops::aggregate::aggregate_contract("agg_space"),
                    d.proto,
                );
                d
            }
        }
    }

    /// Shared classification for `Compose` and the fused NDVI macro
    /// (§3.3): buffering depends on the point organization, and the
    /// timestamp semantics decide whether points can match at all.
    fn compose_like(&mut self, path: &str, operator: &str, l: Derived, r: Derived) -> Derived {
        if l.crs != r.crs {
            self.diag(
                Severity::Error,
                "compose-crs-mismatch",
                path,
                format!(
                    "composition inputs use different coordinate systems ({} vs {}); \
                     re-project one side first",
                    l.crs, r.crs
                ),
                "§3.3",
            );
        }
        if l.time_semantics == TimeSemantics::MeasurementTime
            || r.time_semantics == TimeSemantics::MeasurementTime
        {
            self.diag(
                Severity::Warn,
                "compose-measurement-time",
                path,
                "an input is timestamped by measurement time; timestamps from different \
                 streams essentially never match, so the composition produces no output"
                    .into(),
                "§3.3",
            );
        }
        if let (Some(ll), Some(rl)) = (l.lattice, r.lattice) {
            if ll.width != rl.width || ll.height != rl.height {
                self.diag(
                    Severity::Warn,
                    "compose-lattice-mismatch",
                    path,
                    format!(
                        "input lattices differ ({}x{} vs {}x{}); Definition 10 requires one \
                         point lattice — unmatched points are dropped",
                        ll.width, ll.height, rl.width, rl.height
                    ),
                    "§3.3",
                );
            }
        }
        let image_by_image = l.organization == Organization::ImageByImage
            || r.organization == Organization::ImageByImage;
        let (class, bytes) = if image_by_image {
            (BlockingClass::BoundedFrame, l.image_bytes() + r.image_bytes())
        } else {
            (BlockingClass::BoundedRows(1), l.row_bytes() + r.row_bytes())
        };
        let mut out = Derived {
            crs: l.crs,
            organization: l.organization,
            time_semantics: l.time_semantics,
            lattice: l.lattice.or(r.lattice),
            proto: meet(l.proto, r.proto),
        };
        self.record(path, operator, class, bytes, &out);
        // The merge sees the weaker of what each side guarantees.
        out.proto = self.cert.apply(
            path,
            &crate::ops::compose::compose_contract(operator),
            meet(l.proto, r.proto),
        );
        out
    }
}

/// Statically analyzes a plan against a catalog.
///
/// Never fails: problems surface as ranked [`Diagnostic`]s in the
/// returned [`PlanReport`] so callers can render all findings at once.
pub fn analyze(expr: &Expr, catalog: &Catalog) -> PlanReport {
    analyze_with(expr, catalog, &AnalyzeOptions::default())
}

/// [`analyze`] with runtime context: when [`AnalyzeOptions::now`] is
/// set, source leaves whose effective temporal window reaches before
/// `now` are classified — bounded archive replay (`replay-from-archive`
/// / `replay-hybrid`, with a [`ReplayEstimate`] on the source's
/// [`OpAnalysis`]), a warning when the past portion is not archived, or
/// an error (`past-interval-unservable`) when a wholly-past window has
/// no archive coverage and the query could only ever return an empty
/// stream.
pub fn analyze_with(expr: &Expr, catalog: &Catalog, opts: &AnalyzeOptions<'_>) -> PlanReport {
    let mut a = Analyzer {
        catalog,
        opts,
        windows: Vec::new(),
        per_op: Vec::new(),
        diagnostics: Vec::new(),
        cert: CertBuilder::new(),
    };
    let root = a.walk(expr, "");
    let certificate = a.cert.finish(root.proto);
    if !certificate.certified {
        for v in &certificate.violations {
            a.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: "protocol-uncertified".to_string(),
                message: v.clone(),
                path: String::new(),
                section: "§12".to_string(),
            });
        }
    }
    let blocking = a
        .per_op
        .iter()
        .map(|op| op.blocking)
        .fold(BlockingClass::NonBlocking, BlockingClass::worse);
    let peak_buffer_bytes = if blocking == BlockingClass::Unbounded {
        None
    } else {
        Some(a.per_op.iter().map(|op| op.buffer_bytes).sum())
    };
    // Rank: errors first, then warnings, then info (stable within class).
    a.diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
    let split = crate::exec::split_parallel(expr);
    let parallelism = ParallelismReport {
        granularity: if split.stages.is_empty() { None } else { Some(split.granularity()) },
        stages: split.stages.iter().map(|s| s.name().to_string()).collect(),
    };
    PlanReport {
        per_op: a.per_op,
        blocking,
        peak_buffer_bytes,
        diagnostics: a.diagnostics,
        certificate,
        sharing: SharingReport::for_expr(expr),
        parallelism,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StreamSchema, VecStream};
    use crate::query::parse_query;
    use geostreams_geo::Rect;

    fn catalog() -> Catalog {
        let lattice =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 64, 64);
        let mut cat = Catalog::new();
        for name in ["g1", "g2"] {
            let mut schema = StreamSchema::new(name, Crs::LatLon);
            schema.sector_lattice = Some(lattice);
            let name = name.to_string();
            cat.register(schema, move || {
                Box::new(VecStream::<f32>::single_sector(&name, lattice, 0, |_, _| 0.0))
            });
        }
        // A source that never registered scan-sector metadata.
        cat.register(StreamSchema::new("nolat", Crs::LatLon), || {
            Box::new(VecStream::<f32>::single_sector(
                "nolat",
                LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 4, 4),
                0,
                |_, _| 0.0,
            ))
        });
        cat
    }

    fn report(q: &str) -> PlanReport {
        analyze(&parse_query(q).unwrap(), &catalog())
    }

    #[test]
    fn restrictions_are_non_blocking_with_zero_bytes() {
        for q in [
            "g1",
            "restrict_space(g1, bbox(-123, 37, -122, 38), \"latlon\")",
            "restrict_time(g1, interval(0, 5))",
            "restrict_value(g1, 0, 1)",
            "scale(g1, 2, 0)",
            "orient(g1, \"rot90\")",
            "magnify(g1, 2)",
            "shed(g1, \"points\", 4)",
        ] {
            let r = report(q);
            assert_eq!(r.blocking, BlockingClass::NonBlocking, "{q}");
            assert_eq!(r.peak_buffer_bytes, Some(0), "{q}");
            assert!(!r.has_errors(), "{q}: {:?}", r.diagnostics);
        }
    }

    #[test]
    fn parallelism_report_composes_stage_contracts() {
        // Partitionable suffix above a shed: the shed stays serial, the
        // scale+restrict suffix parallelizes at frame granularity.
        let r = report("restrict_value(scale(shed(g1, \"points\", 4), 2, 0), 0, 1)");
        assert_eq!(r.parallelism.stages, vec!["map_value", "restrict_value"]);
        assert_eq!(r.parallelism.granularity, Some(crate::ops::Granularity::Frame));
        // A sector-scoped stage promotes the granularity.
        let r = report("focal(scale(g1, 2, 0), \"mean\", 3)");
        assert_eq!(r.parallelism.granularity, Some(crate::ops::Granularity::Sector));
        // No partitionable suffix at the root: serial plan.
        let r = report("shed(scale(g1, 2, 0), \"points\", 4)");
        assert!(r.parallelism.stages.is_empty());
        assert_eq!(r.parallelism.granularity, None);
    }

    #[test]
    fn reprojection_without_metadata_is_unbounded() {
        let r = report("reproject(nolat, \"utm:10N\")");
        assert_eq!(r.blocking, BlockingClass::Unbounded);
        assert_eq!(r.peak_buffer_bytes, None);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == "reproject-unbounded"));
        // Same plan over a scan-sector source is a narrow row band.
        let ok = report("reproject(g1, \"utm:10N\")");
        assert!(matches!(ok.blocking, BlockingClass::BoundedRows(_)));
        assert!(ok.peak_buffer_bytes.is_some());
        assert!(!ok.has_errors());
    }

    #[test]
    fn restriction_shrinks_downstream_buffer_bounds() {
        let full = report("focal(g1, \"sobel\", 3)");
        let cut =
            report("focal(restrict_space(g1, bbox(-124, 38, -122, 40), \"latlon\"), \"sobel\", 3)");
        assert!(cut.peak_buffer_bytes.unwrap() < full.peak_buffer_bytes.unwrap());
    }

    #[test]
    fn diagnostics_rank_errors_first() {
        let r = report("reproject(restrict_value(nolat, 5, 1), \"utm:10N\")");
        assert!(r.diagnostics.len() >= 2);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        let mut last = Severity::Error;
        for d in &r.diagnostics {
            assert!(d.severity <= last);
            last = d.severity;
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let r = report("stretch(ndvi(g1, g2), \"linear\", \"image\")");
        let json = serde_json::to_string(&r).unwrap();
        let back: PlanReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    /// Fake archive holding frames for timestamps `[0, archived_hi)`,
    /// one frame and 64 bytes per archived sector.
    struct FakeArchive {
        archived_hi: i64,
    }

    impl ReplayProvider for FakeArchive {
        fn estimate(
            &self,
            _source: &str,
            lo: Option<i64>,
            hi: Option<i64>,
        ) -> Option<ReplayEstimate> {
            let lo = lo.unwrap_or(0).max(0);
            let hi = hi.unwrap_or(self.archived_hi).min(self.archived_hi);
            let frames = u64::try_from(hi - lo).unwrap_or(0);
            Some(ReplayEstimate { frames, tiles: frames, bytes: frames * 64 })
        }
    }

    fn report_with(q: &str, opts: &AnalyzeOptions<'_>) -> PlanReport {
        analyze_with(&parse_query(q).unwrap(), &catalog(), opts)
    }

    #[test]
    fn wholly_past_window_without_archive_is_an_error() {
        let q = "restrict_time(g1, interval(0, 4))";
        // Plain analysis (no notion of "now") stays permissive.
        assert!(!report(q).has_errors());
        // With the live feed at sector 10 and no archive, the window can
        // never be served: silent-empty-result becomes a typed error.
        let r = report_with(q, &AnalyzeOptions { now: Some(10), replay: None });
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == "past-interval-unservable"));
    }

    #[test]
    fn wholly_past_window_with_archive_is_bounded_replay() {
        let archive = FakeArchive { archived_hi: 10 };
        let r = report_with(
            "restrict_time(g1, interval(2, 6))",
            &AnalyzeOptions { now: Some(10), replay: Some(&archive) },
        );
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().any(|d| d.code == "replay-from-archive"));
        let src = r.per_op.iter().find(|op| op.operator == "source").unwrap();
        assert_eq!(src.replay, Some(ReplayEstimate { frames: 4, tiles: 4, bytes: 256 }));
    }

    #[test]
    fn past_start_splits_into_hybrid_backfill() {
        let archive = FakeArchive { archived_hi: 10 };
        // Open-ended window starting in the past: backfill [1, 5), then live.
        let r = report_with(
            "restrict_time(g1, interval(1, none))",
            &AnalyzeOptions { now: Some(5), replay: Some(&archive) },
        );
        assert!(!r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == "replay-hybrid"));
        let src = r.per_op.iter().find(|op| op.operator == "source").unwrap();
        assert_eq!(src.replay.unwrap().frames, 4);
    }

    #[test]
    fn past_start_without_archive_warns() {
        let r = report_with(
            "restrict_time(g1, interval(1, none))",
            &AnalyzeOptions { now: Some(5), replay: None },
        );
        assert!(!r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == "past-start-no-archive"));
    }

    #[test]
    fn live_only_windows_are_untouched_by_context() {
        let archive = FakeArchive { archived_hi: 10 };
        for q in ["g1", "restrict_time(g1, interval(5, 9))"] {
            let r = report_with(q, &AnalyzeOptions { now: Some(5), replay: Some(&archive) });
            assert!(!r.has_errors(), "{q}");
            assert!(
                !r.diagnostics
                    .iter()
                    .any(|d| d.code.starts_with("replay") || d.code.starts_with("past")),
                "{q}: {:?}",
                r.diagnostics
            );
        }
    }

    #[test]
    fn nested_restrictions_classify_through_their_intersection() {
        let archive = FakeArchive { archived_hi: 10 };
        // [0, 20) ∩ [2, 6) = [2, 6): wholly past of now=8.
        let r = report_with(
            "restrict_time(restrict_time(g1, interval(0, 20)), interval(2, 6))",
            &AnalyzeOptions { now: Some(8), replay: Some(&archive) },
        );
        assert!(r.diagnostics.iter().any(|d| d.code == "replay-from-archive"));
    }

    #[test]
    fn every_plan_carries_a_certificate() {
        for q in [
            "g1",
            "restrict_space(g1, bbox(-123, 37, -122, 38), \"latlon\")",
            "restrict_time(g1, interval(0, 5))",
            "restrict_value(g1, 0, 1)",
            "scale(g1, 2, 0)",
            "stretch(g1, \"linear\", \"image\")",
            "focal(g1, \"sobel\", 3)",
            "orient(g1, \"rot90\")",
            "magnify(g1, 2)",
            "downsample(g1, 2)",
            "reproject(g1, \"utm:10N\")",
            "compose(g1, \"+\", g2)",
            "ndvi(g1, g2)",
            "shed(g1, \"points\", 4)",
            "delay(g1, 2)",
            "agg_time(g1, \"mean\", 3)",
            "agg_space(g1, \"mean\", bbox(-123, 37, -122, 38))",
            "stretch(ndvi(restrict_space(g1, bbox(-123, 37, -122, 38), \"latlon\"), g2), \
             \"linear\", \"image\")",
        ] {
            let r = report(q);
            assert!(r.certificate.certified, "{q}: {:?}", r.certificate.violations);
            assert!(r.certificate.output.bracketed, "{q}");
            assert!(r.certificate.output.lattice_order, "{q}");
            assert_eq!(r.certificate.stages.len(), r.per_op.len(), "{q}");
            assert!(r.certificate.violations.is_empty(), "{q}");
        }
    }

    #[test]
    fn certificate_stage_paths_match_per_op_paths() {
        let r = report("stretch(ndvi(g1, g2), \"linear\", \"image\")");
        let op_paths: Vec<&str> = r.per_op.iter().map(|op| op.path.as_str()).collect();
        let stage_paths: Vec<&str> = r.certificate.stages.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(op_paths, stage_paths);
    }

    #[test]
    fn replayed_sources_certify_under_their_replay_contract() {
        let archive = FakeArchive { archived_hi: 10 };
        let r = report_with(
            "restrict_time(g1, interval(2, 6))",
            &AnalyzeOptions { now: Some(10), replay: Some(&archive) },
        );
        assert!(r.certificate.certified);
        assert_eq!(r.certificate.stages[0].contract.operator, "replay-from-archive");
        let h = report_with(
            "restrict_time(g1, interval(1, none))",
            &AnalyzeOptions { now: Some(5), replay: Some(&archive) },
        );
        assert!(h.certificate.certified);
        assert_eq!(h.certificate.stages[0].contract.operator, "replay-hybrid");
    }

    #[test]
    fn unverified_reports_deserialize_uncertified() {
        let r = report("g1");
        let json = serde_json::to_string(&r).unwrap();
        // An older peer that never ran the verifier omits the
        // trailing certificate (and sharing) fields entirely.
        let idx = json.rfind(",\"certificate\":").unwrap();
        let legacy = format!("{}}}", &json[..idx]);
        let back: PlanReport = serde_json::from_str(&legacy).unwrap();
        assert!(!back.certificate.certified);
        assert!(!back.certificate.violations.is_empty());
    }

    #[test]
    fn reports_carry_canonical_sharing_facts() {
        let a = report("add(g1, g2)");
        let b = report("add(g2, g1)");
        assert_eq!(a.sharing.canonical_key, b.sharing.canonical_key);
        assert_eq!(a.sharing.canonical_text, "add(g1, g2)");
        assert_eq!(a.sharing.shared_with, 0);
        // One distinct operator subexpression: the add itself.
        assert_eq!(a.sharing.subplans.len(), 1);
        assert_eq!(a.sharing.subplans[0].operator_count, 1);
        // Nested plans list every operator cut exactly once.
        let c = report("scale(downsample(g1, 4), 2, 0)");
        assert_eq!(c.sharing.subplans.len(), 2);
        assert!(c.sharing.subplans.iter().any(|s| s.text == "downsample(g1, 4)"));
    }

    #[test]
    fn buffer_overrun_compares_against_bound() {
        let r = report("stretch(g1, \"linear\", \"image\")");
        let bound = r.peak_buffer_bytes.unwrap();
        assert!(bound >= 64 * 64 * 4);
        assert!(!r.buffer_overrun(bound));
        assert!(r.buffer_overrun(bound + 1));
        let unbounded = report("reproject(nolat, \"utm:10N\")");
        assert!(!unbounded.buffer_overrun(u64::MAX));
    }
}
