//! Multi-query spatial-restriction indexing (§4).
//!
//! "Multiple queries against a single GeoStream are optimized using a
//! dynamic cascade tree structure [10], which acts as a single spatial
//! restriction operator and efficiently streams only the point data of
//! interest to current continuous queries to subsequent operators."
//!
//! [`CascadeTree`] is our re-implementation of that idea: a dynamic
//! region-subscription index over world space. Registered query regions
//! *cascade* down a quadtree; a node fully covered by a region stores the
//! query id at that node (so a point lookup collects it in O(1) on its
//! way down), and partially-overlapping regions sink toward the leaves.
//! A point lookup walks one root-to-leaf path and reports every query
//! whose region contains the point. [`NaiveRegionIndex`] is the baseline
//! the paper's design displaces: test every registered region per point.
//! Experiment E5 compares the two as the number of registered queries
//! grows.

use geostreams_geo::{Coord, Rect};

/// Identifier of a registered continuous query.
pub type QueryId = u32;

/// A point-to-subscribers index over query regions.
pub trait RegionIndex {
    /// Registers a query's (rectangular) region of interest.
    fn insert(&mut self, id: QueryId, region: Rect);

    /// Unregisters a query.
    fn remove(&mut self, id: QueryId);

    /// Appends to `out` the ids of all queries whose region contains `p`.
    fn query_point(&self, p: Coord, out: &mut Vec<QueryId>);

    /// Number of registered queries.
    fn len(&self) -> usize;

    /// True when no query is registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Baseline: a flat list scanned per point.
#[derive(Debug, Default)]
pub struct NaiveRegionIndex {
    regions: Vec<(QueryId, Rect)>,
}

impl NaiveRegionIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegionIndex for NaiveRegionIndex {
    fn insert(&mut self, id: QueryId, region: Rect) {
        self.regions.push((id, region));
    }

    fn remove(&mut self, id: QueryId) {
        self.regions.retain(|(q, _)| *q != id);
    }

    fn query_point(&self, p: Coord, out: &mut Vec<QueryId>) {
        for (id, r) in &self.regions {
            if r.contains(p) {
                out.push(*id);
            }
        }
    }

    fn len(&self) -> usize {
        self.regions.len()
    }
}

/// One quadtree node of the cascade tree.
#[derive(Debug, Default)]
struct Node {
    /// Queries whose region fully covers this node's box.
    covered: Vec<QueryId>,
    /// Queries overlapping but not covering; only at leaf depth.
    partial: Vec<(QueryId, Rect)>,
    /// Child nodes (NW, NE, SW, SE), allocated on demand.
    children: Option<Box<[Node; 4]>>,
}

/// The dynamic cascade tree.
#[derive(Debug)]
pub struct CascadeTree {
    root: Node,
    bounds: Rect,
    max_depth: u32,
    len: usize,
}

impl CascadeTree {
    /// Creates a tree over the world rectangle `bounds` with the given
    /// maximum depth (8–12 is typical; depth `d` gives `4^d` finest
    /// cells).
    pub fn new(bounds: Rect, max_depth: u32) -> Self {
        CascadeTree { root: Node::default(), bounds, max_depth, len: 0 }
    }

    fn quadrant(b: &Rect, i: usize) -> Rect {
        let cx = (b.x_min + b.x_max) / 2.0;
        let cy = (b.y_min + b.y_max) / 2.0;
        match i {
            0 => Rect { x_min: b.x_min, y_min: cy, x_max: cx, y_max: b.y_max }, // NW
            1 => Rect { x_min: cx, y_min: cy, x_max: b.x_max, y_max: b.y_max }, // NE
            2 => Rect { x_min: b.x_min, y_min: b.y_min, x_max: cx, y_max: cy }, // SW
            _ => Rect { x_min: cx, y_min: b.y_min, x_max: b.x_max, y_max: cy }, // SE
        }
    }

    fn covers(region: &Rect, node_box: &Rect) -> bool {
        region.x_min <= node_box.x_min
            && region.y_min <= node_box.y_min
            && region.x_max >= node_box.x_max
            && region.y_max >= node_box.y_max
    }

    fn insert_rec(node: &mut Node, node_box: Rect, id: QueryId, region: &Rect, depth: u32) {
        if !region.intersects(&node_box) {
            return;
        }
        if Self::covers(region, &node_box) {
            node.covered.push(id);
            return;
        }
        if depth == 0 {
            node.partial.push((id, *region));
            return;
        }
        let children = node.children.get_or_insert_with(|| {
            Box::new([Node::default(), Node::default(), Node::default(), Node::default()])
        });
        for (i, child) in children.iter_mut().enumerate() {
            Self::insert_rec(child, Self::quadrant(&node_box, i), id, region, depth - 1);
        }
    }

    fn remove_rec(node: &mut Node, id: QueryId) {
        node.covered.retain(|q| *q != id);
        node.partial.retain(|(q, _)| *q != id);
        if let Some(children) = &mut node.children {
            for child in children.iter_mut() {
                Self::remove_rec(child, id);
            }
        }
    }

    /// Number of quadtree nodes currently allocated (space diagnostics).
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            1 + n.children.as_ref().map_or(0, |c| c.iter().map(count).sum())
        }
        count(&self.root)
    }
}

impl RegionIndex for CascadeTree {
    fn insert(&mut self, id: QueryId, region: Rect) {
        let clipped = region.intersect(&self.bounds);
        if clipped.is_empty() {
            return;
        }
        Self::insert_rec(&mut self.root, self.bounds, id, &clipped, self.max_depth);
        self.len += 1;
    }

    fn remove(&mut self, id: QueryId) {
        Self::remove_rec(&mut self.root, id);
        self.len = self.len.saturating_sub(1);
    }

    fn query_point(&self, p: Coord, out: &mut Vec<QueryId>) {
        if !self.bounds.contains(p) {
            return;
        }
        let mut node = &self.root;
        let mut node_box = self.bounds;
        loop {
            out.extend_from_slice(&node.covered);
            for (id, r) in &node.partial {
                if r.contains(p) {
                    out.push(*id);
                }
            }
            let Some(children) = &node.children else { break };
            let cx = (node_box.x_min + node_box.x_max) / 2.0;
            let cy = (node_box.y_min + node_box.y_max) / 2.0;
            let idx = match (p.x >= cx, p.y >= cy) {
                (false, true) => 0,
                (true, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            node_box = Self::quadrant(&node_box, idx);
            node = &children[idx];
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new(-180.0, -90.0, 180.0, 90.0)
    }

    fn both() -> (CascadeTree, NaiveRegionIndex) {
        (CascadeTree::new(world(), 8), NaiveRegionIndex::new())
    }

    #[test]
    fn empty_index_reports_nothing() {
        let (tree, naive) = both();
        let mut out = Vec::new();
        tree.query_point(Coord::new(0.0, 0.0), &mut out);
        naive.query_point(Coord::new(0.0, 0.0), &mut out);
        assert!(out.is_empty());
        assert!(tree.is_empty());
    }

    #[test]
    fn single_region_membership() {
        let (mut tree, mut naive) = both();
        let r = Rect::new(-123.0, 37.0, -121.0, 39.0);
        tree.insert(1, r);
        naive.insert(1, r);
        for (p, inside) in [
            (Coord::new(-122.0, 38.0), true),
            (Coord::new(-123.0, 37.0), true), // boundary
            (Coord::new(-120.0, 38.0), false),
            (Coord::new(-122.0, 40.0), false),
        ] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            tree.query_point(p, &mut a);
            naive.query_point(p, &mut b);
            assert_eq!(a.len() == 1, inside, "tree at {p}");
            assert_eq!(b.len() == 1, inside, "naive at {p}");
        }
    }

    #[test]
    fn tree_agrees_with_naive_on_random_workload() {
        let (mut tree, mut naive) = both();
        // Deterministic pseudo-random regions.
        let mut seed = 0x1234_5678u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        let mut regions = Vec::new();
        for id in 0..200u32 {
            let x = -180.0 + next() * 170.0;
            let y = -90.0 + next() * 85.0;
            let w = next() * 40.0 + 0.1;
            let h = next() * 30.0 + 0.1;
            let r = Rect::new(x, y, (x + w).min(180.0), (y + h).min(90.0));
            tree.insert(id, r);
            naive.insert(id, r);
            regions.push(r);
        }
        for _ in 0..500 {
            let p = Coord::new(-180.0 + next() * 180.0, -90.0 + next() * 90.0);
            let mut a = Vec::new();
            let mut b = Vec::new();
            tree.query_point(p, &mut a);
            naive.query_point(p, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "divergence at {p}");
        }
    }

    #[test]
    fn removal_unsubscribes() {
        let (mut tree, _) = both();
        tree.insert(1, Rect::new(0.0, 0.0, 10.0, 10.0));
        tree.insert(2, Rect::new(5.0, 5.0, 15.0, 15.0));
        tree.remove(1);
        let mut out = Vec::new();
        tree.query_point(Coord::new(7.0, 7.0), &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn covering_region_lands_high_in_the_tree() {
        let mut tree = CascadeTree::new(world(), 8);
        tree.insert(1, world());
        // A region covering everything is stored at the root: one node.
        assert_eq!(tree.node_count(), 1);
        let mut out = Vec::new();
        tree.query_point(Coord::new(12.0, -45.0), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn out_of_bounds_regions_and_points() {
        let mut tree = CascadeTree::new(Rect::new(0.0, 0.0, 10.0, 10.0), 6);
        tree.insert(1, Rect::new(20.0, 20.0, 30.0, 30.0)); // fully outside
        assert_eq!(tree.len(), 0);
        tree.insert(2, Rect::new(5.0, 5.0, 25.0, 25.0)); // clipped
        let mut out = Vec::new();
        tree.query_point(Coord::new(50.0, 50.0), &mut out);
        assert!(out.is_empty());
        tree.query_point(Coord::new(7.0, 7.0), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn duplicate_inserts_report_per_registration() {
        let (mut tree, _) = both();
        tree.insert(7, Rect::new(0.0, 0.0, 1.0, 1.0));
        tree.insert(7, Rect::new(0.5, 0.5, 2.0, 2.0));
        let mut out = Vec::new();
        tree.query_point(Coord::new(0.75, 0.75), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![7, 7]);
        tree.remove(7);
        // Removal drops every registration of the id.
        let mut out2 = Vec::new();
        tree.query_point(Coord::new(0.75, 0.75), &mut out2);
        assert!(out2.is_empty());
    }
}
