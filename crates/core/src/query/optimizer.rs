//! Query rewriting (§3.4).
//!
//! "Rather than performing the composition of all point data from the
//! two streams, followed by a value and spatial transform on all the
//! resulting points, the final spatial restriction R can be pushed
//! inwards and applied first … because in the query R is based on the
//! UTM coordinate system, R needs to be mapped to the coordinate system
//! C. The query optimizer has to identify such rewrites in particular
//! for spatial selections, as these result in the most significant space
//! and time gains for query evaluation."
//!
//! Three rewrite families are implemented:
//!
//! 1. **spatial-restriction pushdown** — through value transforms,
//!    resolution changes, compositions (into both inputs), temporal and
//!    value restrictions, temporal aggregates, and — with a cross-CRS
//!    region mapping — through re-projections. When the push crosses a
//!    re-projection the mapped region is a conservative bounding box, so
//!    the original restriction is *kept* on the outside for exactness;
//! 2. **temporal-restriction pushdown** — through everything except
//!    sliding-window aggregates (which need history);
//! 3. **macro-operator fusion** — the NDVI pattern
//!    `(G₁ − G₂) ⊘ (G₂ + G₁)` is recognized and replaced by the fused
//!    [`Expr::Ndvi`] operator of §4; adjacent same-CRS rectangular
//!    spatial restrictions are merged by intersection.
//!
//! Every rewrite is semantics-preserving; `tests/` contains
//! property-based equivalence checks between optimized and unoptimized
//! plans.

use super::ast::Expr;
use super::plan::Catalog;
use crate::model::TimeSet;
use crate::ops::GammaOp;
use geostreams_geo::{map_region, Region};

/// Applies all rewrite rules to an expression.
///
/// Rewrites must never worsen the plan's static blocking class
/// (restriction pushdown, macro fusion and identity removal are all
/// blocking-neutral). The invariant is asserted in debug builds; in
/// release builds a rewrite that *would* worsen it is discarded and the
/// original expression is kept.
pub fn optimize(expr: &Expr, catalog: &Catalog) -> Expr {
    let before = super::analyze::analyze(expr, catalog).blocking;
    let e = simplify(expr.clone());
    let e = fuse_macros(e);
    let e = push_restrictions(e, catalog);
    let e = merge_restricts(e);
    // Pushdown can duplicate value transforms; fuse once more.
    let e = simplify(e);
    let after = super::analyze::analyze(&e, catalog).blocking;
    debug_assert!(after <= before, "optimizer worsened blocking class: {before} -> {after}");
    if after > before {
        return expr.clone();
    }
    e
}

/// Bottom-up algebraic simplifications:
///
/// * adjacent linear value transforms compose into one
///   (`a₂·(a₁·v + b₁) + b₂ = (a₂a₁)·v + (a₂b₁ + b₂)`);
/// * identity transforms (`scale(E,1,0)`, `magnify(E,1)`,
///   `downsample(E,1)`) disappear;
/// * double application of an involutive orientation cancels.
fn simplify(e: Expr) -> Expr {
    use crate::ops::ValueFunc;
    let e = map_children(e, &mut simplify);
    match e {
        Expr::MapValue { input, func: ValueFunc::Linear { scale: s2, offset: o2 } } => match *input
        {
            Expr::MapValue { input: inner, func: ValueFunc::Linear { scale: s1, offset: o1 } } => {
                simplify(Expr::MapValue {
                    input: inner,
                    func: ValueFunc::Linear { scale: s2 * s1, offset: s2 * o1 + o2 },
                })
            }
            other => {
                if s2 == 1.0 && o2 == 0.0 {
                    other
                } else {
                    Expr::MapValue {
                        input: Box::new(other),
                        func: ValueFunc::Linear { scale: s2, offset: o2 },
                    }
                }
            }
        },
        Expr::Magnify { input, k: 1 } => *input,
        Expr::Downsample { input, k: 1 } => *input,
        Expr::Orient { input, orientation } => match *input {
            Expr::Orient { input: inner, orientation: o1 }
                if o1 == orientation && orientation.inverse() == orientation =>
            {
                *inner
            }
            other => Expr::Orient { input: Box::new(other), orientation },
        },
        other => other,
    }
}

/// Rebuilds a node with rewritten children using `f`.
fn map_children(e: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    match e {
        Expr::Source(_) => e,
        Expr::RestrictSpace { input, region, crs } => {
            Expr::RestrictSpace { input: Box::new(f(*input)), region, crs }
        }
        Expr::RestrictTime { input, times } => {
            Expr::RestrictTime { input: Box::new(f(*input)), times }
        }
        Expr::RestrictValue { input, ranges } => {
            Expr::RestrictValue { input: Box::new(f(*input)), ranges }
        }
        Expr::MapValue { input, func } => Expr::MapValue { input: Box::new(f(*input)), func },
        Expr::Stretch { input, mode, scope } => {
            Expr::Stretch { input: Box::new(f(*input)), mode, scope }
        }
        Expr::Focal { input, func, k } => Expr::Focal { input: Box::new(f(*input)), func, k },
        Expr::Orient { input, orientation } => {
            Expr::Orient { input: Box::new(f(*input)), orientation }
        }
        Expr::Delay { input, d } => Expr::Delay { input: Box::new(f(*input)), d },
        Expr::Shed { input, policy, stride } => {
            Expr::Shed { input: Box::new(f(*input)), policy, stride }
        }
        Expr::Magnify { input, k } => Expr::Magnify { input: Box::new(f(*input)), k },
        Expr::Downsample { input, k } => Expr::Downsample { input: Box::new(f(*input)), k },
        Expr::Reproject { input, to, kernel } => {
            Expr::Reproject { input: Box::new(f(*input)), to, kernel }
        }
        Expr::Compose { left, right, op } => {
            Expr::Compose { left: Box::new(f(*left)), right: Box::new(f(*right)), op }
        }
        Expr::Ndvi { nir, vis } => Expr::Ndvi { nir: Box::new(f(*nir)), vis: Box::new(f(*vis)) },
        Expr::AggTime { input, func, window } => {
            Expr::AggTime { input: Box::new(f(*input)), func, window }
        }
        Expr::AggSpace { input, func, region } => {
            Expr::AggSpace { input: Box::new(f(*input)), func, region }
        }
    }
}

/// Bottom-up macro fusion: recognize `(a − b) ⊘ (b + a)` as NDVI.
fn fuse_macros(e: Expr) -> Expr {
    let e = map_children(e, &mut fuse_macros);
    if let Expr::Compose { left, right, op: GammaOp::Div } = &e {
        if let (
            Expr::Compose { left: a1, right: b1, op: GammaOp::Sub },
            Expr::Compose { left: b2, right: a2, op: GammaOp::Add },
        ) = (&**left, &**right)
        {
            // (a − b) / (b + a)  or  (a − b) / (a + b): addition commutes.
            let straight = a1 == a2 && b1 == b2;
            let swapped = a1 == b2 && b1 == a2;
            if straight || swapped {
                return Expr::Ndvi { nir: a1.clone(), vis: b1.clone() };
            }
        }
    }
    e
}

/// Top-level restriction-pushing pass.
fn push_restrictions(e: Expr, catalog: &Catalog) -> Expr {
    let e = map_children(e, &mut |c| push_restrictions(c, catalog));
    match e {
        Expr::RestrictSpace { input, region, crs } => {
            let (pushed, exact) = push_space(*input, &region, &crs, catalog);
            if exact {
                pushed
            } else {
                Expr::RestrictSpace { input: Box::new(pushed), region, crs }
            }
        }
        Expr::RestrictTime { input, times } => push_time(*input, &times),
        other => other,
    }
}

/// Largest cell step (absolute) of the first source lattice below an
/// expression, used to size conservative push margins.
fn source_step(e: &Expr, catalog: &Catalog) -> Option<f64> {
    let mut step = None;
    e.visit(&mut |x| {
        if step.is_none() {
            if let Expr::Source(n) = x {
                step = catalog
                    .schema(n)
                    .and_then(|s| s.sector_lattice)
                    .map(|l| l.step_x.abs().max(l.step_y.abs()));
            }
        }
    });
    step
}

/// A rectangular superset of `region` grown by `margin` (in the region's
/// own CRS units).
fn expanded(region: &Region, margin: f64) -> Region {
    Region::Rect(region.bbox().expand(margin))
}

/// Converts a margin given in `from`-CRS units into `to`-CRS units
/// (nominal scale factors; callers double it for safety).
fn convert_margin(margin: f64, from: &geostreams_geo::Crs, to: &geostreams_geo::Crs) -> f64 {
    margin * from.meters_per_unit() / to.meters_per_unit()
}

/// Pushes a spatial restriction as deep as possible; returns the pushed
/// expression and whether the push is exact (no conservative region
/// transformation happened on any path).
fn push_space(
    e: Expr,
    region: &Region,
    rcrs: &geostreams_geo::Crs,
    catalog: &Catalog,
) -> (Expr, bool) {
    match e {
        Expr::MapValue { input, func } => {
            let (i, exact) = push_space(*input, region, rcrs, catalog);
            (Expr::MapValue { input: Box::new(i), func }, exact)
        }
        Expr::RestrictValue { input, ranges } => {
            let (i, exact) = push_space(*input, region, rcrs, catalog);
            (Expr::RestrictValue { input: Box::new(i), ranges }, exact)
        }
        Expr::RestrictTime { input, times } => {
            let (i, exact) = push_space(*input, region, rcrs, catalog);
            (Expr::RestrictTime { input: Box::new(i), times }, exact)
        }
        Expr::Magnify { input, k } => {
            // Resolution changes resample the lattice: a fine cell whose
            // center is inside R may come from a coarse cell whose
            // center is just outside. Push a margin-expanded region and
            // keep the outer restriction (never exact).
            match source_step(&input, catalog) {
                Some(step) => {
                    let in_crs = catalog.crs_of(&input).unwrap_or(*rcrs);
                    let margin = 2.0 * convert_margin(step, &in_crs, rcrs);
                    let (i, _) = push_space(*input, &expanded(region, margin), rcrs, catalog);
                    (Expr::Magnify { input: Box::new(i), k }, false)
                }
                None => (Expr::Magnify { input, k }, false),
            }
        }
        Expr::Downsample { input, k } => {
            // A boundary block whose center is inside R averages source
            // cells up to k steps outside R: expand by (k+1) steps, keep
            // the outer restriction.
            match source_step(&input, catalog) {
                Some(step) => {
                    let in_crs = catalog.crs_of(&input).unwrap_or(*rcrs);
                    let margin = 2.0 * convert_margin(step * f64::from(k + 1), &in_crs, rcrs);
                    let (i, _) = push_space(*input, &expanded(region, margin), rcrs, catalog);
                    (Expr::Downsample { input: Box::new(i), k }, false)
                }
                None => (Expr::Downsample { input, k }, false),
            }
        }
        Expr::Focal { input, func, k } => {
            // Neighborhood ops read k/2 cells beyond the region edge:
            // push a margin-expanded region and keep the outer restrict.
            match source_step(&input, catalog) {
                Some(step) => {
                    let in_crs = catalog.crs_of(&input).unwrap_or(*rcrs);
                    let margin = 2.0 * convert_margin(step * f64::from(k / 2 + 1), &in_crs, rcrs);
                    let (i, _) = push_space(*input, &expanded(region, margin), rcrs, catalog);
                    (Expr::Focal { input: Box::new(i), func, k }, false)
                }
                None => (Expr::Focal { input, func, k }, false),
            }
        }
        Expr::Compose { left, right, op } => {
            let (l, le) = push_space(*left, region, rcrs, catalog);
            let (r, re) = push_space(*right, region, rcrs, catalog);
            (Expr::Compose { left: Box::new(l), right: Box::new(r), op }, le && re)
        }
        Expr::Ndvi { nir, vis } => {
            let (n, ne) = push_space(*nir, region, rcrs, catalog);
            let (v, ve) = push_space(*vis, region, rcrs, catalog);
            (Expr::Ndvi { nir: Box::new(n), vis: Box::new(v) }, ne && ve)
        }
        Expr::AggTime { input, func, window } => {
            let (i, exact) = push_space(*input, region, rcrs, catalog);
            (Expr::AggTime { input: Box::new(i), func, window }, exact)
        }
        Expr::Delay { input, d } => {
            // A spatial restriction selects the same cells regardless of
            // the temporal shift: exact commute.
            let (i, exact) = push_space(*input, region, rcrs, catalog);
            (Expr::Delay { input: Box::new(i), d }, exact)
        }
        Expr::Shed { input, policy, stride } => {
            match policy {
                // Point shedding drops cells by lattice position only:
                // exact commute.
                crate::ops::ShedPolicy::Points => {
                    let (i, exact) = push_space(*input, region, rcrs, catalog);
                    (Expr::Shed { input: Box::new(i), policy, stride }, exact)
                }
                // Row shedding counts arriving frames; a restriction
                // below it would change the frame parity. Stop here.
                crate::ops::ShedPolicy::Rows => {
                    let node = Expr::RestrictSpace {
                        input: Box::new(Expr::Shed { input, policy, stride }),
                        region: region.clone(),
                        crs: *rcrs,
                    };
                    (node, true)
                }
            }
        }
        Expr::Reproject { input, to, kernel } => {
            // §3.4: map R into the input coordinate system; the mapped
            // region is a conservative bbox (padded), so the result is
            // never exact — the caller keeps the original restriction.
            let input_crs = catalog.crs_of(&input);
            let mapped =
                input_crs.ok().and_then(|c| map_region(region, rcrs, &c, 16).ok().map(|r| (c, r)));
            match mapped {
                Some((in_crs, rect)) => {
                    // Pad by a few source cells so boundary interpolation
                    // neighbors survive the pushed restriction.
                    let margin = source_step(&input, catalog).unwrap_or(0.0) * 4.0;
                    let rect = rect.expand(margin);
                    let (i, _) = push_space(*input, &Region::Rect(rect), &in_crs, catalog);
                    (Expr::Reproject { input: Box::new(i), to, kernel }, false)
                }
                None => (Expr::Reproject { input, to, kernel }, false),
            }
        }
        Expr::RestrictSpace { input, region: r2, crs: crs2 } => {
            let (i, exact) = push_space(*input, region, rcrs, catalog);
            (Expr::RestrictSpace { input: Box::new(i), region: r2, crs: crs2 }, exact)
        }
        // Stretch scopes its statistics to the surviving points, so a
        // restriction does not commute; stop here. Orientation moves
        // content spatially (restricting before/after selects different
        // world regions); spatial aggregates own their region; sources
        // are where the restriction lands.
        Expr::Stretch { .. } | Expr::Orient { .. } | Expr::AggSpace { .. } | Expr::Source(_) => {
            let node =
                Expr::RestrictSpace { input: Box::new(e), region: region.clone(), crs: *rcrs };
            (node, true)
        }
    }
}

/// Pushes a temporal restriction to the sources (always exact).
fn push_time(e: Expr, times: &TimeSet) -> Expr {
    match e {
        Expr::MapValue { input, func } => {
            Expr::MapValue { input: Box::new(push_time(*input, times)), func }
        }
        Expr::RestrictValue { input, ranges } => {
            Expr::RestrictValue { input: Box::new(push_time(*input, times)), ranges }
        }
        Expr::RestrictSpace { input, region, crs } => {
            Expr::RestrictSpace { input: Box::new(push_time(*input, times)), region, crs }
        }
        Expr::Focal { input, func, k } => {
            Expr::Focal { input: Box::new(push_time(*input, times)), func, k }
        }
        Expr::Orient { input, orientation } => {
            Expr::Orient { input: Box::new(push_time(*input, times)), orientation }
        }
        Expr::Magnify { input, k } => {
            Expr::Magnify { input: Box::new(push_time(*input, times)), k }
        }
        Expr::Downsample { input, k } => {
            Expr::Downsample { input: Box::new(push_time(*input, times)), k }
        }
        Expr::Reproject { input, to, kernel } => {
            Expr::Reproject { input: Box::new(push_time(*input, times)), to, kernel }
        }
        Expr::Compose { left, right, op } => Expr::Compose {
            left: Box::new(push_time(*left, times)),
            right: Box::new(push_time(*right, times)),
            op,
        },
        Expr::Ndvi { nir, vis } => Expr::Ndvi {
            nir: Box::new(push_time(*nir, times)),
            vis: Box::new(push_time(*vis, times)),
        },
        Expr::AggSpace { input, func, region } => {
            Expr::AggSpace { input: Box::new(push_time(*input, times)), func, region }
        }
        // Sliding windows need history: the restriction stays outside.
        // Stretch commutes (frames of other timestamps are independent
        // scopes) but we only push *past* it, keeping it simple: stop.
        Expr::Shed { .. }
        | Expr::Delay { .. }
        | Expr::AggTime { .. }
        | Expr::Stretch { .. }
        | Expr::Source(_)
        | Expr::RestrictTime { .. } => {
            Expr::RestrictTime { input: Box::new(e), times: times.clone() }
        }
    }
}

/// Merges directly-nested rectangular spatial restrictions of one CRS.
fn merge_restricts(e: Expr) -> Expr {
    let e = map_children(e, &mut merge_restricts);
    if let Expr::RestrictSpace { input, region: Region::Rect(outer), crs } = &e {
        if let Expr::RestrictSpace { input: inner_input, region: Region::Rect(inner), crs: crs2 } =
            &**input
        {
            if crs == crs2 {
                let merged = outer.intersect(inner);
                return Expr::RestrictSpace {
                    input: inner_input.clone(),
                    region: Region::Rect(merged),
                    crs: *crs,
                };
            }
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StreamSchema, VecStream};
    use crate::query::parser::parse_query;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn catalog() -> Catalog {
        let lattice =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 16, 16);
        let mut cat = Catalog::new();
        for name in ["g1", "g2"] {
            let mut schema = StreamSchema::new(name, Crs::LatLon);
            schema.sector_lattice = Some(lattice);
            let name = name.to_string();
            cat.register(schema, move || {
                Box::new(VecStream::<f32>::single_sector(&name, lattice, 0, |c, r| {
                    f64::from(c + r)
                }))
            });
        }
        cat
    }

    fn count_nodes(e: &Expr, pred: impl Fn(&Expr) -> bool) -> usize {
        let mut n = 0;
        e.visit(&mut |x| {
            if pred(x) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn pushes_restriction_through_value_transform() {
        let cat = catalog();
        let e =
            parse_query("restrict_space(scale(g1, 2, 0), bbox(-123, 37, -122, 38), \"latlon\")")
                .unwrap();
        let o = optimize(&e, &cat);
        // The restriction now sits directly on the source.
        match &o {
            Expr::MapValue { input, .. } => {
                assert!(matches!(**input, Expr::RestrictSpace { .. }));
            }
            other => panic!("expected MapValue on top, got {other:?}"),
        }
    }

    #[test]
    fn pushes_restriction_into_both_compose_inputs() {
        let cat = catalog();
        let e = parse_query("restrict_space(add(g1, g2), bbox(-123, 37, -122, 38), \"latlon\")")
            .unwrap();
        let o = optimize(&e, &cat);
        assert_eq!(count_nodes(&o, |x| matches!(x, Expr::RestrictSpace { .. })), 2);
        match &o {
            Expr::Compose { left, right, .. } => {
                assert!(matches!(**left, Expr::RestrictSpace { .. }));
                assert!(matches!(**right, Expr::RestrictSpace { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pushdown_through_reprojection_maps_region_and_keeps_outer() {
        let cat = catalog();
        let e = parse_query(
            "restrict_space(reproject(g1, \"utm:10N\"),
                bbox(400000, 4100000, 500000, 4200000), \"utm:10N\")",
        )
        .unwrap();
        let o = optimize(&e, &cat);
        // Outer restriction kept (conservative inner), inner restriction
        // in lat/lon pushed onto the source.
        match &o {
            Expr::RestrictSpace { input, crs, .. } => {
                assert_eq!(*crs, Crs::utm(10, true));
                match &**input {
                    Expr::Reproject { input, .. } => match &**input {
                        Expr::RestrictSpace { crs, region, .. } => {
                            assert_eq!(*crs, Crs::LatLon);
                            // The mapped region covers the UTM window
                            // (~1° of longitude) plus conservative
                            // padding and interpolation margins.
                            let b = region.bbox();
                            assert!(b.x_min > -126.0 && b.x_max < -118.0, "{b:?}");
                            assert!(b.width() < 6.0, "{b:?} should stay a small window");
                        }
                        other => panic!("expected inner restrict, got {other:?}"),
                    },
                    other => panic!("expected reproject, got {other:?}"),
                }
            }
            other => panic!("expected outer restrict, got {other:?}"),
        }
    }

    #[test]
    fn fuses_the_ndvi_pattern() {
        let cat = catalog();
        for q in ["div(sub(g1, g2), add(g2, g1))", "div(sub(g1, g2), add(g1, g2))"] {
            let e = parse_query(q).unwrap();
            let o = optimize(&e, &cat);
            assert!(matches!(o, Expr::Ndvi { .. }), "{q} -> {o}");
        }
        // A non-matching pattern is left alone.
        let e = parse_query("div(sub(g1, g2), add(g2, g2))").unwrap();
        let o = optimize(&e, &cat);
        assert!(!matches!(o, Expr::Ndvi { .. }));
    }

    #[test]
    fn merges_nested_rect_restrictions() {
        let cat = catalog();
        let e = parse_query(
            "restrict_space(
               restrict_space(g1, bbox(-124, 36, -121, 39), \"latlon\"),
               bbox(-123, 37, -120, 40), \"latlon\")",
        )
        .unwrap();
        let o = optimize(&e, &cat);
        assert_eq!(count_nodes(&o, |x| matches!(x, Expr::RestrictSpace { .. })), 1);
        match &o {
            Expr::RestrictSpace { region, .. } => {
                let b = region.bbox();
                assert_eq!((b.x_min, b.y_min, b.x_max, b.y_max), (-123.0, 37.0, -121.0, 39.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn linear_transforms_fuse() {
        let cat = catalog();
        let e = parse_query("scale(scale(g1, 2, 1), 3, -1)").unwrap();
        let o = optimize(&e, &cat);
        match o {
            Expr::MapValue { func, input } => {
                assert_eq!(func, crate::ops::ValueFunc::Linear { scale: 6.0, offset: 2.0 });
                assert!(matches!(*input, Expr::Source(_)));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn identity_operators_vanish() {
        let cat = catalog();
        for q in [
            "scale(g1, 1, 0)",
            "magnify(g1, 1)",
            "downsample(g1, 1)",
            "orient(orient(g1, \"fliph\"), \"fliph\")",
        ] {
            let e = parse_query(q).unwrap();
            let o = optimize(&e, &cat);
            assert!(matches!(o, Expr::Source(_)), "{q} -> {o}");
        }
        // Non-involutive double rotations stay.
        let e = parse_query("orient(orient(g1, \"rot90\"), \"rot90\")").unwrap();
        let o = optimize(&e, &cat);
        assert!(matches!(o, Expr::Orient { .. }));
    }

    #[test]
    fn temporal_restriction_reaches_sources() {
        let cat = catalog();
        let e = parse_query("restrict_time(add(g1, g2), interval(0, 10))").unwrap();
        let o = optimize(&e, &cat);
        match &o {
            Expr::Compose { left, right, .. } => {
                assert!(matches!(**left, Expr::RestrictTime { .. }));
                assert!(matches!(**right, Expr::RestrictTime { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn restriction_stops_at_stretch() {
        let cat = catalog();
        let e = parse_query(
            "restrict_space(stretch(g1, \"linear\"), bbox(-123, 37, -122, 38), \"latlon\")",
        )
        .unwrap();
        let o = optimize(&e, &cat);
        // Restriction stays above the stretch (semantics would change
        // otherwise: the stretch statistics must cover the full frame).
        match &o {
            Expr::RestrictSpace { input, .. } => {
                assert!(matches!(**input, Expr::Stretch { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn optimized_and_unoptimized_agree_on_output() {
        let cat = catalog();
        let planner = crate::query::Planner::new(&cat);
        let queries = [
            "restrict_space(scale(add(g1, g2), 0.5, 0), bbox(-123, 37, -121, 39), \"latlon\")",
            "restrict_space(ndvi(g1, g2), bbox(-123.5, 36.5, -121, 39), \"latlon\")",
            "restrict_time(restrict_space(sub(g1, g2), bbox(-124, 36, -122, 38), \"latlon\"),
                           interval(none, none))",
        ];
        for q in queries {
            let e = parse_query(q).unwrap();
            let o = optimize(&e, &cat);
            let mut base = planner.build(&e).unwrap();
            let mut opt = planner.build(&o).unwrap();
            let mut a = crate::model::drain_points_of(&mut base);
            let mut b = crate::model::drain_points_of(&mut opt);
            a.sort_by_key(|p| (p.cell.row, p.cell.col));
            b.sort_by_key(|p| (p.cell.row, p.cell.col));
            assert_eq!(a.len(), b.len(), "{q}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.cell, y.cell, "{q}");
                assert!((x.value - y.value).abs() < 1e-6, "{q}");
            }
        }
    }
}
