//! Catalog and physical planner.
//!
//! The planner turns an [`Expr`] into a runnable operator pipeline — the
//! "Parser → Optimization → Execution" path of Fig. 3. Pipelines are
//! normalized to `f32` pixels ([`BoxedF32Stream`]); the operator library
//! itself stays generic for direct users.

use super::ast::Expr;
use crate::error::{CoreError, Result};
use crate::model::{BoxedF32Stream, GeoStream, StreamSchema};
use crate::obs::{PipelineObs, TracedStream};
use crate::ops::{
    Compose, Delay, Downsample, FocalTransform, JoinStrategy, Magnify, MapTransform, Orient,
    Reproject, ReprojectConfig, Shed, SpatialAggregate, SpatialRestrict, StretchTransform,
    TemporalAggregate, TemporalRestrict, ValueRestrict,
};
use geostreams_geo::{map_region, Crs, Region};
use std::collections::HashMap;
use std::fmt;

/// Factory producing a fresh instance of a named source stream.
pub type SourceFactory = Box<dyn Fn() -> BoxedF32Stream + Send + Sync>;

/// The stream catalog: named sources with schemas (the §4 "stream
/// generator" registry).
#[derive(Default)]
pub struct Catalog {
    sources: HashMap<String, (StreamSchema, SourceFactory)>,
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog").field("sources", &self.names()).finish()
    }
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source; replaces any previous entry of the same name.
    pub fn register(
        &mut self,
        schema: StreamSchema,
        factory: impl Fn() -> BoxedF32Stream + Send + Sync + 'static,
    ) {
        self.sources.insert(schema.name.clone(), (schema, Box::new(factory)));
    }

    /// Schema of a registered source.
    pub fn schema(&self, name: &str) -> Option<&StreamSchema> {
        self.sources.get(name).map(|(s, _)| s)
    }

    /// Opens a fresh instance of a source stream.
    pub fn open(&self, name: &str) -> Result<BoxedF32Stream> {
        self.sources
            .get(name)
            .map(|(_, f)| f())
            .ok_or_else(|| CoreError::UnknownSource(name.to_string()))
    }

    /// Registered source names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.sources.keys().cloned().collect();
        v.sort();
        v
    }

    /// The output CRS of an expression over this catalog.
    pub fn crs_of(&self, expr: &Expr) -> Result<Crs> {
        match expr {
            Expr::Source(name) => self
                .schema(name)
                .map(|s| s.crs)
                .ok_or_else(|| CoreError::UnknownSource(name.clone())),
            Expr::Reproject { to, .. } => Ok(*to),
            Expr::Compose { left, .. } => self.crs_of(left),
            Expr::Ndvi { nir, .. } => self.crs_of(nir),
            Expr::RestrictSpace { input, .. }
            | Expr::RestrictTime { input, .. }
            | Expr::RestrictValue { input, .. }
            | Expr::MapValue { input, .. }
            | Expr::Stretch { input, .. }
            | Expr::Focal { input, .. }
            | Expr::Orient { input, .. }
            | Expr::Magnify { input, .. }
            | Expr::Downsample { input, .. }
            | Expr::Shed { input, .. }
            | Expr::Delay { input, .. }
            | Expr::AggTime { input, .. }
            | Expr::AggSpace { input, .. } => self.crs_of(input),
        }
    }
}

/// Physical planner over a catalog.
#[derive(Debug)]
pub struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    /// Creates a planner.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog }
    }

    /// Builds a runnable pipeline from an expression.
    pub fn build(&self, expr: &Expr) -> Result<BoxedF32Stream> {
        self.build_inner(expr, None)
    }

    /// Builds a pipeline with every operator (sources included) wrapped
    /// in a [`TracedStream`], so the resulting
    /// [`RunReport`](crate::exec::RunReport) carries per-op pull/frame
    /// latency histograms and `obs.trace` receives boundary events.
    ///
    /// When `obs.recorder` is set, every wrapper additionally opens a
    /// [`Span`](crate::obs::Span) chained under `obs.parent`, giving the
    /// flight recorder a parent-linked tree of operator spans. Source
    /// factories learn their parent via
    /// [`FlightRecorder::build_parent`](crate::obs::FlightRecorder),
    /// which is set to the wrapping span's id just before each
    /// `catalog.open`.
    pub fn build_traced(&self, expr: &Expr, obs: &PipelineObs) -> Result<BoxedF32Stream> {
        self.build_inner(expr, Some(obs))
    }

    fn build_inner(&self, expr: &Expr, obs: Option<&PipelineObs>) -> Result<BoxedF32Stream> {
        let Some(obs) = obs else {
            return self.build_node(expr, None);
        };
        match &obs.recorder {
            Some(rec) => {
                // Reserve this wrapper's span id *before* recursing so
                // child operators (built inside-out) can chain under it.
                let span_id = rec.alloc_span();
                let child_obs = obs.clone().under(span_id);
                rec.set_build_parent(span_id);
                let stream = self.build_node(expr, Some(&child_obs))?;
                let guard = rec.begin_with_id(span_id, &stream.schema().name, obs.parent);
                Ok(Box::new(TracedStream::with_span(stream, obs.clone(), Some(guard))))
            }
            None => {
                let stream = self.build_node(expr, Some(obs))?;
                Ok(Box::new(TracedStream::new(stream, obs.clone())))
            }
        }
    }

    fn build_node(&self, expr: &Expr, obs: Option<&PipelineObs>) -> Result<BoxedF32Stream> {
        let build = |input: &Expr| self.build_inner(input, obs);
        Ok(match expr {
            Expr::Source(name) => self.catalog.open(name)?,
            Expr::RestrictSpace { input, region, crs } => {
                let stream = build(input)?;
                let stream_crs = stream.schema().crs;
                let region = if *crs == stream_crs {
                    region.clone()
                } else {
                    // Map the region into the stream's CRS (conservative
                    // bbox; §3.4: "R needs to be mapped to the coordinate
                    // system C").
                    let rect = map_region(region, crs, &stream_crs, 16)?;
                    Region::Rect(rect)
                };
                Box::new(SpatialRestrict::new(stream, region))
            }
            Expr::RestrictTime { input, times } => {
                Box::new(TemporalRestrict::new(build(input)?, times.clone()))
            }
            Expr::RestrictValue { input, ranges } => {
                Box::new(ValueRestrict::ranges(build(input)?, ranges.clone()))
            }
            Expr::MapValue { input, func } => {
                Box::new(MapTransform::<_, f32>::new(build(input)?, *func))
            }
            Expr::Stretch { input, mode, scope } => {
                Box::new(StretchTransform::new(build(input)?, *mode, *scope))
            }
            Expr::Focal { input, func, k } => {
                Box::new(FocalTransform::new(build(input)?, *func, *k))
            }
            Expr::Orient { input, orientation } => {
                Box::new(Orient::new(build(input)?, *orientation))
            }
            Expr::Magnify { input, k } => {
                if *k == 0 {
                    return Err(CoreError::InvalidParameter("magnify factor 0".into()));
                }
                Box::new(Magnify::new(build(input)?, *k))
            }
            Expr::Downsample { input, k } => {
                if *k == 0 {
                    return Err(CoreError::InvalidParameter("downsample factor 0".into()));
                }
                Box::new(Downsample::new(build(input)?, *k))
            }
            Expr::Reproject { input, to, kernel } => {
                let cfg = ReprojectConfig::new(*to).kernel(*kernel);
                Box::new(Reproject::new(build(input)?, cfg)?)
            }
            Expr::Compose { left, right, op } => {
                Box::new(Compose::new(build(left)?, build(right)?, *op, JoinStrategy::Hash)?)
            }
            Expr::Ndvi { nir, vis } => {
                Box::new(crate::ops::macro_ops::ndvi(build(nir)?, build(vis)?)?)
            }
            Expr::Shed { input, policy, stride } => {
                if *stride == 0 {
                    return Err(CoreError::InvalidParameter("shed stride 0".into()));
                }
                Box::new(Shed::new(build(input)?, *policy, *stride))
            }
            Expr::Delay { input, d } => {
                if *d == 0 {
                    return Err(CoreError::InvalidParameter("delay of 0 sectors".into()));
                }
                Box::new(Delay::new(build(input)?, *d))
            }
            Expr::AggTime { input, func, window } => {
                if *window == 0 {
                    return Err(CoreError::InvalidParameter("aggregate window 0".into()));
                }
                Box::new(TemporalAggregate::new(build(input)?, *func, *window as usize))
            }
            Expr::AggSpace { input, func, region } => {
                Box::new(SpatialAggregate::new(build(input)?, *func, region.clone()))
            }
        })
    }

    /// Renders a human-readable plan tree with per-node cost estimates —
    /// the "EXPLAIN" of the prototype.
    pub fn explain(&self, expr: &Expr) -> Result<String> {
        let mut out = String::new();
        self.explain_rec(expr, 0, &mut out)?;
        Ok(out)
    }

    fn explain_rec(&self, expr: &Expr, depth: usize, out: &mut String) -> Result<()> {
        use std::fmt::Write as _;
        let est = super::cost::estimate(expr, self.catalog)?;
        let indent = "  ".repeat(depth);
        let label = match expr {
            Expr::Source(name) => format!("source {name}"),
            Expr::RestrictSpace { region, crs, .. } => {
                let b = region.bbox();
                format!(
                    "restrict_space [{:.6}, {:.6}] x [{:.6}, {:.6}] @ {crs}",
                    b.x_min, b.x_max, b.y_min, b.y_max
                )
            }
            Expr::RestrictTime { .. } => "restrict_time".to_string(),
            Expr::RestrictValue { ranges, .. } => format!("restrict_value {ranges:?}"),
            Expr::MapValue { func, .. } => format!("map_value {func:?}"),
            Expr::Stretch { mode, scope, .. } => format!("stretch {mode:?} {scope:?}"),
            Expr::Focal { func, k, .. } => format!("focal {} {k}x{k}", func.name()),
            Expr::Orient { orientation, .. } => format!("orient {}", orientation.name()),
            Expr::Magnify { k, .. } => format!("magnify x{k}"),
            Expr::Downsample { k, .. } => format!("downsample 1/{k}"),
            Expr::Reproject { to, kernel, .. } => format!("reproject -> {to} ({kernel:?})"),
            Expr::Compose { op, .. } => format!("compose {}", op.symbol()),
            Expr::Ndvi { .. } => "ndvi (fused macro)".to_string(),
            Expr::Shed { policy, stride, .. } => format!("shed {policy:?} 1/{stride}"),
            Expr::Delay { d, .. } => format!("delay {d}"),
            Expr::AggTime { func, window, .. } => format!("agg_time {func:?} w={window}"),
            Expr::AggSpace { func, .. } => format!("agg_space {func:?}"),
        };
        // Writing to a String cannot fail.
        let _ = writeln!(
            out,
            "{indent}{label}  [out≈{:.0} pts/sector, work≈{:.0}, buf≈{:.0} B]",
            est.points_out, est.work, est.buffer_bytes
        );
        match expr {
            Expr::Source(_) => {}
            Expr::Compose { left, right, .. } => {
                self.explain_rec(left, depth + 1, out)?;
                self.explain_rec(right, depth + 1, out)?;
            }
            Expr::Ndvi { nir, vis } => {
                self.explain_rec(nir, depth + 1, out)?;
                self.explain_rec(vis, depth + 1, out)?;
            }
            Expr::RestrictSpace { input, .. }
            | Expr::RestrictTime { input, .. }
            | Expr::RestrictValue { input, .. }
            | Expr::MapValue { input, .. }
            | Expr::Stretch { input, .. }
            | Expr::Focal { input, .. }
            | Expr::Orient { input, .. }
            | Expr::Magnify { input, .. }
            | Expr::Downsample { input, .. }
            | Expr::Reproject { input, .. }
            | Expr::Shed { input, .. }
            | Expr::Delay { input, .. }
            | Expr::AggTime { input, .. }
            | Expr::AggSpace { input, .. } => self.explain_rec(input, depth + 1, out)?,
        }
        Ok(())
    }

    /// Parses, optionally optimizes, and builds a query in one step.
    pub fn plan_text(&self, text: &str, optimize: bool) -> Result<BoxedF32Stream> {
        let expr = super::parser::parse_query(text)?;
        let expr = if optimize { super::optimizer::optimize(&expr, self.catalog) } else { expr };
        self.build(&expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{LatticeGeoref, Rect};

    fn catalog() -> Catalog {
        let lattice =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 16, 16);
        let mut cat = Catalog::new();
        for (name, bump) in [("g1", 8.0), ("g2", 2.0)] {
            let mut schema = StreamSchema::new(name, Crs::LatLon);
            schema.sector_lattice = Some(lattice);
            schema.value_range = (0.0, 40.0);
            let name = name.to_string();
            cat.register(schema, move || {
                let s: VecStream<f32> = VecStream::single_sector(&name, lattice, 0, move |c, r| {
                    f64::from(c + r) + bump
                })
                .with_value_range(0.0, 40.0);
                Box::new(s)
            });
        }
        cat
    }

    #[test]
    fn catalog_open_and_schema() {
        let cat = catalog();
        assert!(cat.schema("g1").is_some());
        assert!(cat.schema("nope").is_none());
        assert!(cat.open("g1").is_ok());
        assert!(matches!(cat.open("nope"), Err(CoreError::UnknownSource(_))));
        assert_eq!(cat.names(), vec!["g1".to_string(), "g2".to_string()]);
    }

    #[test]
    fn crs_of_tracks_reprojection() {
        let cat = catalog();
        let e = crate::query::parse_query("reproject(g1, \"utm:10N\")").unwrap();
        assert_eq!(cat.crs_of(&e).unwrap(), Crs::utm(10, true));
        let e = crate::query::parse_query("ndvi(g1, g2)").unwrap();
        assert_eq!(cat.crs_of(&e).unwrap(), Crs::LatLon);
    }

    #[test]
    fn plans_and_runs_simple_query() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let mut pipe = planner.plan_text("restrict_value(scale(g1, 2, 0), 20, 30)", false).unwrap();
        let pts = pipe.drain_points();
        assert!(!pts.is_empty());
        assert!(pts.iter().all(|p| (20.0..=30.0).contains(&p.value)));
    }

    #[test]
    fn plans_and_runs_ndvi_query() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let mut pipe = planner.plan_text("ndvi(g1, g2)", false).unwrap();
        let pts = pipe.drain_points();
        assert_eq!(pts.len(), 256);
        assert!(pts.iter().all(|p| p.value > 0.0 && p.value < 1.0));
    }

    #[test]
    fn cross_crs_region_is_mapped_at_plan_time() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        // Region given in UTM, stream in lat/lon.
        let utm = Crs::utm(10, true);
        let sw = utm.forward(geostreams_geo::Coord::new(-123.0, 37.0)).unwrap();
        let ne = utm.forward(geostreams_geo::Coord::new(-122.0, 38.0)).unwrap();
        let q = format!(
            "restrict_space(g1, bbox({}, {}, {}, {}), \"utm:10N\")",
            sw.x, sw.y, ne.x, ne.y
        );
        let mut pipe = planner.plan_text(&q, false).unwrap();
        let pts = pipe.drain_points();
        assert!(!pts.is_empty());
        assert!(pts.len() < 256, "restriction must filter something");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        assert!(planner.plan_text("magnify(g1, 0)", false).is_err());
        assert!(planner.plan_text("agg_time(g1, \"mean\", 0)", false).is_err());
        assert!(planner.plan_text("unknown_source", false).is_err());
    }

    #[test]
    fn explain_renders_the_plan_tree() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let e = crate::query::parse_query(
            "restrict_space(reproject(ndvi(g1, g2), \"utm:10N\"), bbox(0, 0, 1, 1), \"utm:10N\")",
        )
        .unwrap();
        let text = planner.explain(&e).unwrap();
        assert!(text.contains("restrict_space"));
        assert!(text.contains("reproject -> utm:10N"));
        assert!(text.contains("ndvi (fused macro)"));
        assert!(text.contains("source g1"));
        // Indentation shows nesting: source is deeper than the root.
        let root_line = text.lines().next().unwrap();
        let src_line = text.lines().find(|l| l.contains("source g1")).unwrap();
        assert!(
            src_line.len() - src_line.trim_start().len()
                > root_line.len() - root_line.trim_start().len()
        );
    }

    #[test]
    fn the_papers_example_query_plans_end_to_end() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        // ((f_val((G1 − G2) ⊘ (G2 + G1))) ∘ f_UTM)|R  — region in UTM.
        let q = "restrict_space(
                   reproject(normalize(div(sub(g1, g2), add(g2, g1)), -1, 1), \"utm:10N\"),
                   bbox(300000, 4000000, 800000, 4500000), \"utm:10N\")";
        for optimize in [false, true] {
            let mut pipe = planner.plan_text(q, optimize).unwrap();
            let pts = pipe.drain_points();
            assert!(!pts.is_empty(), "optimize={optimize}");
            // Values stay in the normalized [0, 1] band.
            assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.value)));
        }
    }
}
