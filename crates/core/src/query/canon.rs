//! Plan canonicalization: the structural identity under which the DSMS
//! shares work across queries (ISSUE 9, building on §3.4's multi-query
//! optimization).
//!
//! Two textually different queries frequently denote the same pipeline
//! — `add(a, b)` vs `add(b, a)`, `restrict_value(g, 0, 1)` written with
//! its ranges in a different order, an `instants(...)` time set listing
//! the same timestamps twice. [`canonicalize`] rewrites an (already
//! optimized) [`Expr`] into a normal form in which such pairs become
//! structurally equal, and [`canonical_key`] hashes that form into the
//! 64-bit key the shared-plan registry groups subscriptions by.
//!
//! Every rewrite here is **bit-exact**: the canonical expression, when
//! executed, produces byte-identical output to the input expression.
//! That is a stronger bar than the optimizer's semantics-preservation
//! (which may, e.g., re-associate float arithmetic behind a fused
//! macro) and it is what makes execution-level sharing sound — a
//! subscriber served from a shared canonical pipeline must be unable to
//! tell it apart from a private one. Concretely:
//!
//! * commutative γ compositions (`add`, `mul`, `sup`, `inf`) order
//!   their operands by canonical text — IEEE-754 `+`, `*`, `max`, `min`
//!   are commutative on the non-NaN values the pipelines carry;
//! * `restrict_value` range lists are sorted and exact duplicates
//!   dropped (membership in a union of ranges is order-independent);
//! * `instants(...)` time sets are sorted and deduplicated;
//! * exact identities disappear: `scale(E, 1, 0)`, `magnify(E, 1)`,
//!   `downsample(E, 1)`, `shed(E, _, 1)`, and `abs(abs(E))` → `abs(E)`.
//!
//! Float-reassociating folds (e.g. `gamma(E, 1)` → `E`, which would
//! swap a `powf(v, 1.0)` for `v`) are deliberately *not* performed.

use super::ast::Expr;
use crate::model::TimeSet;
use crate::ops::{GammaOp, ValueFunc};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string — the workspace's standard content hash
/// (same function the bench digests use), applied to the canonical
/// textual form.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// True for γ operators that commute bit-exactly on non-NaN floats.
fn commutes(op: GammaOp) -> bool {
    matches!(op, GammaOp::Add | GammaOp::Mul | GammaOp::Sup | GammaOp::Inf)
}

/// Rewrites an expression into its canonical form (see module docs).
/// Idempotent: `canonicalize(&canonicalize(e)) == canonicalize(e)`.
pub fn canonicalize(expr: &Expr) -> Expr {
    match expr {
        Expr::Source(name) => Expr::Source(name.clone()),
        Expr::RestrictSpace { input, region, crs } => Expr::RestrictSpace {
            input: Box::new(canonicalize(input)),
            region: region.clone(),
            crs: *crs,
        },
        Expr::RestrictTime { input, times } => Expr::RestrictTime {
            input: Box::new(canonicalize(input)),
            times: canonical_times(times),
        },
        Expr::RestrictValue { input, ranges } => {
            let mut ranges = ranges.clone();
            // Total order via bit patterns so NaN bounds cannot wedge
            // the sort; membership in a union of ranges is
            // order-independent, so reordering is observation-free.
            ranges.sort_by_key(|&(lo, hi)| (lo.to_bits(), hi.to_bits()));
            ranges
                .dedup_by(|a, b| a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits());
            Expr::RestrictValue { input: Box::new(canonicalize(input)), ranges }
        }
        Expr::MapValue { input, func } => {
            let input = canonicalize(input);
            match func {
                // Exact identities: applying them is a bit-exact no-op.
                ValueFunc::Linear { scale, offset } if *scale == 1.0 && *offset == 0.0 => input,
                // `abs` is idempotent bit-exactly.
                ValueFunc::Abs if matches!(&input, Expr::MapValue { func: ValueFunc::Abs, .. }) => {
                    input
                }
                _ => Expr::MapValue { input: Box::new(input), func: *func },
            }
        }
        Expr::Stretch { input, mode, scope } => {
            Expr::Stretch { input: Box::new(canonicalize(input)), mode: *mode, scope: *scope }
        }
        Expr::Focal { input, func, k } => {
            Expr::Focal { input: Box::new(canonicalize(input)), func: *func, k: *k }
        }
        Expr::Orient { input, orientation } => {
            Expr::Orient { input: Box::new(canonicalize(input)), orientation: *orientation }
        }
        Expr::Magnify { input, k } => {
            let input = canonicalize(input);
            if *k == 1 {
                input
            } else {
                Expr::Magnify { input: Box::new(input), k: *k }
            }
        }
        Expr::Downsample { input, k } => {
            let input = canonicalize(input);
            if *k == 1 {
                input
            } else {
                Expr::Downsample { input: Box::new(input), k: *k }
            }
        }
        Expr::Reproject { input, to, kernel } => {
            Expr::Reproject { input: Box::new(canonicalize(input)), to: *to, kernel: *kernel }
        }
        Expr::Compose { left, right, op } => {
            let l = canonicalize(left);
            let r = canonicalize(right);
            if commutes(*op) && r.to_string() < l.to_string() {
                Expr::Compose { left: Box::new(r), right: Box::new(l), op: *op }
            } else {
                Expr::Compose { left: Box::new(l), right: Box::new(r), op: *op }
            }
        }
        Expr::Ndvi { nir, vis } => {
            Expr::Ndvi { nir: Box::new(canonicalize(nir)), vis: Box::new(canonicalize(vis)) }
        }
        Expr::Shed { input, policy, stride } => {
            let input = canonicalize(input);
            if *stride == 1 {
                // Keeping 1 of every 1 passes everything through.
                input
            } else {
                Expr::Shed { input: Box::new(input), policy: *policy, stride: *stride }
            }
        }
        Expr::Delay { input, d } => Expr::Delay { input: Box::new(canonicalize(input)), d: *d },
        Expr::AggTime { input, func, window } => {
            Expr::AggTime { input: Box::new(canonicalize(input)), func: *func, window: *window }
        }
        Expr::AggSpace { input, func, region } => Expr::AggSpace {
            input: Box::new(canonicalize(input)),
            func: *func,
            region: region.clone(),
        },
    }
}

/// Canonical form of a timestamp set: `instants` sorted + deduplicated
/// (set membership is order-independent); intervals and recurrences are
/// already canonical.
fn canonical_times(times: &TimeSet) -> TimeSet {
    match times {
        TimeSet::Instants(v) => {
            let mut v = v.clone();
            v.sort_unstable();
            v.dedup();
            TimeSet::Instants(v)
        }
        other => other.clone(),
    }
}

/// The canonical textual form of an expression: [`canonicalize`]
/// rendered through the re-parsable [`Expr`] `Display` syntax. Two
/// expressions share a pipeline iff their canonical texts are equal.
pub fn canonical_text(expr: &Expr) -> String {
    canonicalize(expr).to_string()
}

/// 64-bit structural key of an expression's canonical form (FNV-1a of
/// [`canonical_text`]). The shared-plan registry keys plans by this
/// value and confirms candidate matches against the canonical text, so
/// a hash collision can never alias two different plans.
pub fn canonical_key(expr: &Expr) -> u64 {
    fnv1a(canonical_text(expr).as_bytes())
}

/// Renders a canonical key the way the metrics labels and the `/share`
/// endpoint do: 16 lowercase hex digits.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn canon(q: &str) -> String {
        canonical_text(&parse_query(q).unwrap())
    }

    fn key(q: &str) -> u64 {
        canonical_key(&parse_query(q).unwrap())
    }

    #[test]
    fn commutative_compositions_share_a_key() {
        assert_eq!(key("add(g1, g2)"), key("add(g2, g1)"));
        assert_eq!(key("mul(g1, g2)"), key("mul(g2, g1)"));
        assert_eq!(key("sup(g1, g2)"), key("sup(g2, g1)"));
        assert_eq!(key("inf(g1, g2)"), key("inf(g2, g1)"));
    }

    #[test]
    fn non_commutative_compositions_do_not() {
        assert_ne!(key("sub(g1, g2)"), key("sub(g2, g1)"));
        assert_ne!(key("div(g1, g2)"), key("div(g2, g1)"));
        assert_ne!(key("ndvi(g1, g2)"), key("ndvi(g2, g1)"));
    }

    #[test]
    fn value_ranges_and_instants_normalize() {
        assert_eq!(key("restrict_value(g1, 5, 9, 0, 1)"), key("restrict_value(g1, 0, 1, 5, 9)"));
        assert_eq!(key("restrict_value(g1, 0, 1, 0, 1)"), key("restrict_value(g1, 0, 1)"));
        assert_eq!(
            key("restrict_time(g1, instants(3, 1, 2, 1))"),
            key("restrict_time(g1, instants(1, 2, 3))")
        );
    }

    #[test]
    fn exact_identities_fold_away() {
        assert_eq!(canon("scale(g1, 1, 0)"), "g1");
        assert_eq!(canon("magnify(g1, 1)"), "g1");
        assert_eq!(canon("downsample(g1, 1)"), "g1");
        assert_eq!(canon("shed(g1, \"points\", 1)"), "g1");
        assert_eq!(canon("abs(abs(g1))"), "abs(g1)");
        // Inexact "identities" stay: powf(v, 1.0) is not guaranteed
        // bit-equal to v, so gamma(E, 1) must execute as written.
        assert_eq!(canon("gamma(g1, 1)"), "gamma(g1, 1)");
    }

    #[test]
    fn canonicalize_is_idempotent() {
        for q in [
            "add(scale(g2, 1, 0), g1)",
            "restrict_value(add(g2, g1), 5, 9, 0, 1)",
            "ndvi(g1, downsample(g2, 4))",
            "sup(inf(g2, g1), inf(g1, g2))",
        ] {
            let once = canonicalize(&parse_query(q).unwrap());
            assert_eq!(once, canonicalize(&once), "{q}");
        }
    }

    #[test]
    fn nested_commutativity_orders_recursively() {
        // Both operands canonicalize to inf(g1, g2), so the outer sup
        // sees equal children regardless of spelling.
        assert_eq!(key("sup(inf(g2, g1), inf(g1, g2))"), key("sup(inf(g1, g2), inf(g2, g1))"));
    }

    #[test]
    fn distinct_plans_keep_distinct_keys() {
        let keys = [
            key("g1"),
            key("g2"),
            key("scale(g1, 2, 0)"),
            key("scale(g1, 2, 1)"),
            key("downsample(g1, 4)"),
            key("add(g1, g2)"),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn key_hex_is_stable_16_digits() {
        let h = key_hex(canonical_key(&parse_query("g1").unwrap()));
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
