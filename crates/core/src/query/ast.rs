//! The query algebra's abstract syntax (§3 / §3.4).
//!
//! The algebra is closed, so a query is simply an expression tree whose
//! leaves are named source streams. The §3.4 running example
//!
//! ```text
//! ((f_val((G₁ − G₂) ⊘ (G₂ + G₁))) ∘ f_UTM)|R
//! ```
//!
//! renders in the textual language as
//!
//! ```text
//! restrict_space(
//!   reproject(
//!     normalize(div(sub(g1, g2), add(g2, g1)), -1, 1),
//!     "utm:10N"),
//!   bbox(...), "utm:10N")
//! ```

use crate::model::TimeSet;
use crate::ops::{
    AggFunc, FocalFunc, GammaOp, Orientation, ShedPolicy, StretchMode, StretchScope, ValueFunc,
};
use geostreams_geo::{Crs, Region};
use geostreams_raster::resample::Kernel;
use serde::{Deserialize, Serialize};

/// A query expression over GeoStreams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A named source stream from the catalog.
    Source(String),
    /// Spatial restriction `E|R`; `crs` is the coordinate system the
    /// region's coordinates are expressed in.
    RestrictSpace {
        /// Input expression.
        input: Box<Expr>,
        /// Restriction region.
        region: Region,
        /// CRS of the region coordinates.
        crs: Crs,
    },
    /// Temporal restriction `E|T`.
    RestrictTime {
        /// Input expression.
        input: Box<Expr>,
        /// Timestamp set.
        times: TimeSet,
    },
    /// Value restriction `E|V` (inclusive ranges).
    RestrictValue {
        /// Input expression.
        input: Box<Expr>,
        /// Accepted value ranges.
        ranges: Vec<(f64, f64)>,
    },
    /// Point-wise value transform `f_val ∘ E`.
    MapValue {
        /// Input expression.
        input: Box<Expr>,
        /// The function.
        func: ValueFunc,
    },
    /// Frame/image-scoped stretch.
    Stretch {
        /// Input expression.
        input: Box<Expr>,
        /// Stretch mode.
        mode: StretchMode,
        /// Buffering scope.
        scope: StretchScope,
    },
    /// Neighborhood (focal) operation over a `k × k` window.
    Focal {
        /// Input expression.
        input: Box<Expr>,
        /// Focal function.
        func: FocalFunc,
        /// Kernel size (odd).
        k: u32,
    },
    /// Exact orientation change (rotation/mirror).
    Orient {
        /// Input expression.
        input: Box<Expr>,
        /// The orientation.
        orientation: Orientation,
    },
    /// k× magnification.
    Magnify {
        /// Input expression.
        input: Box<Expr>,
        /// Factor.
        k: u32,
    },
    /// 1/k downsampling.
    Downsample {
        /// Input expression.
        input: Box<Expr>,
        /// Factor.
        k: u32,
    },
    /// Re-projection `E ∘ f_crs`.
    Reproject {
        /// Input expression.
        input: Box<Expr>,
        /// Target CRS.
        to: Crs,
        /// Interpolation kernel.
        kernel: Kernel,
    },
    /// Binary composition `E₁ γ E₂`.
    Compose {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// The γ operator.
        op: GammaOp,
    },
    /// The NDVI macro operator (fused normalized difference).
    Ndvi {
        /// Near-infrared band.
        nir: Box<Expr>,
        /// Visible band.
        vis: Box<Expr>,
    },
    /// Load shedding: keep 1/stride of the stream.
    Shed {
        /// Input expression.
        input: Box<Expr>,
        /// Shedding policy.
        policy: ShedPolicy,
        /// Keep one of every `stride` rows/points.
        stride: u32,
    },
    /// Temporal shift: the image from `d` sectors ago, re-stamped with
    /// the current timestamp (enables change detection).
    Delay {
        /// Input expression.
        input: Box<Expr>,
        /// Shift in sectors.
        d: u32,
    },
    /// Sliding-window temporal aggregate.
    AggTime {
        /// Input expression.
        input: Box<Expr>,
        /// Aggregate function.
        func: AggFunc,
        /// Window length in images.
        window: u32,
    },
    /// Per-sector spatial aggregate over a region.
    AggSpace {
        /// Input expression.
        input: Box<Expr>,
        /// Aggregate function.
        func: AggFunc,
        /// Region of interest (stream CRS).
        region: Region,
    },
}

impl Expr {
    /// Convenience constructor for a source leaf.
    pub fn source(name: impl Into<String>) -> Expr {
        Expr::Source(name.into())
    }

    /// The names of all source streams referenced by the expression.
    pub fn source_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Source(name) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Source(_) => {}
            Expr::RestrictSpace { input, .. }
            | Expr::RestrictTime { input, .. }
            | Expr::RestrictValue { input, .. }
            | Expr::MapValue { input, .. }
            | Expr::Stretch { input, .. }
            | Expr::Focal { input, .. }
            | Expr::Orient { input, .. }
            | Expr::Magnify { input, .. }
            | Expr::Downsample { input, .. }
            | Expr::Reproject { input, .. }
            | Expr::Shed { input, .. }
            | Expr::Delay { input, .. }
            | Expr::AggTime { input, .. }
            | Expr::AggSpace { input, .. } => input.visit(f),
            Expr::Compose { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Ndvi { nir, vis } => {
                nir.visit(f);
                vis.visit(f);
            }
        }
    }

    /// Number of operator nodes (excluding sources).
    pub fn operator_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if !matches!(e, Expr::Source(_)) {
                n += 1;
            }
        });
        n
    }
}

fn fmt_region(region: &Region) -> String {
    match region {
        Region::Rect(r) => {
            format!("bbox({}, {}, {}, {})", r.x_min, r.y_min, r.x_max, r.y_max)
        }
        Region::Polygon(p) => {
            let coords: Vec<String> =
                p.vertices.iter().map(|v| format!("{}, {}", v.x, v.y)).collect();
            format!("polygon({})", coords.join(", "))
        }
        other => {
            // Fall back to the bounding box for the remaining shapes.
            let b = other.bbox();
            format!("bbox({}, {}, {}, {})", b.x_min, b.y_min, b.x_max, b.y_max)
        }
    }
}

fn fmt_times(times: &TimeSet) -> String {
    match times {
        TimeSet::Instants(v) => {
            let items: Vec<String> = v.iter().map(|t| t.to_string()).collect();
            format!("instants({})", items.join(", "))
        }
        TimeSet::Interval { lo, hi } => {
            let lo = lo.map_or("none".to_string(), |v| v.to_string());
            let hi = hi.map_or("none".to_string(), |v| v.to_string());
            format!("interval({lo}, {hi})")
        }
        TimeSet::Recurring { period, offset, len } => format!("every({period}, {offset}, {len})"),
    }
}

impl std::fmt::Display for Expr {
    /// Renders the canonical textual form, re-parsable by
    /// [`crate::query::parse_query`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Source(name) => write!(f, "{name}"),
            Expr::RestrictSpace { input, region, crs } => {
                write!(f, "restrict_space({input}, {}, \"{crs}\")", fmt_region(region))
            }
            Expr::RestrictTime { input, times } => {
                write!(f, "restrict_time({input}, {})", fmt_times(times))
            }
            Expr::RestrictValue { input, ranges } => {
                let items: Vec<String> =
                    ranges.iter().map(|(lo, hi)| format!("{lo}, {hi}")).collect();
                write!(f, "restrict_value({input}, {})", items.join(", "))
            }
            Expr::MapValue { input, func } => match func {
                ValueFunc::Linear { scale, offset } => {
                    write!(f, "scale({input}, {scale}, {offset})")
                }
                ValueFunc::Normalize { lo, hi } => write!(f, "normalize({input}, {lo}, {hi})"),
                ValueFunc::Clamp { lo, hi } => write!(f, "clamp({input}, {lo}, {hi})"),
                ValueFunc::Abs => write!(f, "abs({input})"),
                ValueFunc::Gamma { g } => write!(f, "gamma({input}, {g})"),
                ValueFunc::Threshold { t } => write!(f, "threshold({input}, {t})"),
            },
            Expr::Stretch { input, mode, scope } => {
                let mode_s = match mode {
                    StretchMode::Linear { .. } => "linear",
                    StretchMode::HistEq { .. } => "histeq",
                    StretchMode::Gaussian { .. } => "gauss",
                };
                let scope_s = match scope {
                    StretchScope::Frame => "frame",
                    StretchScope::Image => "image",
                };
                write!(f, "stretch({input}, \"{mode_s}\", \"{scope_s}\")")
            }
            Expr::Focal { input, func, k } => {
                write!(f, "focal({input}, \"{}\", {k})", func.name())
            }
            Expr::Orient { input, orientation } => {
                write!(f, "orient({input}, \"{}\")", orientation.name())
            }
            Expr::Magnify { input, k } => write!(f, "magnify({input}, {k})"),
            Expr::Downsample { input, k } => write!(f, "downsample({input}, {k})"),
            Expr::Reproject { input, to, kernel } => {
                let k = match kernel {
                    Kernel::Nearest => "nearest",
                    Kernel::Bilinear => "bilinear",
                    Kernel::Bicubic => "bicubic",
                };
                write!(f, "reproject({input}, \"{to}\", \"{k}\")")
            }
            Expr::Compose { left, right, op } => {
                let name = match op {
                    GammaOp::Add => "add",
                    GammaOp::Sub => "sub",
                    GammaOp::Mul => "mul",
                    GammaOp::Div => "div",
                    GammaOp::Sup => "sup",
                    GammaOp::Inf => "inf",
                    GammaOp::NormDiff => "normdiff",
                };
                write!(f, "{name}({left}, {right})")
            }
            Expr::Ndvi { nir, vis } => write!(f, "ndvi({nir}, {vis})"),
            Expr::Shed { input, policy, stride } => {
                let p = match policy {
                    ShedPolicy::Rows => "rows",
                    ShedPolicy::Points => "points",
                };
                write!(f, "shed({input}, \"{p}\", {stride})")
            }
            Expr::Delay { input, d } => write!(f, "delay({input}, {d})"),
            Expr::AggTime { input, func, window } => {
                write!(f, "agg_time({input}, \"{}\", {window})", agg_name(*func))
            }
            Expr::AggSpace { input, func, region } => {
                write!(f, "agg_space({input}, \"{}\", {})", agg_name(*func), fmt_region(region))
            }
        }
    }
}

fn agg_name(func: AggFunc) -> &'static str {
    match func {
        AggFunc::Mean => "mean",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Sum => "sum",
        AggFunc::Count => "count",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_geo::Rect;

    fn sample() -> Expr {
        Expr::RestrictSpace {
            input: Box::new(Expr::Ndvi {
                nir: Box::new(Expr::source("goes.b2")),
                vis: Box::new(Expr::source("goes.b1")),
            }),
            region: Region::Rect(Rect::new(-123.0, 37.0, -121.0, 39.0)),
            crs: Crs::LatLon,
        }
    }

    #[test]
    fn source_names_are_unique_in_order() {
        let e = Expr::Compose {
            left: Box::new(Expr::source("a")),
            right: Box::new(Expr::Compose {
                left: Box::new(Expr::source("b")),
                right: Box::new(Expr::source("a")),
                op: GammaOp::Add,
            }),
            op: GammaOp::Sub,
        };
        assert_eq!(e.source_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn operator_count_excludes_sources() {
        assert_eq!(sample().operator_count(), 2);
        assert_eq!(Expr::source("x").operator_count(), 0);
    }

    #[test]
    fn display_is_functional_syntax() {
        let text = sample().to_string();
        assert_eq!(
            text,
            "restrict_space(ndvi(goes.b2, goes.b1), bbox(-123, 37, -121, 39), \"latlon\")"
        );
    }

    #[test]
    fn serializes_to_json() {
        let e = sample();
        let json = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
