//! Spatio-temporal aggregates over raster streams.
//!
//! §6 of the paper: "We are also investigating the full integration of a
//! spatio-temporal aggregate operator for streaming image data. This
//! operator has been proposed in [27] (Zhang, Gertz, Aksoy, ACM-GIS
//! 2004)." This module implements that extension:
//!
//! * [`TemporalAggregate`] — per-cell aggregates over a sliding window of
//!   the last `W` images (sectors); its buffer is `W` grids, which
//!   experiment E6 sweeps;
//! * [`SpatialAggregate`] — one aggregate value per sector over a region
//!   of interest (O(1) state), emitted as a 1×1-lattice GeoStream so the
//!   algebra stays closed.

use crate::model::{
    Element, FrameEnd, FrameInfo, GeoStream, SectorEnd, SectorInfo, StreamSchema, Timestamp,
};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox, LatticeGeoref, Region};
use geostreams_raster::Pixel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Count of present points.
    Count,
}

impl AggFunc {
    /// Parses the textual name used by the query language.
    pub fn from_name(s: &str) -> Option<AggFunc> {
        Some(match s.to_ascii_lowercase().as_str() {
            "mean" | "avg" => AggFunc::Mean,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "sum" => AggFunc::Sum,
            "count" => AggFunc::Count,
            _ => return None,
        })
    }

    /// Reduces a slice of observations.
    pub fn reduce(self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        match self {
            AggFunc::Mean => values.iter().sum::<f64>() / values.len() as f64,
            AggFunc::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            AggFunc::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggFunc::Sum => values.iter().sum(),
            AggFunc::Count => values.len() as f64,
        }
    }
}

/// One buffered image of the sliding window.
struct WindowImage {
    values: Vec<f64>,
    present: Vec<bool>,
}

/// Sliding-window per-cell temporal aggregate: after each incoming image
/// (sector), emits an image whose cell values aggregate the last `W`
/// images at that cell.
pub struct TemporalAggregate<S: GeoStream> {
    input: S,
    func: AggFunc,
    window: usize,
    lattice: Option<LatticeGeoref>,
    current: Option<WindowImage>,
    history: VecDeque<WindowImage>,
    pending_sector: Option<SectorInfo>,
    queue: VecDeque<Element<f32>>,
    next_frame_id: u64,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> TemporalAggregate<S> {
    /// Creates the aggregate over a window of `window ≥ 1` images.
    pub fn new(input: S, func: AggFunc, window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one image");
        let schema = input.schema().renamed(format!("agg_time[{func:?} w={window}]"));
        TemporalAggregate {
            input,
            func,
            window,
            lattice: None,
            current: None,
            history: VecDeque::new(),
            pending_sector: None,
            queue: VecDeque::new(),
            next_frame_id: 0,
            stats: OpStats::default(),
            schema,
        }
    }

    fn emit_aggregate(&mut self, si_template: &SectorInfo) {
        let Some(lattice) = self.lattice else { return };
        let w = lattice.width as usize;
        let h = lattice.height as usize;
        self.queue.push_back(Element::SectorStart(SectorInfo { lattice, ..si_template.clone() }));
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        self.stats.frames_out += 1;
        self.queue.push_back(Element::FrameStart(FrameInfo {
            frame_id,
            sector_id: si_template.sector_id,
            timestamp: si_template.timestamp,
            cells: CellBox::full(lattice.width, lattice.height),
            synth_ns: crate::obs::now_ns(),
        }));
        let mut obs: Vec<f64> = Vec::with_capacity(self.window);
        for idx in 0..w * h {
            obs.clear();
            for img in &self.history {
                if img.present[idx] {
                    obs.push(img.values[idx]);
                }
            }
            if !obs.is_empty() {
                let v = self.func.reduce(&obs);
                self.stats.points_out += 1;
                self.queue.push_back(Element::point(
                    Cell::new((idx % w) as u32, (idx / w) as u32),
                    v as f32,
                ));
            }
        }
        self.queue
            .push_back(Element::FrameEnd(FrameEnd { frame_id, sector_id: si_template.sector_id }));
        self.queue.push_back(Element::SectorEnd(SectorEnd { sector_id: si_template.sector_id }));
    }
}

impl<S: GeoStream> GeoStream for TemporalAggregate<S> {
    type V = f32;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<f32>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            match el {
                Element::SectorStart(si) => {
                    // Lattice changes reset the window (different geometry
                    // cannot aggregate cell-wise).
                    if self.lattice != Some(si.lattice) {
                        let freed: u64 = self.history.iter().map(|i| i.values.len() as u64).sum();
                        self.stats.buffer_shrink(freed, freed * 8);
                        self.history.clear();
                        self.lattice = Some(si.lattice);
                    }
                    let n = (si.lattice.width as usize) * (si.lattice.height as usize);
                    self.current =
                        Some(WindowImage { values: vec![0.0; n], present: vec![false; n] });
                    // Remember sector metadata for the emission.
                    self.schema.sector_lattice = Some(si.lattice);
                    self.pending_sector = Some(si);
                }
                Element::FrameStart(_) => {
                    self.stats.frames_in += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    if let (Some(cur), Some(lat)) = (&mut self.current, &self.lattice) {
                        if p.cell.col < lat.width && p.cell.row < lat.height {
                            let idx =
                                (p.cell.row as usize) * (lat.width as usize) + p.cell.col as usize;
                            cur.values[idx] = p.value.to_f64();
                            cur.present[idx] = true;
                        }
                    }
                }
                Element::FrameEnd(_) => {}
                Element::SectorEnd(_) => {
                    if let Some(cur) = self.current.take() {
                        // Evict before inserting so the live buffer never
                        // exceeds `window` images.
                        if self.history.len() == self.window {
                            if let Some(old) = self.history.pop_front() {
                                let n = old.values.len() as u64;
                                self.stats.buffer_shrink(n, n * 8);
                            }
                        }
                        let n = cur.values.len() as u64;
                        self.stats.buffer_grow(n, n * 8);
                        self.history.push_back(cur);
                        if let Some(si) = self.pending_sector.take() {
                            self.emit_aggregate(&si);
                        }
                    }
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Constant-space accumulator for a spatial aggregate.
#[derive(Debug, Clone, Copy, Default)]
struct ScalarAcc {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl ScalarAcc {
    fn push(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.count += 1;
    }

    fn reduce(&self, func: AggFunc) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        match func {
            AggFunc::Mean => self.sum / self.count as f64,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
        }
    }
}

/// Per-sector spatial aggregate over a region of interest: emits one
/// point per sector on a 1×1 lattice centered at the region.
pub struct SpatialAggregate<S: GeoStream> {
    input: S,
    func: AggFunc,
    region: Region,
    footprint: Option<geostreams_geo::CellBox>,
    lattice: Option<LatticeGeoref>,
    exact: bool,
    acc: ScalarAcc,
    sector: Option<(u64, Timestamp)>,
    queue: VecDeque<Element<f32>>,
    next_frame_id: u64,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> SpatialAggregate<S> {
    /// Creates the aggregate over `region` (stream CRS).
    pub fn new(input: S, func: AggFunc, region: Region) -> Self {
        let schema = input.schema().renamed(format!("agg_space[{func:?}]"));
        let exact = !region.is_rectangular();
        SpatialAggregate {
            input,
            func,
            region,
            footprint: None,
            lattice: None,
            exact,
            acc: ScalarAcc::default(),
            sector: None,
            queue: VecDeque::new(),
            next_frame_id: 0,
            stats: OpStats::default(),
            schema,
        }
    }
}

impl<S: GeoStream> GeoStream for SpatialAggregate<S> {
    type V = f32;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<f32>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            match el {
                Element::SectorStart(si) => {
                    self.footprint = si.lattice.footprint_of_region(&self.region);
                    self.lattice = Some(si.lattice);
                    self.sector = Some((si.sector_id, si.timestamp));
                    self.acc = ScalarAcc::default();
                    // Output lattice: a single cell at the region center.
                    let bbox = self.region.bbox_clamped(si.lattice.world_bbox());
                    let out_lattice = LatticeGeoref::north_up(
                        si.lattice.crs,
                        if bbox.is_empty() { si.lattice.world_bbox() } else { bbox },
                        1,
                        1,
                    );
                    self.queue.push_back(Element::SectorStart(SectorInfo {
                        lattice: out_lattice,
                        ..si.clone()
                    }));
                }
                Element::FrameStart(_) => {
                    self.stats.frames_in += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    let Some(fp) = self.footprint else { continue };
                    if !fp.contains(p.cell) {
                        continue;
                    }
                    if self.exact {
                        let Some(lat) = &self.lattice else { continue };
                        if !self.region.contains(lat.cell_to_world(p.cell)) {
                            continue;
                        }
                    }
                    self.acc.push(p.value.to_f64());
                }
                Element::FrameEnd(_) => {}
                Element::SectorEnd(se) => {
                    if let Some((sector_id, ts)) = self.sector.take() {
                        let frame_id = self.next_frame_id;
                        self.next_frame_id += 1;
                        self.stats.frames_out += 1;
                        self.queue.push_back(Element::FrameStart(FrameInfo {
                            frame_id,
                            sector_id,
                            timestamp: ts,
                            cells: CellBox::new(0, 0, 0, 0),
                            synth_ns: crate::obs::now_ns(),
                        }));
                        let v = self.acc.reduce(self.func);
                        self.stats.points_out += 1;
                        self.queue.push_back(Element::point(Cell::new(0, 0), v as f32));
                        self.queue.push_back(Element::FrameEnd(FrameEnd { frame_id, sector_id }));
                        self.acc = ScalarAcc::default();
                    }
                    self.queue.push_back(Element::SectorEnd(SectorEnd { sector_id: se.sector_id }));
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Aggregates accumulate per-cell or per-sector state that advances on
/// frame boundaries: they need bracketed input and re-emit a fresh
/// marker sequence, but accumulation itself is order-insensitive.
pub fn aggregate_contract(operator: &str) -> crate::ops::ProtocolContract {
    use crate::ops::protocol::{ChunkDiscipline, MarkerEffect, OrderEffect, ProtocolContract};
    ProtocolContract {
        operator: operator.to_string(),
        markers: MarkerEffect::Resynthesize,
        order: OrderEffect::Preserve,
        chunks: ChunkDiscipline::Repack,
        requires_bracketing: true,
        requires_order: false,
        // Windows and accumulators merge state across morsel
        // boundaries: aggregates bound the parallel region.
        parallelism: crate::ops::protocol::Parallelism::BlockingMerge,
        granularity: crate::ops::protocol::Granularity::Sector,
    }
}

impl<S: GeoStream> TemporalAggregate<S> {
    /// A sliding window of `W` images is frame-scale buffering (§6 / [27]).
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::BoundedFrame
    }

    /// Protocol contract (see [`aggregate_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        aggregate_contract("agg_time")
    }
}

impl<S: GeoStream> SpatialAggregate<S> {
    /// One scalar accumulator per sector: O(1) state, non-blocking.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract (see [`aggregate_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        aggregate_contract("agg_space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, Rect};

    fn lattice() -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4)
    }

    fn sectors(n: u64) -> VecStream<f32> {
        // Sector s has constant value s at every cell.
        VecStream::sectors("src", lattice(), n, |s, _, _| s as f64)
    }

    #[test]
    fn agg_func_reduction() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(AggFunc::Mean.reduce(&vals), 2.5);
        assert_eq!(AggFunc::Min.reduce(&vals), 1.0);
        assert_eq!(AggFunc::Max.reduce(&vals), 4.0);
        assert_eq!(AggFunc::Sum.reduce(&vals), 10.0);
        assert_eq!(AggFunc::Count.reduce(&vals), 4.0);
        assert_eq!(AggFunc::Mean.reduce(&[]), 0.0);
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Mean));
        assert_eq!(AggFunc::from_name("MAX"), Some(AggFunc::Max));
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn temporal_mean_over_window() {
        // Sectors 0,1,2,3 with constant values; window 2 → means 0, .5,
        // 1.5, 2.5.
        let mut op = TemporalAggregate::new(sectors(4), AggFunc::Mean, 2);
        let els = op.drain_elements();
        let mut sector_means = Vec::new();
        let mut acc: Vec<f32> = Vec::new();
        for el in els {
            match el {
                Element::Point(p) => acc.push(p.value),
                Element::SectorEnd(_) => {
                    let mean = acc.iter().sum::<f32>() / acc.len() as f32;
                    sector_means.push(mean);
                    acc.clear();
                }
                _ => {}
            }
        }
        assert_eq!(sector_means.len(), 4);
        assert!((sector_means[0] - 0.0).abs() < 1e-6);
        assert!((sector_means[1] - 0.5).abs() < 1e-6);
        assert!((sector_means[2] - 1.5).abs() < 1e-6);
        assert!((sector_means[3] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn temporal_window_buffer_scales_with_w() {
        let mut w2 = TemporalAggregate::new(sectors(6), AggFunc::Max, 2);
        let _ = w2.drain_points();
        let mut w4 = TemporalAggregate::new(sectors(6), AggFunc::Max, 4);
        let _ = w4.drain_points();
        let p2 = w2.op_stats().buffered_points_peak;
        let p4 = w4.op_stats().buffered_points_peak;
        assert_eq!(p2, 2 * 16);
        assert_eq!(p4, 4 * 16);
    }

    #[test]
    fn temporal_max_tracks_window_maximum() {
        let mut op = TemporalAggregate::new(sectors(5), AggFunc::Max, 3);
        let pts = op.drain_points();
        // Last sector's aggregate equals max(2,3,4)=4 everywhere.
        let last: Vec<f32> = pts[pts.len() - 16..].iter().map(|p| p.value).collect();
        assert!(last.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn spatial_aggregate_single_value_per_sector() {
        // Value = col; region covers cols 0..1 (lon < 2), mean of
        // {0,1} = 0.5 regardless of the sector.
        let src = VecStream::<f32>::sectors("src", lattice(), 3, |_, c, _| f64::from(c));
        let region = Region::Rect(Rect::new(0.0, 0.0, 2.0, 4.0));
        let mut op = SpatialAggregate::new(src, AggFunc::Mean, region);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|p| (p.value - 0.5).abs() < 1e-6));
        assert!(pts.iter().all(|p| p.cell == Cell::new(0, 0)));
    }

    #[test]
    fn spatial_aggregate_count_in_region() {
        let src = VecStream::<f32>::sectors("src", lattice(), 1, |_, c, _| f64::from(c));
        let region = Region::Rect(Rect::new(0.0, 0.0, 2.0, 2.0)); // 2x2 cells
        let mut op = SpatialAggregate::new(src, AggFunc::Count, region);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].value, 4.0);
    }

    #[test]
    fn spatial_aggregate_state_is_constant() {
        let src = VecStream::<f32>::sectors("src", lattice(), 4, |_, c, _| f64::from(c));
        let region = Region::Rect(Rect::new(0.0, 0.0, 4.0, 4.0));
        let mut op = SpatialAggregate::new(src, AggFunc::Sum, region);
        let _ = op.drain_points();
        assert_eq!(op.op_stats().buffered_points_peak, 0, "accumulators are O(1)-ish");
    }
}
