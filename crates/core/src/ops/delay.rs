//! Temporal shift: replaying the previous image(s) under the current
//! timestamp.
//!
//! The composition operator (§3.3) joins points on `(space, timestamp)`,
//! which makes *cross-band* products expressible — but change detection
//! needs to join a stream with **its own past**. [`Delay`] closes that
//! gap inside the algebra: it buffers `d` images and re-emits the image
//! from `d` sectors ago stamped with the *current* sector's timestamp,
//! so `(G − delay(G, 1))` is the per-cell difference between consecutive
//! scans. Buffering is exactly `d + 1` images (the paper's space-cost
//! style of analysis applies: the state is images, not the stream).

use crate::model::{
    Element, FrameEnd, FrameInfo, GeoStream, SectorEnd, SectorInfo, StreamSchema, Timestamp,
};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox, LatticeGeoref};
use geostreams_raster::Pixel;
use std::collections::VecDeque;

/// A buffered image of the delay line.
struct Held<V> {
    values: Vec<Option<V>>,
    lattice: LatticeGeoref,
}

/// The delay operator `delay(G, d)`.
pub struct Delay<S: GeoStream> {
    input: S,
    d: usize,
    /// Delay line: front = oldest.
    line: VecDeque<Held<S::V>>,
    current: Option<Held<S::V>>,
    pending_sector: Option<SectorInfo>,
    queue: VecDeque<Element<S::V>>,
    next_frame_id: u64,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> Delay<S> {
    /// Creates a delay of `d ≥ 1` sectors.
    pub fn new(input: S, d: u32) -> Self {
        assert!(d >= 1, "delay must be at least one sector");
        let schema = input.schema().renamed(format!("delay[{d}]"));
        Delay {
            input,
            d: d as usize,
            line: VecDeque::new(),
            current: None,
            pending_sector: None,
            queue: VecDeque::new(),
            next_frame_id: 0,
            stats: OpStats::default(),
            schema,
        }
    }

    /// Emits the delayed image under the current sector's identity.
    fn emit_delayed(&mut self, si: &SectorInfo, held: &Held<S::V>) {
        // The delayed image is re-georeferenced to its own (old) lattice
        // but stamped with the *current* timestamp/sector so it joins
        // against the live stream.
        self.queue
            .push_back(Element::SectorStart(SectorInfo { lattice: held.lattice, ..si.clone() }));
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        self.stats.frames_out += 1;
        self.queue.push_back(Element::FrameStart(FrameInfo {
            frame_id,
            sector_id: si.sector_id,
            timestamp: si.timestamp,
            cells: CellBox::full(held.lattice.width, held.lattice.height),
            synth_ns: crate::obs::now_ns(),
        }));
        let w = held.lattice.width as usize;
        for (idx, v) in held.values.iter().enumerate() {
            if let Some(v) = v {
                self.stats.points_out += 1;
                self.queue
                    .push_back(Element::point(Cell::new((idx % w) as u32, (idx / w) as u32), *v));
            }
        }
        self.queue.push_back(Element::FrameEnd(FrameEnd { frame_id, sector_id: si.sector_id }));
        self.queue.push_back(Element::SectorEnd(SectorEnd { sector_id: si.sector_id }));
    }

    /// The current timestamp shift in sectors.
    pub fn delay_sectors(&self) -> usize {
        self.d
    }
}

impl<S: GeoStream> GeoStream for Delay<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            match el {
                Element::SectorStart(si) => {
                    let n = (si.lattice.width as usize) * (si.lattice.height as usize);
                    self.current = Some(Held { values: vec![None; n], lattice: si.lattice });
                    self.pending_sector = Some(si);
                }
                Element::FrameStart(_) | Element::FrameEnd(_) => {
                    self.stats.stalls += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    if let Some(cur) = &mut self.current {
                        let w = cur.lattice.width;
                        if p.cell.col < w && p.cell.row < cur.lattice.height {
                            cur.values
                                [(p.cell.row as usize) * (w as usize) + p.cell.col as usize] =
                                Some(p.value);
                        }
                    }
                }
                Element::SectorEnd(_) => {
                    let Some(si) = self.pending_sector.take() else { continue };
                    if let Some(cur) = self.current.take() {
                        let n = cur.values.len() as u64;
                        self.stats.buffer_grow(n, n * S::V::BYTES as u64);
                        self.line.push_back(cur);
                    }
                    // Once the line holds more than `d` images, the front
                    // one is exactly d sectors old: replay and drop it.
                    if self.line.len() > self.d {
                        if let Some(old) = self.line.pop_front() {
                            self.emit_delayed(&si, &old);
                            let n = old.values.len() as u64;
                            self.stats.buffer_shrink(n, n * S::V::BYTES as u64);
                        }
                    }
                    let _ = Timestamp::default(); // keep import honest
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// A delay line replays whole buffered frames: it needs bracketed input
/// (frames are captured between `FrameStart`/`FrameEnd`) and re-emits
/// its own marker sequence; order within a captured frame is kept as
/// received, so it has no order requirement of its own.
pub fn delay_contract() -> crate::ops::ProtocolContract {
    use crate::ops::protocol::{ChunkDiscipline, MarkerEffect, OrderEffect, ProtocolContract};
    ProtocolContract {
        operator: "delay".to_string(),
        markers: MarkerEffect::Resynthesize,
        order: OrderEffect::Preserve,
        chunks: ChunkDiscipline::Repack,
        requires_bracketing: true,
        requires_order: false,
        // The d-sector shift spans morsel boundaries by definition.
        parallelism: crate::ops::protocol::Parallelism::OrderSensitive,
        granularity: crate::ops::protocol::Granularity::Sector,
    }
}

impl<S: GeoStream> Delay<S> {
    /// A delay line holds `d + 1` whole images: frame-scale buffering.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::BoundedFrame
    }

    /// Protocol contract (see [`delay_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        delay_contract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{tee2, VecStream};
    use crate::ops::{Compose, GammaOp, JoinStrategy};
    use geostreams_geo::{Crs, Rect};

    fn lattice() -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4)
    }

    fn sectors(n: u64) -> VecStream<f32> {
        // Sector s: value = cell index + 10·s.
        VecStream::sectors("src", lattice(), n, |s, c, r| f64::from(c + 4 * r) + 10.0 * s as f64)
    }

    #[test]
    fn delay_one_replays_previous_sector_under_new_timestamp() {
        let mut op = Delay::new(sectors(3), 1);
        let els = op.drain_elements();
        // Sectors 1 and 2 produce delayed output (0 has no predecessor).
        let starts: Vec<u64> = els
            .iter()
            .filter_map(|e| match e {
                Element::SectorStart(si) => Some(si.sector_id),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![1, 2]);
        // The first delayed image carries sector 0's values.
        let first_point = els.iter().find_map(|e| match e {
            Element::Point(p) if p.cell == Cell::new(0, 0) => Some(p.value),
            _ => None,
        });
        assert_eq!(first_point, Some(0.0));
    }

    #[test]
    fn change_detection_composes_stream_with_its_past() {
        // (G − delay(G,1)) = +10 at every cell for our synthetic sectors.
        let (live, to_delay) = tee2(sectors(4));
        let delayed = Delay::new(to_delay, 1);
        let mut diff = Compose::new(live, delayed, GammaOp::Sub, JoinStrategy::Hash).unwrap();
        let pts = diff.drain_points();
        // Sectors 1..3 join (sector 0 has no past): 3 × 16 points.
        assert_eq!(pts.len(), 3 * 16);
        assert!(pts.iter().all(|p| (p.value - 10.0).abs() < 1e-6), "constant change rate");
    }

    #[test]
    fn deeper_delays_shift_further() {
        let (live, to_delay) = tee2(sectors(5));
        let delayed = Delay::new(to_delay, 2);
        let mut diff = Compose::new(live, delayed, GammaOp::Sub, JoinStrategy::Hash).unwrap();
        let pts = diff.drain_points();
        assert_eq!(pts.len(), 3 * 16); // sectors 2..4
        assert!(pts.iter().all(|p| (p.value - 20.0).abs() < 1e-6));
    }

    #[test]
    fn buffer_is_d_plus_one_images() {
        for d in [1u32, 3] {
            let mut op = Delay::new(sectors(8), d);
            let _ = op.drain_points();
            assert_eq!(op.op_stats().buffered_points_peak, u64::from(d + 1) * 16, "delay {d}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_delay_rejected() {
        let _ = Delay::new(sectors(1), 0);
    }
}
