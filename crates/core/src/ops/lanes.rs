//! Explicit lane-blocked value kernels for the data-parallel operators.
//!
//! Stable Rust (no `std::simd`) still vectorizes well when the loop
//! shape is right: a fixed-width block of independent lanes, no
//! per-element branching, and the operator dispatch hoisted *outside*
//! the loop. [`apply_slice`] restructures [`ValueFunc`] application
//! accordingly: one `match` per slice, then [`LANES`]-wide blocks of
//! straight-line f64 arithmetic the autovectorizer can lift to SIMD,
//! plus a scalar remainder loop.
//!
//! **Bit-exactness contract:** every lane applies *exactly* the scalar
//! [`ValueFunc::apply`] formula, in f64, in element order — so the lane
//! path is byte-identical to the scalar path (the oracle tests below
//! compare `to_bits`, NaNs included). The speedup comes from loop
//! structure, never from reassociation or reduced precision.

use super::value_transform::ValueFunc;

/// Lane width of the blocked loops (8 × f64 = two AVX2 / one AVX-512
/// vector per step; on narrower targets the blocks simply unroll).
pub const LANES: usize = 8;

/// Applies `f` lane-blocked over `vals` (used by every variant below so
/// the loop shape is uniform; `f` must be branch-light for the blocks
/// to vectorize).
#[inline(always)]
fn for_each_lane(vals: &mut [f64], f: impl Fn(f64) -> f64 + Copy) {
    let mut blocks = vals.chunks_exact_mut(LANES);
    for block in &mut blocks {
        // Fixed-size temporary keeps the loads/compute/stores in
        // straight-line, index-free form.
        let mut lane = [0.0f64; LANES];
        lane.copy_from_slice(block);
        for v in &mut lane {
            *v = f(*v);
        }
        block.copy_from_slice(&lane);
    }
    for v in blocks.into_remainder() {
        *v = f(*v);
    }
}

/// Applies `func` to every value in place, lane-blocked. Byte-identical
/// to mapping [`ValueFunc::apply`] element-wise.
pub fn apply_slice(func: ValueFunc, vals: &mut [f64]) {
    match func {
        ValueFunc::Linear { scale, offset } => for_each_lane(vals, |v| scale * v + offset),
        ValueFunc::Normalize { lo, hi } => {
            if hi > lo {
                for_each_lane(vals, |v| ((v - lo) / (hi - lo)).clamp(0.0, 1.0));
            } else {
                for_each_lane(vals, |_| 0.0);
            }
        }
        ValueFunc::Clamp { lo, hi } => for_each_lane(vals, |v| v.clamp(lo, hi)),
        ValueFunc::Abs => for_each_lane(vals, f64::abs),
        ValueFunc::Gamma { g } => for_each_lane(vals, |v| v.clamp(0.0, 1.0).powf(g)),
        ValueFunc::Threshold { t } => {
            for_each_lane(vals, |v| if v >= t { 1.0 } else { 0.0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn funcs() -> Vec<ValueFunc> {
        vec![
            ValueFunc::Linear { scale: 0.37, offset: -2.25 },
            ValueFunc::Normalize { lo: -10.0, hi: 10.0 },
            ValueFunc::Normalize { lo: 5.0, hi: 5.0 }, // degenerate
            ValueFunc::Clamp { lo: -1.0, hi: 1.0 },
            ValueFunc::Abs,
            ValueFunc::Gamma { g: 2.2 },
            ValueFunc::Threshold { t: 0.125 },
        ]
    }

    fn inputs() -> Vec<f64> {
        // Odd length exercises the remainder loop; includes negatives,
        // zero signs, infinities and NaN.
        let mut v: Vec<f64> = (0..61).map(|i| (f64::from(i) - 30.0) * 0.73).collect();
        v.extend([0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN]);
        v
    }

    #[test]
    fn lane_path_is_bit_identical_to_scalar_apply() {
        for func in funcs() {
            let mut lane = inputs();
            apply_slice(func, &mut lane);
            let scalar: Vec<f64> = inputs().iter().map(|v| func.apply(*v)).collect();
            assert_eq!(lane.len(), scalar.len());
            for (i, (a, b)) in lane.iter().zip(&scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{func:?} lane {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn short_slices_use_the_remainder_path() {
        for n in 0..LANES {
            let mut v: Vec<f64> = (0..n).map(|i| i as f64).collect();
            apply_slice(ValueFunc::Linear { scale: 2.0, offset: 1.0 }, &mut v);
            for (i, got) in v.iter().enumerate() {
                assert_eq!(*got, 2.0 * i as f64 + 1.0);
            }
        }
    }
}
