//! Macro operators for common data products (§4).
//!
//! "Other operators that are currently being implemented … include
//! specialized macro operators that compute specific data products, such
//! as NDVI. Such data products can be directly selected in the user
//! interface, without the need to compose otherwise complex queries."
//!
//! A macro operator fuses a multi-operator expression into a single
//! composition pass. [`ndvi`] computes the §3.4 example
//! `(G₁ − G₂) ⊘ (G₂ + G₁)` — the normalized difference vegetation index
//! over the near-infrared and visible bands — in one join instead of
//! three ([`ndvi_unfused`] builds the literal three-join expression via
//! stream tees; the A-series benches compare the two).

use crate::error::Result;
use crate::model::{tee2, GeoStream};
use crate::ops::compose::{Compose, GammaOp, JoinStrategy};

/// Fused NDVI: `(nir − vis) / (nir + vis)` in a single composition.
pub fn ndvi<L, R>(nir: L, vis: R) -> Result<Compose<L, R>>
where
    L: GeoStream,
    R: GeoStream<V = L::V>,
{
    Compose::new(nir, vis, GammaOp::NormDiff, JoinStrategy::Hash)
}

/// Normalized-difference water index `(green − nir) / (green + nir)` —
/// same fused kernel, different band order.
pub fn ndwi<L, R>(green: L, nir: R) -> Result<Compose<L, R>>
where
    L: GeoStream,
    R: GeoStream<V = L::V>,
{
    Compose::new(green, nir, GammaOp::NormDiff, JoinStrategy::Hash)
}

/// The literal §3.4 expression `(G₁ − G₂) ⊘ (G₂ + G₁)` built from three
/// compositions and two stream tees (each band is consumed twice). Used
/// to quantify what the macro/fused form saves.
pub fn ndvi_unfused<L, R>(nir: L, vis: R) -> Result<impl GeoStream<V = L::V>>
where
    L: GeoStream,
    R: GeoStream<V = L::V>,
{
    let (nir_a, nir_b) = tee2(nir);
    let (vis_a, vis_b) = tee2(vis);
    let num = Compose::new(nir_a, vis_a, GammaOp::Sub, JoinStrategy::Hash)?;
    let den = Compose::new(vis_b, nir_b, GammaOp::Add, JoinStrategy::Hash)?;
    Compose::new(num, den, GammaOp::Div, JoinStrategy::Hash)
}

/// Brightness-temperature difference `a − b`, the classic split-window
/// product for cloud/fire detection on thermal IR bands.
pub fn band_difference<L, R>(a: L, b: R) -> Result<Compose<L, R>>
where
    L: GeoStream,
    R: GeoStream<V = L::V>,
{
    Compose::new(a, b, GammaOp::Sub, JoinStrategy::Hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn lattice() -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8)
    }

    fn nir() -> VecStream<f32> {
        VecStream::single_sector("nir", lattice(), 0, |c, r| f64::from(c + r) + 8.0)
    }

    fn vis() -> VecStream<f32> {
        VecStream::single_sector("vis", lattice(), 0, |c, r| f64::from(c + r) + 2.0)
    }

    #[test]
    fn fused_ndvi_matches_formula() {
        let mut op = ndvi(nir(), vis()).unwrap();
        let pts = op.drain_points();
        assert_eq!(pts.len(), 64);
        for p in &pts {
            let base = f64::from(p.cell.col + p.cell.row);
            let n = base + 8.0;
            let v = base + 2.0;
            let expect = (n - v) / (n + v);
            assert!((f64::from(p.value) - expect).abs() < 1e-6);
        }
        // NDVI of these synthetic bands is strictly positive and ≤ 1.
        assert!(pts.iter().all(|p| p.value > 0.0 && p.value <= 1.0));
    }

    #[test]
    fn unfused_expression_agrees_with_fused() {
        let mut fused = ndvi(nir(), vis()).unwrap();
        let mut unfused = ndvi_unfused(nir(), vis()).unwrap();
        let mut a = fused.drain_points();
        let mut b = unfused.drain_points();
        a.sort_by_key(|p| (p.cell.row, p.cell.col));
        b.sort_by_key(|p| (p.cell.row, p.cell.col));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cell, y.cell);
            assert!((x.value - y.value).abs() < 1e-6);
        }
    }

    #[test]
    fn fused_form_does_less_work() {
        let mut fused = ndvi(nir(), vis()).unwrap();
        let _ = fused.drain_points();
        let mut fused_report = Vec::new();
        fused.collect_stats(&mut fused_report);
        let fused_points_in: u64 = fused_report.iter().map(|r| r.stats.points_in).sum();

        let mut unfused = ndvi_unfused(nir(), vis()).unwrap();
        let _ = unfused.drain_points();
        let mut unfused_report = Vec::new();
        unfused.collect_stats(&mut unfused_report);
        let unfused_points_in: u64 = unfused_report.iter().map(|r| r.stats.points_in).sum();

        assert!(
            unfused_points_in >= 2 * fused_points_in,
            "unfused {unfused_points_in} vs fused {fused_points_in}"
        );
    }

    #[test]
    fn ndvi_schema_range_is_symmetric_unit() {
        let op = ndvi(nir(), vis()).unwrap();
        assert_eq!(op.schema().value_range, (-1.0, 1.0));
    }

    #[test]
    fn band_difference_subtracts() {
        let mut op = band_difference(nir(), vis()).unwrap();
        let pts = op.drain_points();
        assert!(pts.iter().all(|p| (p.value - 6.0).abs() < 1e-6));
    }
}
