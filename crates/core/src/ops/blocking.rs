//! Declared blocking classes: the paper's §3 per-operator cost claims
//! as a first-class, ordered type.
//!
//! Every operator in this module tree exposes a `declared_blocking()`
//! method returning the class it promises to respect at runtime;
//! [`crate::query::analyze`] re-derives the same classification
//! statically from an expression tree so plans can be admitted or
//! refused *before* the pipeline pulls its first point (Aurora-style
//! admission control).
//!
//! The variants are totally ordered from cheapest to most expensive:
//! `NonBlocking < BoundedRows(k) < BoundedFrame < Unbounded`. The
//! optimizer relies on this order to check that rewrites never worsen a
//! plan's blocking behavior.

use serde::{Deserialize, Serialize};

/// How much stream history an operator must buffer before it can emit.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum BlockingClass {
    /// O(1) per point, zero buffering (§3.1 restrictions, point-wise
    /// value transforms, orientation, magnification, shedding).
    #[default]
    NonBlocking,
    /// Buffers a bounded number of lattice rows (k× downsampling
    /// buffers k rows, a k×k focal operator k rows, a metadata-assisted
    /// re-projection a narrow row band — §3.2).
    BoundedRows(u32),
    /// Buffers on the order of a whole frame/image (frame-scoped
    /// stretches — "for GOES up to 20 840 × 10 820 points ≈ 280 MB",
    /// §3.2 — plus delay lines and sliding-window aggregates).
    BoundedFrame,
    /// No static bound exists: the operator may block arbitrarily
    /// (re-projection without scan-sector metadata, §3.2).
    Unbounded,
}

impl BlockingClass {
    /// The worse (more expensive) of two classes.
    #[must_use]
    pub fn worse(self, other: BlockingClass) -> BlockingClass {
        self.max(other)
    }

    /// True when a finite static buffer bound exists.
    pub fn is_bounded(self) -> bool {
        self != BlockingClass::Unbounded
    }
}

impl std::fmt::Display for BlockingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingClass::NonBlocking => write!(f, "non-blocking"),
            BlockingClass::BoundedRows(k) => write!(f, "bounded-rows({k})"),
            BlockingClass::BoundedFrame => write!(f, "bounded-frame"),
            BlockingClass::Unbounded => write!(f, "unbounded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_totally_ordered() {
        assert!(BlockingClass::NonBlocking < BlockingClass::BoundedRows(1));
        assert!(BlockingClass::BoundedRows(1) < BlockingClass::BoundedRows(8));
        assert!(BlockingClass::BoundedRows(u32::MAX) < BlockingClass::BoundedFrame);
        assert!(BlockingClass::BoundedFrame < BlockingClass::Unbounded);
        assert_eq!(
            BlockingClass::BoundedFrame.worse(BlockingClass::BoundedRows(3)),
            BlockingClass::BoundedFrame
        );
        assert!(BlockingClass::BoundedFrame.is_bounded());
        assert!(!BlockingClass::Unbounded.is_bounded());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(BlockingClass::NonBlocking.to_string(), "non-blocking");
        assert_eq!(BlockingClass::BoundedRows(4).to_string(), "bounded-rows(4)");
        assert_eq!(BlockingClass::BoundedFrame.to_string(), "bounded-frame");
        assert_eq!(BlockingClass::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn serializes_round_trip() {
        let c = BlockingClass::BoundedRows(5);
        let json = serde_json::to_string(&c).unwrap();
        let back: BlockingClass = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
