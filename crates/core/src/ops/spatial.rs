//! Resolution-changing spatial transforms (§3.2, Fig. 2a).
//!
//! * [`Magnify`] — "An operator that increases the spatial resolution
//!   would take an incoming point x and produce a rectangular lattice of
//!   k·k points in Y, all with the point value G(x). No neighboring
//!   points for x are required" — hence zero buffering.
//! * [`Downsample`] — "neighboring points are needed in case one wants to
//!   decrease the resolution … a rectangular lattice of k·k neighboring
//!   points surrounding x is needed", so the operator accumulates block
//!   sums; for a row-by-row stream its buffer is proportional to the row
//!   width (never the frame height), which experiment F2 verifies.

use crate::model::{Element, FrameEnd, FrameInfo, GeoStream, SectorEnd, SectorInfo, StreamSchema};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox, LatticeGeoref};
use geostreams_raster::Pixel;
use std::collections::{HashMap, VecDeque};

/// k× magnification: each input point becomes a `k × k` block of output
/// points with the same value. Non-blocking; per-point cost O(k²).
pub struct Magnify<S: GeoStream> {
    input: S,
    k: u32,
    queue: VecDeque<Element<S::V>>,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> Magnify<S> {
    /// Creates a magnification by integer factor `k ≥ 1`.
    pub fn new(input: S, k: u32) -> Self {
        assert!(k >= 1, "magnification factor must be >= 1");
        let schema = input.schema().renamed(format!("magnify[x{k}]"));
        Magnify { input, k, queue: VecDeque::new(), stats: OpStats::default(), schema }
    }
}

impl<S: GeoStream> GeoStream for Magnify<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            let k = self.k;
            match el {
                Element::SectorStart(si) => {
                    let out = SectorInfo { lattice: si.lattice.magnified(k), ..si };
                    return Some(Element::SectorStart(out));
                }
                Element::FrameStart(fi) => {
                    self.stats.frames_in += 1;
                    self.stats.frames_out += 1;
                    let c = fi.cells;
                    let cells = CellBox::new(
                        c.col_min * k,
                        c.row_min * k,
                        c.col_max * k + (k - 1),
                        c.row_max * k + (k - 1),
                    );
                    return Some(Element::FrameStart(FrameInfo { cells, ..fi }));
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    self.stats.points_out += u64::from(k) * u64::from(k);
                    for dr in 0..k {
                        for dc in 0..k {
                            self.queue.push_back(Element::point(
                                Cell::new(p.cell.col * k + dc, p.cell.row * k + dr),
                                p.value,
                            ));
                        }
                    }
                }
                other => return Some(other),
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Accumulator for one output block.
#[derive(Debug, Clone, Copy, Default)]
struct BlockAcc {
    sum: f64,
    count: u32,
}

/// 1/k downsampling by `k × k` block averaging.
///
/// Emits one output frame per input sector (all output points share the
/// sector timestamp). Blocks straddling the trailing edge of the sector
/// are emitted at `SectorEnd` as partial-block averages — the "boundary
/// point interpolations" §3.2 prescribes when sector metadata signals
/// that no more neighbors will arrive.
pub struct Downsample<S: GeoStream> {
    input: S,
    k: u32,
    out_lattice: Option<LatticeGeoref>,
    acc: HashMap<(u32, u32), BlockAcc>,
    queue: VecDeque<Element<S::V>>,
    next_frame_id: u64,
    open_frame: Option<(u64, u64)>,
    stats: OpStats,
    schema: StreamSchema,
}

/// Approximate bookkeeping bytes per live block accumulator.
const ACC_ENTRY_BYTES: u64 = 24;

impl<S: GeoStream> Downsample<S> {
    /// Creates a downsampling by integer factor `k ≥ 1`.
    pub fn new(input: S, k: u32) -> Self {
        assert!(k >= 1, "downsampling factor must be >= 1");
        let schema = input.schema().renamed(format!("downsample[/{k}]"));
        Downsample {
            input,
            k,
            out_lattice: None,
            acc: HashMap::new(),
            queue: VecDeque::new(),
            next_frame_id: 0,
            open_frame: None,
            stats: OpStats::default(),
            schema,
        }
    }

    fn emit_block(&mut self, key: (u32, u32), acc: BlockAcc) {
        let v = S::V::from_f64(acc.sum / f64::from(acc.count.max(1)));
        self.stats.points_out += 1;
        self.queue.push_back(Element::point(Cell::new(key.0, key.1), v));
    }
}

impl<S: GeoStream> GeoStream for Downsample<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            let k = self.k;
            match el {
                Element::SectorStart(si) => {
                    let out_lat = si.lattice.reduced(k);
                    self.out_lattice = Some(out_lat);
                    let frame_id = self.next_frame_id;
                    self.next_frame_id += 1;
                    self.open_frame = Some((frame_id, si.sector_id));
                    self.queue.push_back(Element::SectorStart(SectorInfo {
                        lattice: out_lat,
                        ..si.clone()
                    }));
                    if !out_lat.is_empty() {
                        self.stats.frames_out += 1;
                        self.queue.push_back(Element::FrameStart(FrameInfo {
                            frame_id,
                            sector_id: si.sector_id,
                            timestamp: si.timestamp,
                            cells: CellBox::full(out_lat.width, out_lat.height),
                            synth_ns: crate::obs::now_ns(),
                        }));
                    }
                }
                Element::FrameStart(_) => {
                    self.stats.frames_in += 1;
                    self.stats.stalls += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    let Some(out) = &self.out_lattice else { continue };
                    let oc = p.cell.col / k;
                    let or = p.cell.row / k;
                    if oc >= out.width || or >= out.height {
                        continue; // trailing cells of a partial block edge
                    }
                    let entry = self.acc.entry((oc, or)).or_default();
                    if entry.count == 0 {
                        self.stats.buffer_grow(0, ACC_ENTRY_BYTES);
                    }
                    // Count every accumulated-but-unemitted input point.
                    self.stats.buffer_grow(1, 0);
                    entry.sum += p.value.to_f64();
                    entry.count += 1;
                    if entry.count == k * k {
                        if let Some(acc) = self.acc.remove(&(oc, or)) {
                            self.stats.buffer_shrink(u64::from(acc.count), ACC_ENTRY_BYTES);
                            self.emit_block((oc, or), acc);
                        }
                    }
                }
                Element::FrameEnd(_) => {}
                Element::SectorEnd(se) => {
                    // Boundary handling: flush partial blocks.
                    let mut leftovers: Vec<((u32, u32), BlockAcc)> = self.acc.drain().collect();
                    leftovers.sort_by_key(|(k, _)| (k.1, k.0));
                    for (key, acc) in leftovers {
                        self.stats.buffer_shrink(u64::from(acc.count), ACC_ENTRY_BYTES);
                        self.emit_block(key, acc);
                    }
                    if let Some((frame_id, sector_id)) = self.open_frame.take() {
                        self.queue.push_back(Element::FrameEnd(FrameEnd { frame_id, sector_id }));
                    }
                    self.queue.push_back(Element::SectorEnd(SectorEnd { sector_id: se.sector_id }));
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Magnification synthesizes a k×-denser output lattice: markers are
/// re-emitted for the new frame geometry, and the replication pattern
/// only yields lattice-ordered output for lattice-ordered input.
pub fn magnify_contract() -> crate::ops::ProtocolContract {
    crate::ops::ProtocolContract::resynthesizing("magnify")
}

/// Downsampling accumulates k×k blocks and flushes them on row and
/// frame boundaries: it needs bracketed, ordered input and re-emits a
/// fresh marker sequence for the coarser output lattice.
pub fn downsample_contract() -> crate::ops::ProtocolContract {
    crate::ops::ProtocolContract::resynthesizing("downsample")
}

impl<S: GeoStream> Magnify<S> {
    /// §3.2: "magnification needs no buffering".
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract (see [`magnify_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        magnify_contract()
    }
}

impl<S: GeoStream> Downsample<S> {
    /// §3.2: "k× downsampling buffers k rows" (one output row of block
    /// accumulators spans k input rows).
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::BoundedRows(self.k)
    }

    /// Protocol contract (see [`downsample_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        downsample_contract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, Rect};

    fn lattice(w: u32, h: u32) -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 12.0, 12.0), w, h)
    }

    fn source(w: u32, h: u32) -> VecStream<f32> {
        VecStream::single_sector("src", lattice(w, h), 0, |c, r| f64::from(c + w * r))
    }

    #[test]
    fn magnify_replicates_each_point() {
        let mut op = Magnify::new(source(2, 2), 3);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 4 * 9);
        // Point (1,0) value 1 covers output cols 3..5, rows 0..2.
        let block: Vec<_> = pts.iter().filter(|p| p.value == 1.0).collect();
        assert_eq!(block.len(), 9);
        assert!(block.iter().all(|p| (3..=5).contains(&p.cell.col) && p.cell.row <= 2));
    }

    #[test]
    fn magnify_needs_no_buffer() {
        let mut op = Magnify::new(source(16, 16), 4);
        let _ = op.drain_points();
        let st = op.op_stats();
        assert_eq!(st.buffered_points_peak, 0, "§3.2: no neighboring points required");
        assert_eq!(st.points_out, 16 * 16 * 16);
    }

    #[test]
    fn magnify_updates_sector_lattice() {
        let mut op = Magnify::new(source(4, 4), 2);
        let els = op.drain_elements();
        match &els[0] {
            Element::SectorStart(si) => {
                assert_eq!(si.lattice.width, 8);
                assert_eq!(si.lattice.height, 8);
            }
            other => panic!("expected SectorStart, got {other:?}"),
        }
    }

    #[test]
    fn downsample_block_averages() {
        // 4x4 ramp downsampled by 2: block (0,0) = {0,1,4,5} -> 2.5.
        let mut op = Downsample::new(source(4, 4), 2);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 4);
        let p00 = pts.iter().find(|p| p.cell == Cell::new(0, 0)).unwrap();
        assert!((p00.value - 2.5).abs() < 1e-6);
        let p11 = pts.iter().find(|p| p.cell == Cell::new(1, 1)).unwrap();
        assert!((p11.value - 12.5).abs() < 1e-6);
    }

    #[test]
    fn downsample_buffer_scales_with_row_not_frame() {
        // Row-by-row input: the paper's claim is that only ~k rows of
        // state are needed, never the whole frame.
        let mut wide = Downsample::new(source(64, 8), 4);
        let _ = wide.drain_points();
        let wide_peak = wide.op_stats().buffered_points_peak;

        let mut tall = Downsample::new(source(64, 64), 4);
        let _ = tall.drain_points();
        let tall_peak = tall.op_stats().buffered_points_peak;

        assert_eq!(wide_peak, tall_peak, "peak buffer must not grow with frame height");
        // Peak is at most k rows of accumulated points (64*4) minus the
        // blocks that complete as the k-th row streams through.
        assert!(wide_peak <= 64 * 4, "peak {wide_peak}");
        assert!(wide_peak >= 64 * 3, "peak {wide_peak} should hold ~k-1 rows plus partials");
    }

    #[test]
    fn downsample_partial_blocks_flush_at_sector_end() {
        // 5x5 with k=2: output lattice 2x2; the 5th row/col are dropped
        // (they fall outside the reduced lattice), no partials linger.
        let mut op = Downsample::new(source(5, 5), 2);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 4);
        assert_eq!(op.op_stats().buffered_points, 0, "all state released");
    }

    #[test]
    fn downsample_frame_protocol_one_frame_per_sector() {
        let mut op = Downsample::new(source(6, 6), 3);
        let els = op.drain_elements();
        let starts = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        let ends = els.iter().filter(|e| matches!(e, Element::FrameEnd(_))).count();
        assert_eq!(starts, 1);
        assert_eq!(ends, 1);
        // FrameEnd precedes SectorEnd.
        let fe_pos = els.iter().position(|e| matches!(e, Element::FrameEnd(_))).unwrap();
        let se_pos = els.iter().position(|e| matches!(e, Element::SectorEnd(_))).unwrap();
        assert!(fe_pos < se_pos);
    }

    #[test]
    fn magnify_then_downsample_restores_values() {
        let op = Magnify::new(source(4, 4), 3);
        let mut round = Downsample::new(op, 3);
        let pts = round.drain_points();
        assert_eq!(pts.len(), 16);
        for p in pts {
            let expect = f64::from(p.cell.col + 4 * p.cell.row);
            assert!((f64::from(p.value) - expect).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_factor_rejected() {
        let _ = Magnify::new(source(2, 2), 0);
    }
}
