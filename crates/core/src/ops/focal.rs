//! Neighborhood (focal) operations (§1: "perform different types of
//! neighborhood operations and spatial transforms on image data").
//!
//! A focal transform recomputes every point from its `k × k`
//! neighborhood — smoothing, edge detection, morphological filters. Like
//! the 1/k downsampler, a streaming implementation over a row-by-row
//! stream needs to buffer only a band of rows (the kernel height), never
//! the frame: the operator emits row `r` once row `r + k/2` has
//! completed, using the scan-sector metadata to flush the trailing rows
//! at `SectorEnd` with clamped borders.

use crate::model::{Element, FrameEnd, FrameInfo, GeoStream, SectorEnd, StreamSchema};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox, LatticeGeoref};
use geostreams_raster::resample::SampleSource;
use geostreams_raster::Pixel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The focal function applied to each neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FocalFunc {
    /// Box mean (smoothing).
    Mean,
    /// Neighborhood minimum (morphological erosion).
    Min,
    /// Neighborhood maximum (morphological dilation).
    Max,
    /// Neighborhood median (despeckling).
    Median,
    /// Gradient magnitude via Sobel operators (always 3×3).
    Sobel,
    /// Discrete Laplacian (always 3×3), shifted so flat areas map to 0.
    Laplacian,
}

impl FocalFunc {
    /// Parses the textual name used by the query language.
    pub fn from_name(s: &str) -> Option<FocalFunc> {
        Some(match s.to_ascii_lowercase().as_str() {
            "mean" | "smooth" | "box" => FocalFunc::Mean,
            "min" | "erode" => FocalFunc::Min,
            "max" | "dilate" => FocalFunc::Max,
            "median" => FocalFunc::Median,
            "sobel" | "edges" => FocalFunc::Sobel,
            "laplacian" => FocalFunc::Laplacian,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            FocalFunc::Mean => "mean",
            FocalFunc::Min => "min",
            FocalFunc::Max => "max",
            FocalFunc::Median => "median",
            FocalFunc::Sobel => "sobel",
            FocalFunc::Laplacian => "laplacian",
        }
    }

    /// Whether the kernel size is fixed at 3 regardless of the request.
    pub fn fixed_3x3(self) -> bool {
        matches!(self, FocalFunc::Sobel | FocalFunc::Laplacian)
    }
}

/// Sliding band of buffered input rows for the focal window.
struct RowBand<V> {
    rows: VecDeque<Option<Vec<V>>>,
    first_row: u32,
    width: u32,
    height: u32,
}

impl<V: Pixel> RowBand<V> {
    fn new(width: u32, height: u32) -> Self {
        RowBand { rows: VecDeque::new(), first_row: 0, width, height }
    }

    fn set(&mut self, cell: Cell, v: V) -> u64 {
        if cell.row < self.first_row || cell.col >= self.width {
            return 0;
        }
        let mut grown = 0;
        while self.first_row + (self.rows.len() as u32) <= cell.row {
            self.rows.push_back(None);
        }
        let idx = (cell.row - self.first_row) as usize;
        let width = self.width;
        let row_vals = self.rows[idx].get_or_insert_with(|| {
            grown = u64::from(width);
            vec![V::default(); width as usize]
        });
        row_vals[cell.col as usize] = v;
        grown
    }

    fn evict_below(&mut self, row: u32) -> u64 {
        let mut freed = 0;
        while self.first_row < row {
            match self.rows.pop_front() {
                Some(Some(r)) => freed += r.len() as u64,
                Some(None) => {}
                None => break,
            }
            self.first_row += 1;
        }
        freed
    }

    fn buffered(&self) -> u64 {
        self.rows.iter().flatten().map(|r| r.len() as u64).sum()
    }
}

impl<V: Pixel> SampleSource for RowBand<V> {
    fn at(&self, col: i64, row: i64) -> f64 {
        let col = col.clamp(0, i64::from(self.width) - 1) as usize;
        let row = row.clamp(0, i64::from(self.height) - 1) as u32;
        let last = self.first_row + (self.rows.len().max(1) as u32) - 1;
        let row = row.clamp(self.first_row, last);
        match self.rows.get((row - self.first_row) as usize) {
            Some(Some(r)) => r[col].to_f64(),
            _ => 0.0,
        }
    }
}

/// The streaming focal operator.
pub struct FocalTransform<S: GeoStream> {
    input: S,
    func: FocalFunc,
    /// Kernel size (odd; ≥ 3).
    k: u32,
    band: Option<RowBand<S::V>>,
    lattice: Option<LatticeGeoref>,
    /// Rows of input fully received (prefix).
    rows_complete: u32,
    /// Next output row to emit.
    cursor: u32,
    sector_id: u64,
    timestamp: crate::model::Timestamp,
    next_frame_id: u64,
    queue: VecDeque<Element<S::V>>,
    scratch: Vec<f64>,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> FocalTransform<S> {
    /// Creates a focal transform with kernel size `k` (forced odd, ≥ 3;
    /// Sobel/Laplacian always use 3).
    pub fn new(input: S, func: FocalFunc, k: u32) -> Self {
        let k = if func.fixed_3x3() { 3 } else { (k.max(3)) | 1 };
        let mut schema = input.schema().renamed(format!("focal[{} {k}x{k}]", func.name()));
        if matches!(func, FocalFunc::Sobel) {
            schema.value_range = (0.0, schema.value_range.1 - schema.value_range.0);
        } else if matches!(func, FocalFunc::Laplacian) {
            let span = schema.value_range.1 - schema.value_range.0;
            schema.value_range = (-4.0 * span, 4.0 * span);
        }
        FocalTransform {
            input,
            func,
            k,
            band: None,
            lattice: None,
            rows_complete: 0,
            cursor: 0,
            sector_id: 0,
            timestamp: crate::model::Timestamp::default(),
            next_frame_id: 0,
            queue: VecDeque::new(),
            scratch: Vec::new(),
            stats: OpStats::default(),
            schema,
        }
    }

    /// Kernel half-width.
    fn half(&self) -> u32 {
        self.k / 2
    }

    /// Evaluates the focal function at one cell.
    fn evaluate(&mut self, col: u32, row: u32) -> f64 {
        let Some(band) = self.band.as_ref() else { return 0.0 };
        let (c, r) = (i64::from(col), i64::from(row));
        match self.func {
            FocalFunc::Sobel => {
                let g = |dc: i64, dr: i64| band.at(c + dc, r + dr);
                let gx =
                    (g(1, -1) + 2.0 * g(1, 0) + g(1, 1)) - (g(-1, -1) + 2.0 * g(-1, 0) + g(-1, 1));
                let gy =
                    (g(-1, 1) + 2.0 * g(0, 1) + g(1, 1)) - (g(-1, -1) + 2.0 * g(0, -1) + g(1, -1));
                gx.hypot(gy)
            }
            FocalFunc::Laplacian => {
                band.at(c - 1, r) + band.at(c + 1, r) + band.at(c, r - 1) + band.at(c, r + 1)
                    - 4.0 * band.at(c, r)
            }
            FocalFunc::Mean => {
                let h = i64::from(self.half());
                let mut acc = 0.0;
                for dr in -h..=h {
                    for dc in -h..=h {
                        acc += band.at(c + dc, r + dr);
                    }
                }
                acc / ((self.k * self.k) as f64)
            }
            FocalFunc::Min | FocalFunc::Max => {
                let h = i64::from(self.half());
                let mut best = if matches!(self.func, FocalFunc::Min) {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                for dr in -h..=h {
                    for dc in -h..=h {
                        let v = band.at(c + dc, r + dr);
                        best = if matches!(self.func, FocalFunc::Min) {
                            best.min(v)
                        } else {
                            best.max(v)
                        };
                    }
                }
                best
            }
            FocalFunc::Median => {
                let h = i64::from(self.half());
                self.scratch.clear();
                for dr in -h..=h {
                    for dc in -h..=h {
                        self.scratch.push(band.at(c + dc, r + dr));
                    }
                }
                self.scratch.sort_by(f64::total_cmp);
                self.scratch[self.scratch.len() / 2]
            }
        }
    }

    /// Emits every output row whose neighborhood is complete (`force` at
    /// sector end clamps the trailing border).
    fn emit_ready_rows(&mut self, force: bool) {
        let Some(lattice) = self.lattice else { return };
        let h = self.half();
        while self.cursor < lattice.height {
            let needed_last = self.cursor + h;
            let ready =
                force || self.rows_complete > needed_last || self.rows_complete >= lattice.height;
            if !ready {
                break;
            }
            let row = self.cursor;
            let frame_id = self.next_frame_id;
            self.next_frame_id += 1;
            self.stats.frames_out += 1;
            self.queue.push_back(Element::FrameStart(FrameInfo {
                frame_id,
                sector_id: self.sector_id,
                timestamp: self.timestamp,
                cells: CellBox::new(0, row, lattice.width.saturating_sub(1), row),
                synth_ns: crate::obs::now_ns(),
            }));
            for col in 0..lattice.width {
                let v = self.evaluate(col, row);
                self.stats.points_out += 1;
                self.queue.push_back(Element::point(Cell::new(col, row), S::V::from_f64(v)));
            }
            self.queue
                .push_back(Element::FrameEnd(FrameEnd { frame_id, sector_id: self.sector_id }));
            self.cursor += 1;
            // Rows below cursor-h are no longer needed.
            if self.cursor > h {
                if let Some(band) = &mut self.band {
                    let freed = band.evict_below(self.cursor - h);
                    self.stats.buffer_shrink(freed, freed * S::V::BYTES as u64);
                }
            }
        }
    }
}

impl<S: GeoStream> GeoStream for FocalTransform<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            match el {
                Element::SectorStart(si) => {
                    self.lattice = Some(si.lattice);
                    self.band = Some(RowBand::new(si.lattice.width, si.lattice.height));
                    self.rows_complete = 0;
                    self.cursor = 0;
                    self.sector_id = si.sector_id;
                    self.timestamp = si.timestamp;
                    // Output frame ids are seeded from the sector id so
                    // they depend only on this sector's input — the
                    // property that makes focal sector-partitionable
                    // (a fresh per-morsel instance emits the same ids
                    // the serial instance would).
                    self.next_frame_id = si.sector_id * u64::from(si.lattice.height);
                    return Some(Element::SectorStart(si));
                }
                Element::FrameStart(fi) => {
                    self.stats.frames_in += 1;
                    self.timestamp = fi.timestamp;
                    self.stats.stalls += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    if let Some(band) = &mut self.band {
                        let grown = band.set(p.cell, p.value);
                        if grown > 0 {
                            self.stats.buffer_grow(grown, grown * S::V::BYTES as u64);
                        }
                    }
                }
                Element::FrameEnd(_) => {
                    // Advance the complete-prefix watermark.
                    if let (Some(band), Some(lat)) = (&self.band, &self.lattice) {
                        let mut complete = self.rows_complete;
                        while complete < lat.height {
                            match complete.checked_sub(band.first_row) {
                                None => complete += 1, // already evicted
                                Some(i) => {
                                    if band.rows.get(i as usize).map(|r| r.is_some()) == Some(true)
                                    {
                                        complete += 1;
                                    } else {
                                        break;
                                    }
                                }
                            }
                        }
                        self.rows_complete = complete;
                    }
                    self.emit_ready_rows(false);
                }
                Element::SectorEnd(se) => {
                    self.emit_ready_rows(true);
                    if let Some(band) = &mut self.band {
                        let freed = band.buffered();
                        self.stats.buffer_shrink(freed, freed * S::V::BYTES as u64);
                    }
                    self.band = None;
                    self.lattice = None;
                    self.queue.push_back(Element::SectorEnd(SectorEnd { sector_id: se.sector_id }));
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// A focal operator's k-row sliding band assumes rows arrive in lattice
/// order within well-bracketed frames; the output frame is re-emitted
/// from the band, markers and all.
pub fn focal_contract() -> crate::ops::ProtocolContract {
    use crate::ops::protocol::{Granularity, Parallelism};
    // The row band flushes at `SectorEnd` and output frame ids are
    // seeded from the sector id, so a fresh instance fed one whole
    // sector reproduces the serial output: sector-partitionable.
    crate::ops::ProtocolContract::resynthesizing("focal")
        .with_parallelism(Parallelism::Partitionable, Granularity::Sector)
}

impl<S: GeoStream> FocalTransform<S> {
    /// §3.2: a k×k neighborhood operator buffers a k-row sliding band.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::BoundedRows(self.k)
    }

    /// Protocol contract (see [`focal_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        focal_contract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, Rect};

    fn lattice(w: u32, h: u32) -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 16.0, 16.0), w, h)
    }

    fn constant(w: u32, h: u32, v: f64) -> VecStream<f32> {
        VecStream::single_sector("c", lattice(w, h), 0, move |_, _| v)
    }

    fn ramp(w: u32, h: u32) -> VecStream<f32> {
        VecStream::single_sector("r", lattice(w, h), 0, |c, _| f64::from(c))
    }

    #[test]
    fn focal_names_parse() {
        assert_eq!(FocalFunc::from_name("smooth"), Some(FocalFunc::Mean));
        assert_eq!(FocalFunc::from_name("SOBEL"), Some(FocalFunc::Sobel));
        assert_eq!(FocalFunc::from_name("dilate"), Some(FocalFunc::Max));
        assert_eq!(FocalFunc::from_name("nope"), None);
    }

    #[test]
    fn mean_of_constant_is_constant() {
        let mut op = FocalTransform::new(constant(8, 8, 3.5), FocalFunc::Mean, 3);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 64);
        assert!(pts.iter().all(|p| (p.value - 3.5).abs() < 1e-6));
    }

    #[test]
    fn mean_preserves_linear_interior() {
        // Box mean of a linear ramp equals the ramp away from borders.
        let mut op = FocalTransform::new(ramp(10, 6), FocalFunc::Mean, 3);
        let pts = op.drain_points();
        for p in pts.iter().filter(|p| p.cell.col >= 1 && p.cell.col <= 8) {
            assert!(
                (f64::from(p.value) - f64::from(p.cell.col)).abs() < 1e-6,
                "{:?} -> {}",
                p.cell,
                p.value
            );
        }
    }

    #[test]
    fn sobel_detects_a_vertical_edge() {
        let src =
            VecStream::<f32>::single_sector(
                "e",
                lattice(10, 6),
                0,
                |c, _| {
                    if c < 5 {
                        0.0
                    } else {
                        1.0
                    }
                },
            );
        let mut op = FocalTransform::new(src, FocalFunc::Sobel, 3);
        let pts = op.drain_points();
        for p in &pts {
            let on_edge = p.cell.col == 4 || p.cell.col == 5;
            if on_edge {
                assert!(p.value > 2.0, "edge response at {:?}: {}", p.cell, p.value);
            } else if p.cell.col >= 1 && p.cell.col <= 8 {
                assert!(p.value < 1e-6, "flat response at {:?}: {}", p.cell, p.value);
            }
        }
    }

    #[test]
    fn laplacian_of_linear_field_is_zero() {
        let mut op = FocalTransform::new(ramp(10, 6), FocalFunc::Laplacian, 3);
        let pts = op.drain_points();
        for p in pts.iter().filter(|p| p.cell.col >= 1 && p.cell.col <= 8) {
            assert!(p.value.abs() < 1e-6, "{:?}: {}", p.cell, p.value);
        }
    }

    #[test]
    fn min_max_are_morphological() {
        let src = VecStream::<f32>::single_sector("m", lattice(8, 8), 0, |c, r| {
            if c == 4 && r == 4 {
                10.0
            } else {
                1.0
            }
        });
        let mut dilate = FocalTransform::new(src, FocalFunc::Max, 3);
        let pts = dilate.drain_points();
        let hot = pts.iter().filter(|p| p.value == 10.0).count();
        assert_eq!(hot, 9, "dilation grows the peak to its 3x3 neighborhood");
    }

    #[test]
    fn median_removes_salt_noise() {
        let src = VecStream::<f32>::single_sector("n", lattice(9, 9), 0, |c, r| {
            if (c + r) % 7 == 3 && c % 4 == 1 {
                99.0
            } else {
                1.0
            }
        });
        let mut op = FocalTransform::new(src, FocalFunc::Median, 3);
        let pts = op.drain_points();
        assert!(pts.iter().all(|p| p.value == 1.0), "isolated spikes vanish");
    }

    #[test]
    fn buffer_is_a_row_band_not_the_frame() {
        let mut short = FocalTransform::new(ramp(64, 8), FocalFunc::Mean, 5);
        let _ = short.drain_points();
        let mut tall = FocalTransform::new(ramp(64, 64), FocalFunc::Mean, 5);
        let _ = tall.drain_points();
        let ps = short.op_stats().buffered_points_peak;
        let pt = tall.op_stats().buffered_points_peak;
        assert_eq!(ps, pt, "peak buffer independent of frame height");
        assert!(pt <= 64 * 7, "≈ k+2 rows, got {pt}");
    }

    #[test]
    fn output_covers_every_cell_exactly_once() {
        let mut op = FocalTransform::new(ramp(12, 7), FocalFunc::Mean, 3);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 12 * 7);
        let mut seen = std::collections::HashSet::new();
        for p in pts {
            assert!(seen.insert((p.cell.col, p.cell.row)));
        }
    }

    #[test]
    fn even_kernel_is_rounded_up_to_odd() {
        let op = FocalTransform::new(ramp(8, 8), FocalFunc::Mean, 4);
        assert_eq!(op.k, 5);
        let op = FocalTransform::new(ramp(8, 8), FocalFunc::Sobel, 9);
        assert_eq!(op.k, 3, "sobel is fixed 3x3");
    }

    #[test]
    fn multi_sector_state_resets() {
        let src = VecStream::<f32>::sectors("s", lattice(6, 6), 3, |s, _, _| s as f64);
        let mut op = FocalTransform::new(src, FocalFunc::Mean, 3);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 3 * 36);
        // Each sector is constant, so means equal the sector value.
        for (i, p) in pts.iter().enumerate() {
            let sector = i / 36;
            assert!((f64::from(p.value) - sector as f64).abs() < 1e-6);
        }
        assert_eq!(op.op_stats().buffered_points, 0);
    }
}
