//! Re-projection between coordinate systems (§3.2, Fig. 2b).
//!
//! "From a geographic application point of view, an important
//! functionality is to re-project geospatial data from one coordinate
//! system to another one … such types of spatial transform operators may
//! block for a considerable amount of time, as the computation of the
//! value of a point y ∈ Y may require any number of points from X. An
//! implementation … can be again tailored by utilizing metadata about the
//! spatial extent of the current scan sector."
//!
//! This operator implements both behaviors:
//!
//! * **metadata-assisted** (default): on `SectorStart` it derives the
//!   output lattice and, per output row, the input-row window required to
//!   interpolate it; it then emits each output row as soon as its window
//!   of input rows has arrived and evicts rows no longer needed. Peak
//!   buffering is a narrow band of input rows.
//! * **blocking** (`use_sector_metadata = false`): it holds *all* input
//!   rows until `SectorEnd`, the behavior the paper warns about; the F2
//!   experiment contrasts the two buffer profiles.

use crate::model::{Element, FrameEnd, FrameInfo, GeoStream, SectorEnd, SectorInfo, StreamSchema};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox, Crs, LatticeGeoref, Projection, Rect};
use geostreams_raster::resample::{sample_source, Kernel, SampleSource};
use geostreams_raster::Pixel;
use std::collections::VecDeque;

/// Configuration for [`Reproject`].
#[derive(Debug, Clone)]
pub struct ReprojectConfig {
    /// Target coordinate system.
    pub to: Crs,
    /// Interpolation kernel.
    pub kernel: Kernel,
    /// Use scan-sector metadata to bound buffering (§3.2). When `false`
    /// the operator blocks until `SectorEnd`.
    pub use_sector_metadata: bool,
    /// Explicit output lattice; when `None` one is derived per sector
    /// "corresponding in size and aspect to the lattice of the original
    /// point set".
    pub output_lattice: Option<LatticeGeoref>,
    /// Extra input rows of safety margin around each output row's window.
    pub safety_rows: u32,
}

impl ReprojectConfig {
    /// Default configuration targeting `to`.
    pub fn new(to: Crs) -> Self {
        ReprojectConfig {
            to,
            kernel: Kernel::Bilinear,
            use_sector_metadata: true,
            output_lattice: None,
            safety_rows: 2,
        }
    }

    /// Sets the kernel (builder style).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Disables sector-metadata assistance (the blocking variant).
    pub fn blocking(mut self) -> Self {
        self.use_sector_metadata = false;
        self
    }
}

/// Streaming window of buffered input rows.
struct RowWindow<V> {
    /// `rows[i]` = input row `first_row + i`, when still buffered.
    rows: VecDeque<Option<Vec<V>>>,
    first_row: u32,
    width: u32,
    height: u32,
}

impl<V: Pixel> RowWindow<V> {
    fn new(width: u32, height: u32) -> Self {
        RowWindow { rows: VecDeque::new(), first_row: 0, width, height }
    }

    fn ensure_row(&mut self, row: u32) -> &mut Vec<V> {
        while self.first_row + (self.rows.len() as u32) <= row {
            self.rows.push_back(None);
        }
        let idx = (row - self.first_row) as usize;
        self.rows[idx].get_or_insert_with(|| vec![V::default(); self.width as usize])
    }

    fn set(&mut self, cell: Cell, v: V) {
        if cell.row < self.first_row || cell.col >= self.width {
            return; // row already evicted (out-of-order input) or OOB
        }
        let col = cell.col as usize;
        self.ensure_row(cell.row)[col] = v;
    }

    /// Drops buffered rows strictly below `row`. Returns points freed.
    fn evict_below(&mut self, row: u32) -> u64 {
        let mut freed = 0u64;
        while self.first_row < row {
            match self.rows.pop_front() {
                Some(Some(r)) => freed += r.len() as u64,
                Some(None) => {}
                None => break,
            }
            self.first_row += 1;
        }
        freed
    }

    fn buffered_points(&self) -> u64 {
        self.rows.iter().flatten().map(|r| r.len() as u64).sum()
    }
}

impl<V: Pixel> SampleSource for RowWindow<V> {
    fn at(&self, col: i64, row: i64) -> f64 {
        let col = col.clamp(0, i64::from(self.width) - 1) as usize;
        let row = row.clamp(0, i64::from(self.height) - 1) as u32;
        // Clamp the row into the buffered window.
        let last = self.first_row + (self.rows.len().max(1) as u32) - 1;
        let row = row.clamp(self.first_row, last);
        match self.rows.get((row - self.first_row) as usize) {
            Some(Some(r)) => r[col].to_f64(),
            _ => 0.0,
        }
    }
}

/// Per-sector plan for the metadata-assisted emission schedule.
struct SectorPlan {
    in_lattice: LatticeGeoref,
    out_lattice: LatticeGeoref,
    /// For each output row: inclusive input-row window `(lo, hi)` needed
    /// to interpolate it, or `None` when the row is entirely unmappable.
    needed: Vec<Option<(u32, u32)>>,
    /// `min_needed_from[i]` = smallest `needed.lo` over output rows
    /// `i..` — the eviction watermark once row `i` is next to emit.
    min_needed_from: Vec<u32>,
    /// Next output row to emit.
    cursor: u32,
    /// Number of leading input rows fully received.
    rows_complete: u32,
    sector_id: u64,
    timestamp: crate::model::Timestamp,
}

/// The re-projection operator `G ∘ f_spat` across coordinate systems.
pub struct Reproject<S: GeoStream> {
    input: S,
    config: ReprojectConfig,
    from_proj: Box<dyn Projection>,
    to_proj: Box<dyn Projection>,
    plan: Option<SectorPlan>,
    window: Option<RowWindow<S::V>>,
    queue: VecDeque<Element<S::V>>,
    next_frame_id: u64,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> Reproject<S> {
    /// Creates the re-projection; fails if either CRS has no projection.
    pub fn new(input: S, config: ReprojectConfig) -> crate::Result<Self> {
        let from_crs = input.schema().crs;
        let from_proj = from_crs.projection()?;
        let to_proj = config.to.projection()?;
        let mut schema = input.schema().renamed(format!("reproject[{}->{}]", from_crs, config.to));
        schema.crs = config.to;
        schema.sector_lattice = None;
        Ok(Reproject {
            input,
            config,
            from_proj,
            to_proj,
            plan: None,
            window: None,
            queue: VecDeque::new(),
            next_frame_id: 0,
            stats: OpStats::default(),
            schema,
        })
    }

    /// Maps an output-lattice cell to fractional input-lattice
    /// coordinates; `None` when the point is unmappable (e.g. beyond the
    /// geostationary limb).
    fn out_cell_to_in_frac(&self, plan: &SectorPlan, cell: Cell) -> Option<(f64, f64)> {
        let w = plan.out_lattice.cell_to_world(cell);
        let ll = self.to_proj.inverse(w).ok()?;
        let xy = self.from_proj.forward(ll).ok()?;
        Some(plan.in_lattice.world_to_fractional(xy))
    }

    /// Derives the output lattice for a sector: the input extent mapped
    /// into the target CRS, gridded at the input dimensions.
    fn derive_out_lattice(&self, in_lattice: &LatticeGeoref) -> Option<LatticeGeoref> {
        if let Some(explicit) = self.config.output_lattice {
            return Some(explicit);
        }
        let bbox = in_lattice.world_bbox();
        let mut out = Rect::empty();
        let samples = bbox.boundary_samples(16);
        for s in samples {
            let Ok(ll) = self.from_proj.inverse(s) else { continue };
            let Ok(p) = self.to_proj.forward(ll) else { continue };
            out = out.union(&Rect::new(p.x, p.y, p.x, p.y));
        }
        if out.is_empty() || out.area() <= 0.0 {
            return None;
        }
        Some(LatticeGeoref::north_up(self.config.to, out, in_lattice.width, in_lattice.height))
    }

    /// Computes the per-output-row input windows.
    fn compute_needed(&self, plan: &mut SectorPlan) {
        let support = self.config.kernel.support() + self.config.safety_rows;
        let w = plan.out_lattice.width;
        let step = (w / 16).max(1);
        let in_h = plan.in_lattice.height;
        for out_row in 0..plan.out_lattice.height {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut col = 0;
            while col < w {
                if let Some((_, fr)) = self.out_cell_to_in_frac(plan, Cell::new(col, out_row)) {
                    lo = lo.min(fr);
                    hi = hi.max(fr);
                }
                col += step;
            }
            // Always include the last column.
            if w > 0 {
                if let Some((_, fr)) = self.out_cell_to_in_frac(plan, Cell::new(w - 1, out_row)) {
                    lo = lo.min(fr);
                    hi = hi.max(fr);
                }
            }
            plan.needed.push(if lo.is_finite() {
                let lo_row = (lo.floor() as i64 - i64::from(support)).max(0) as u32;
                let hi_row = ((hi.ceil() as i64 + i64::from(support)).max(0) as u32)
                    .min(in_h.saturating_sub(1));
                Some((lo_row.min(in_h.saturating_sub(1)), hi_row))
            } else {
                None
            });
        }
        // Suffix minima for eviction.
        plan.min_needed_from = vec![0; plan.needed.len() + 1];
        let mut running = in_h; // nothing needed after the last row
        plan.min_needed_from[plan.needed.len()] = running;
        for i in (0..plan.needed.len()).rev() {
            if let Some((lo, _)) = plan.needed[i] {
                running = running.min(lo);
            }
            plan.min_needed_from[i] = running;
        }
    }

    /// Emits every output row whose input window is satisfied (or all
    /// remaining rows when `force` at sector end).
    fn emit_ready_rows(&mut self, force: bool) {
        let Some(mut plan) = self.plan.take() else { return };
        let Some(window) = self.window.take() else {
            self.plan = Some(plan);
            return;
        };
        let mut window = window;
        while (plan.cursor as usize) < plan.needed.len() {
            let idx = plan.cursor as usize;
            let ready = match plan.needed[idx] {
                None => true, // nothing mappable: emit an empty row (skip)
                Some((_, hi)) => force || plan.rows_complete > hi,
            };
            if !ready {
                break;
            }
            if let Some((_, _)) = plan.needed[idx] {
                self.emit_out_row(&plan, &window, plan.cursor);
            }
            plan.cursor += 1;
            // Evict input rows no longer needed by any remaining out row.
            let watermark = plan.min_needed_from[plan.cursor as usize];
            let freed = window.evict_below(watermark);
            self.stats.buffer_shrink(freed, freed * S::V::BYTES as u64);
        }
        self.plan = Some(plan);
        self.window = Some(window);
    }

    /// Emits one output row as a frame.
    fn emit_out_row(&mut self, plan: &SectorPlan, window: &RowWindow<S::V>, out_row: u32) {
        let w = plan.out_lattice.width;
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        let mut emitted_any = false;
        let mut row_elems: Vec<Element<S::V>> = Vec::with_capacity(w as usize + 2);
        for col in 0..w {
            let Some((fc, fr)) = self.out_cell_to_in_frac(plan, Cell::new(col, out_row)) else {
                continue;
            };
            // Outside the input lattice entirely: no data for this cell.
            if fc < -0.5
                || fr < -0.5
                || fc > f64::from(plan.in_lattice.width) - 0.5
                || fr > f64::from(plan.in_lattice.height) - 0.5
            {
                continue;
            }
            let v = sample_source(window, fc, fr, self.config.kernel);
            row_elems.push(Element::point(Cell::new(col, out_row), S::V::from_f64(v)));
            emitted_any = true;
        }
        if emitted_any {
            self.stats.frames_out += 1;
            self.queue.push_back(Element::FrameStart(FrameInfo {
                frame_id,
                sector_id: plan.sector_id,
                timestamp: plan.timestamp,
                cells: CellBox::new(0, out_row, w.saturating_sub(1), out_row),
                synth_ns: crate::obs::now_ns(),
            }));
            self.stats.points_out += row_elems.len() as u64;
            self.queue.extend(row_elems);
            self.queue
                .push_back(Element::FrameEnd(FrameEnd { frame_id, sector_id: plan.sector_id }));
        }
    }
}

impl<S: GeoStream> GeoStream for Reproject<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            match el {
                Element::SectorStart(si) => {
                    let out_lattice = match self.derive_out_lattice(&si.lattice) {
                        Some(l) => l,
                        None => {
                            // Sector invisible in the target CRS.
                            self.plan = None;
                            self.window = None;
                            continue;
                        }
                    };
                    let mut plan = SectorPlan {
                        in_lattice: si.lattice,
                        out_lattice,
                        needed: Vec::new(),
                        min_needed_from: Vec::new(),
                        cursor: 0,
                        rows_complete: 0,
                        sector_id: si.sector_id,
                        timestamp: si.timestamp,
                    };
                    if self.config.use_sector_metadata {
                        self.compute_needed(&mut plan);
                    } else {
                        // Blocking variant: every out row "needs" the
                        // whole sector.
                        let last = si.lattice.height.saturating_sub(1);
                        plan.needed = vec![Some((0, last)); plan.out_lattice.height as usize];
                        plan.min_needed_from = vec![0; plan.needed.len() + 1];
                        if let Some(slot) = plan.min_needed_from.last_mut() {
                            *slot = si.lattice.height;
                        }
                    }
                    self.window = Some(RowWindow::new(si.lattice.width, si.lattice.height));
                    self.queue.push_back(Element::SectorStart(SectorInfo {
                        lattice: plan.out_lattice,
                        ..si.clone()
                    }));
                    self.plan = Some(plan);
                }
                Element::FrameStart(_) => {
                    self.stats.frames_in += 1;
                    self.stats.stalls += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    if let Some(w) = &mut self.window {
                        let before = w.buffered_points();
                        w.set(p.cell, p.value);
                        let after = w.buffered_points();
                        if after > before {
                            self.stats
                                .buffer_grow(after - before, (after - before) * S::V::BYTES as u64);
                        }
                    }
                }
                Element::FrameEnd(fe) => {
                    let _ = fe;
                    if let Some(plan) = &mut self.plan {
                        if let Some(w) = &self.window {
                            // Rows complete in arrival order: advance the
                            // completion watermark to the highest fully
                            // buffered prefix.
                            let mut complete = plan.rows_complete;
                            while complete < plan.in_lattice.height {
                                let idx = complete.checked_sub(w.first_row);
                                match idx {
                                    None => {
                                        complete += 1; // already evicted
                                    }
                                    Some(i) => {
                                        if w.rows.get(i as usize).map(|r| r.is_some()) == Some(true)
                                        {
                                            complete += 1;
                                        } else {
                                            break;
                                        }
                                    }
                                }
                            }
                            plan.rows_complete = complete;
                        }
                    }
                    self.emit_ready_rows(false);
                }
                Element::SectorEnd(se) => {
                    self.emit_ready_rows(true);
                    if let Some(w) = &mut self.window {
                        let freed = w.buffered_points();
                        self.stats.buffer_shrink(freed, freed * S::V::BYTES as u64);
                    }
                    self.plan = None;
                    self.window = None;
                    self.queue.push_back(Element::SectorEnd(SectorEnd { sector_id: se.sector_id }));
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Re-projection resamples into a brand-new output lattice: it emits a
/// fresh marker sequence and its row-band window assumes bracketed,
/// lattice-ordered input.
pub fn reproject_contract() -> crate::ops::ProtocolContract {
    crate::ops::ProtocolContract::resynthesizing("reproject")
}

impl<S: GeoStream> Reproject<S> {
    /// Protocol contract (see [`reproject_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        reproject_contract()
    }

    /// §3.2: re-projection "may block arbitrarily" unless scan-sector
    /// metadata bounds the needed input neighborhood to a narrow row
    /// band around the current scanline.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        if self.config.use_sector_metadata {
            crate::ops::BlockingClass::BoundedRows(
                2 * (self.config.kernel.support() + self.config.safety_rows) + 1,
            )
        } else {
            crate::ops::BlockingClass::Unbounded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::Coord as GeoCoord;

    /// A lat/lon sector over Northern California.
    fn latlon_lattice(w: u32, h: u32) -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), w, h)
    }

    /// Value = longitude in degrees (a smooth geographic field we can
    /// check after re-projection).
    fn lon_field(lattice: LatticeGeoref) -> VecStream<f32> {
        VecStream::single_sector("src", lattice, 0, move |c, r| {
            lattice.cell_to_world(Cell::new(c, r)).x
        })
    }

    #[test]
    fn latlon_to_utm_preserves_field_values() {
        let lattice = latlon_lattice(32, 32);
        let src = lon_field(lattice);
        let cfg = ReprojectConfig::new(Crs::utm(10, true)).kernel(Kernel::Bilinear);
        let mut op = Reproject::new(src, cfg).unwrap();
        let mut out_lattice = None;
        let mut pts = Vec::new();
        while let Some(el) = op.next_element() {
            match el {
                Element::SectorStart(si) => out_lattice = Some(si.lattice),
                Element::Point(p) => pts.push(p),
                _ => {}
            }
        }
        let out_lattice = out_lattice.expect("sector emitted");
        assert_eq!(out_lattice.crs, Crs::utm(10, true));
        assert!(!pts.is_empty());
        // Every output point's value must equal (approximately) the
        // longitude of its own location — the field is preserved.
        let utm = Crs::utm(10, true);
        let mut checked = 0;
        for p in &pts {
            let w = out_lattice.cell_to_world(p.cell);
            let ll = utm.inverse(w).unwrap();
            // Ignore cells near the input border (clamping effects).
            if ll.x < -123.8 || ll.x > -120.2 || ll.y < 36.2 || ll.y > 39.8 {
                continue;
            }
            assert!(
                (f64::from(p.value) - ll.x).abs() < 0.05,
                "cell {:?}: value {} vs lon {}",
                p.cell,
                p.value,
                ll.x
            );
            checked += 1;
        }
        assert!(checked > 200, "checked {checked} interior points");
    }

    #[test]
    fn streaming_buffer_smaller_than_blocking() {
        let lattice = latlon_lattice(48, 48);
        let streaming = {
            let mut op =
                Reproject::new(lon_field(lattice), ReprojectConfig::new(Crs::utm(10, true)))
                    .unwrap();
            let _ = op.drain_points();
            op.op_stats()
        };
        let blocking = {
            let mut op = Reproject::new(
                lon_field(lattice),
                ReprojectConfig::new(Crs::utm(10, true)).blocking(),
            )
            .unwrap();
            let _ = op.drain_points();
            op.op_stats()
        };
        assert_eq!(blocking.buffered_points_peak, 48 * 48, "blocking buffers the whole sector");
        assert!(
            streaming.buffered_points_peak < blocking.buffered_points_peak / 2,
            "metadata-assisted ({}) should be well below blocking ({})",
            streaming.buffered_points_peak,
            blocking.buffered_points_peak
        );
        // Both produce the same number of output points.
        assert_eq!(streaming.points_out, blocking.points_out);
    }

    #[test]
    fn identity_reprojection_roundtrips_values() {
        let lattice = latlon_lattice(16, 16);
        let src = VecStream::<f32>::single_sector("src", lattice, 0, |c, r| f64::from(c + r));
        let cfg = ReprojectConfig {
            to: Crs::LatLon,
            kernel: Kernel::Nearest,
            use_sector_metadata: true,
            output_lattice: Some(lattice),
            safety_rows: 1,
        };
        let mut op = Reproject::new(src, cfg).unwrap();
        let pts = op.drain_points();
        assert_eq!(pts.len(), 256);
        for p in pts {
            assert_eq!(f64::from(p.value), f64::from(p.cell.col + p.cell.row));
        }
    }

    #[test]
    fn geostationary_to_latlon_recovers_geography() {
        // Simulate a GOES-style sector in geostationary coordinates whose
        // value encodes latitude; after re-projection to lat/lon, values
        // must match each output cell's latitude.
        let geos = Crs::geostationary(-75.0);
        // A sector covering the south-eastern US viewed from GOES-East.
        let corner_a = geos.forward(GeoCoord::new(-90.0, 25.0)).unwrap();
        let corner_b = geos.forward(GeoCoord::new(-80.0, 35.0)).unwrap();
        let bounds = Rect::new(corner_a.x, corner_a.y, corner_b.x, corner_b.y);
        let lattice = LatticeGeoref::north_up(geos, bounds, 40, 40);
        let src = VecStream::<f32>::single_sector("goes", lattice, 0, move |c, r| {
            let w = lattice.cell_to_world(Cell::new(c, r));
            geos.inverse(w).map(|ll| ll.y).unwrap_or(0.0)
        });
        let mut op =
            Reproject::new(src, ReprojectConfig::new(Crs::LatLon).kernel(Kernel::Bilinear))
                .unwrap();
        let mut out_lattice = None;
        let mut pts = Vec::new();
        while let Some(el) = op.next_element() {
            match el {
                Element::SectorStart(si) => out_lattice = Some(si.lattice),
                Element::Point(p) => pts.push(p),
                _ => {}
            }
        }
        let out = out_lattice.unwrap();
        let mut checked = 0;
        for p in &pts {
            let w = out.cell_to_world(p.cell);
            // Interior only.
            if w.x < -89.5 || w.x > -80.5 || w.y < 25.5 || w.y > 34.5 {
                continue;
            }
            assert!(
                (f64::from(p.value) - w.y).abs() < 0.2,
                "cell {:?}: value {} vs lat {}",
                p.cell,
                p.value,
                w.y
            );
            checked += 1;
        }
        assert!(checked > 300, "checked {checked}");
    }

    #[test]
    fn invisible_sector_is_dropped() {
        // A lat/lon sector on the far side of the Earth from GOES-East.
        let lattice =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(100.0, -5.0, 110.0, 5.0), 8, 8);
        let src = VecStream::<f32>::single_sector("src", lattice, 0, |_, _| 1.0);
        let mut op = Reproject::new(src, ReprojectConfig::new(Crs::geostationary(-75.0))).unwrap();
        let els = op.drain_elements();
        assert!(els.iter().all(|e| !e.is_point()), "no points should map");
    }

    #[test]
    fn schema_crs_is_target() {
        let src = lon_field(latlon_lattice(4, 4));
        let op = Reproject::new(src, ReprojectConfig::new(Crs::utm(10, true))).unwrap();
        assert_eq!(op.schema().crs, Crs::utm(10, true));
        assert!(op.schema().name.contains("reproject"));
    }
}
