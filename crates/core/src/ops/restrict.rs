//! Stream restrictions (§3.1): spatial, temporal, and value.
//!
//! "It is obvious that all three restriction operators can process
//! incoming image data on a point-by-point basis and thus can be
//! evaluated without storage for any intermediate point data. That is,
//! all restriction operators are non-blocking and have constant cost per
//! point, independent of the size of the input stream." — the
//! implementations below maintain **no** point buffers (only O(1)
//! per-frame metadata), and experiment E1 verifies the flat per-point
//! cost.

use crate::model::{ChunkOrMarker, Element, FrameInfo, GeoStream, Marker, StreamSchema, TimeSet};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{CellBox, LatticeGeoref, Region};
use std::collections::VecDeque;

/// Lazily-opened output frame: restrictions drop entire frames that end
/// up empty, so `FrameStart` is withheld until the first surviving point.
#[derive(Debug, Default)]
struct LazyFrame {
    pending: Option<FrameInfo>,
    open: bool,
}

impl LazyFrame {
    fn begin(&mut self, info: FrameInfo) {
        self.pending = Some(info);
        self.open = false;
    }

    /// Called before emitting a point; returns the `FrameStart` to emit
    /// first, if the frame is not open yet.
    fn ensure_open<V>(&mut self) -> Option<Element<V>> {
        self.ensure_open_info().map(Element::FrameStart)
    }

    /// Marker-typed form of [`LazyFrame::ensure_open`] for chunked paths.
    fn ensure_open_info(&mut self) -> Option<FrameInfo> {
        if self.open {
            return None;
        }
        let info = self.pending.take()?;
        self.open = true;
        Some(info)
    }

    /// Called on input `FrameEnd`; returns whether the end should be
    /// forwarded (i.e. the frame was opened).
    fn close(&mut self) -> bool {
        let was_open = self.open;
        self.open = false;
        self.pending = None;
        was_open
    }
}

/// Spatial restriction `G|R` (Definition 6).
///
/// The region is interpreted in the stream's CRS. On every `SectorStart`
/// the region is converted into a lattice cell footprint **once**; each
/// point is then tested with two integer comparisons (plus an exact
/// geometric test for non-rectangular regions).
pub struct SpatialRestrict<S: GeoStream> {
    input: S,
    region: Region,
    /// Cell footprint of the region within the current sector lattice.
    footprint: Option<CellBox>,
    /// Whether the per-point exact `Region::contains` test is required.
    exact: bool,
    lattice: Option<LatticeGeoref>,
    frame: LazyFrame,
    queue: VecDeque<Element<S::V>>,
    cqueue: VecDeque<ChunkOrMarker<S::V>>,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> SpatialRestrict<S> {
    /// Restricts the stream to `region` (coordinates in the stream CRS).
    pub fn new(input: S, region: Region) -> Self {
        let schema = input.schema().renamed("restrict_space");
        let exact = !region.is_rectangular();
        SpatialRestrict {
            input,
            region,
            footprint: None,
            exact,
            lattice: None,
            frame: LazyFrame::default(),
            queue: VecDeque::new(),
            cqueue: VecDeque::new(),
            stats: OpStats::default(),
            schema,
        }
    }

    /// The restriction region.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Marker transition shared by the scalar and chunked paths; returns
    /// the marker to forward, if any.
    fn chunk_marker(&mut self, m: Marker) -> Option<Marker> {
        match m {
            Marker::SectorStart(si) => {
                self.footprint = si.lattice.footprint_of_region(&self.region);
                self.lattice = Some(si.lattice);
                Some(Marker::SectorStart(si))
            }
            Marker::FrameStart(mut fi) => {
                self.stats.frames_in += 1;
                match self.footprint.and_then(|fp| fp.intersect(&fi.cells)) {
                    Some(isect) => {
                        fi.cells = isect;
                        self.frame.begin(fi);
                    }
                    None => {
                        self.frame.pending = None;
                        self.frame.open = false;
                    }
                }
                None
            }
            Marker::FrameEnd(fe) => {
                if self.frame.close() {
                    Some(Marker::FrameEnd(fe))
                } else {
                    self.stats.stalls += 1;
                    None
                }
            }
            Marker::SectorEnd(se) => Some(Marker::SectorEnd(se)),
        }
    }
}

impl<S: GeoStream> GeoStream for SpatialRestrict<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            match el {
                Element::SectorStart(si) => {
                    self.footprint = si.lattice.footprint_of_region(&self.region);
                    self.lattice = Some(si.lattice);
                    return Some(Element::SectorStart(si));
                }
                Element::FrameStart(mut fi) => {
                    self.stats.frames_in += 1;
                    match self.footprint.and_then(|fp| fp.intersect(&fi.cells)) {
                        Some(isect) => {
                            fi.cells = isect;
                            self.frame.begin(fi);
                        }
                        None => {
                            // Whole frame outside the region: swallow it.
                            self.frame.pending = None;
                            self.frame.open = false;
                        }
                    }
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    let Some(fp) = self.footprint else { continue };
                    if !fp.contains(p.cell) {
                        continue;
                    }
                    if self.frame.pending.is_none() && !self.frame.open {
                        // Point of a swallowed frame (shouldn't pass the
                        // footprint test, but stay safe).
                        continue;
                    }
                    if self.exact {
                        let Some(lat) = &self.lattice else { continue };
                        if !self.region.contains(lat.cell_to_world(p.cell)) {
                            continue;
                        }
                    }
                    if let Some(fs) = self.frame.ensure_open() {
                        self.stats.frames_out += 1;
                        self.queue.push_back(fs);
                    }
                    self.stats.points_out += 1;
                    self.queue.push_back(Element::Point(p));
                }
                Element::FrameEnd(fe) => {
                    if self.frame.close() {
                        return Some(Element::FrameEnd(fe));
                    }
                    self.stats.stalls += 1;
                }
                Element::SectorEnd(se) => return Some(Element::SectorEnd(se)),
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<S::V>> {
        loop {
            if let Some(item) = self.cqueue.pop_front() {
                return Some(item);
            }
            match self.input.next_chunk(budget)? {
                ChunkOrMarker::Marker(m) => {
                    if let Some(out) = self.chunk_marker(m) {
                        return Some(ChunkOrMarker::Marker(out));
                    }
                }
                ChunkOrMarker::Chunk(mut c) => {
                    // Batched accounting: one add per run, not per point.
                    self.stats.points_in += c.points.len() as u64;
                    let end = c.end.take();
                    // Frame state is constant across a run (runs never
                    // cross markers), so the per-point guards hoist out.
                    let swallowed = self.frame.pending.is_none() && !self.frame.open;
                    match self.footprint {
                        Some(_) if swallowed => c.points.clear(),
                        Some(fp) if self.exact => match self.lattice {
                            Some(lat) => {
                                let region = &self.region;
                                c.points.retain(|p| {
                                    fp.contains(p.cell)
                                        && region.contains(lat.cell_to_world(p.cell))
                                });
                            }
                            None => c.points.clear(),
                        },
                        Some(fp) => c.points.retain(|p| fp.contains(p.cell)),
                        None => c.points.clear(),
                    }
                    if !c.points.is_empty() {
                        self.stats.points_out += c.points.len() as u64;
                        if let Some(fi) = self.frame.ensure_open_info() {
                            self.stats.frames_out += 1;
                            self.cqueue.push_back(ChunkOrMarker::Marker(Marker::FrameStart(fi)));
                        }
                    }
                    // The trailing marker is processed *after* the run's
                    // points, exactly as the scalar path orders it.
                    let end_keep = end.and_then(|m| self.chunk_marker(m));
                    if c.points.is_empty() {
                        c.recycle();
                        if let Some(m) = end_keep {
                            self.cqueue.push_back(ChunkOrMarker::Marker(m));
                        }
                    } else {
                        c.end = end_keep;
                        self.cqueue.push_back(ChunkOrMarker::Chunk(c));
                    }
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Temporal restriction `G|T` (Definition 7).
///
/// Because every point of a frame shares one timestamp, the test runs
/// once per frame, not per point.
pub struct TemporalRestrict<S: GeoStream> {
    input: S,
    times: TimeSet,
    passing: bool,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> TemporalRestrict<S> {
    /// Restricts the stream to timestamps in `times`.
    pub fn new(input: S, times: TimeSet) -> Self {
        let schema = input.schema().renamed("restrict_time");
        TemporalRestrict { input, times, passing: false, stats: OpStats::default(), schema }
    }

    /// Marker transition shared by the scalar and chunked paths.
    fn chunk_marker(&mut self, m: Marker) -> Option<Marker> {
        match m {
            Marker::FrameStart(fi) => {
                self.stats.frames_in += 1;
                self.passing = self.times.contains(fi.timestamp);
                if self.passing {
                    self.stats.frames_out += 1;
                    Some(Marker::FrameStart(fi))
                } else {
                    self.stats.stalls += 1;
                    None
                }
            }
            Marker::FrameEnd(fe) => {
                if self.passing {
                    self.passing = false;
                    Some(Marker::FrameEnd(fe))
                } else {
                    None
                }
            }
            other => Some(other),
        }
    }
}

impl<S: GeoStream> GeoStream for TemporalRestrict<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            let el = self.input.next_element()?;
            match el {
                Element::FrameStart(fi) => {
                    self.stats.frames_in += 1;
                    self.passing = self.times.contains(fi.timestamp);
                    if self.passing {
                        self.stats.frames_out += 1;
                        return Some(Element::FrameStart(fi));
                    }
                    self.stats.stalls += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    if self.passing {
                        self.stats.points_out += 1;
                        return Some(Element::Point(p));
                    }
                }
                Element::FrameEnd(fe) => {
                    if self.passing {
                        self.passing = false;
                        return Some(Element::FrameEnd(fe));
                    }
                }
                other => return Some(other),
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<S::V>> {
        loop {
            match self.input.next_chunk(budget)? {
                ChunkOrMarker::Marker(m) => {
                    if let Some(out) = self.chunk_marker(m) {
                        return Some(ChunkOrMarker::Marker(out));
                    }
                }
                ChunkOrMarker::Chunk(mut c) => {
                    self.stats.points_in += c.points.len() as u64;
                    let end = c.end.take();
                    // The frame test ran at FrameStart; the whole run
                    // shares its verdict.
                    let keep = self.passing;
                    if keep {
                        self.stats.points_out += c.points.len() as u64;
                    } else {
                        c.points.clear();
                    }
                    let end_keep = end.and_then(|m| self.chunk_marker(m));
                    if c.points.is_empty() {
                        c.recycle();
                        if let Some(m) = end_keep {
                            return Some(ChunkOrMarker::Marker(m));
                        }
                    } else {
                        c.end = end_keep;
                        return Some(ChunkOrMarker::Chunk(c));
                    }
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Value restriction `G|V` (§3.1): keeps points whose value (in the
/// arithmetic domain) falls into any of the given inclusive ranges.
pub struct ValueRestrict<S: GeoStream> {
    input: S,
    ranges: Vec<(f64, f64)>,
    frame: LazyFrame,
    queue: VecDeque<Element<S::V>>,
    cqueue: VecDeque<ChunkOrMarker<S::V>>,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> ValueRestrict<S> {
    /// Restricts to values in `[lo, hi]`.
    pub fn range(input: S, lo: f64, hi: f64) -> Self {
        Self::ranges(input, vec![(lo, hi)])
    }

    /// Restricts to values in any of the inclusive ranges.
    pub fn ranges(input: S, ranges: Vec<(f64, f64)>) -> Self {
        let schema = input.schema().renamed("restrict_value");
        ValueRestrict {
            input,
            ranges,
            frame: LazyFrame::default(),
            queue: VecDeque::new(),
            cqueue: VecDeque::new(),
            stats: OpStats::default(),
            schema,
        }
    }

    /// Marker transition shared by the scalar and chunked paths.
    fn chunk_marker(&mut self, m: Marker) -> Option<Marker> {
        match m {
            Marker::FrameStart(fi) => {
                self.stats.frames_in += 1;
                self.frame.begin(fi);
                None
            }
            Marker::FrameEnd(fe) => {
                if self.frame.close() {
                    Some(Marker::FrameEnd(fe))
                } else {
                    self.stats.stalls += 1;
                    None
                }
            }
            other => Some(other),
        }
    }
}

impl<S: GeoStream> GeoStream for ValueRestrict<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        use geostreams_raster::Pixel;
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let el = self.input.next_element()?;
            match el {
                Element::FrameStart(fi) => {
                    self.stats.frames_in += 1;
                    self.frame.begin(fi);
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    let v = p.value.to_f64();
                    if self.ranges.iter().any(|&(lo, hi)| v >= lo && v <= hi) {
                        if let Some(fs) = self.frame.ensure_open() {
                            self.stats.frames_out += 1;
                            self.queue.push_back(fs);
                        }
                        self.stats.points_out += 1;
                        self.queue.push_back(Element::Point(p));
                    }
                }
                Element::FrameEnd(fe) => {
                    if self.frame.close() {
                        return Some(Element::FrameEnd(fe));
                    }
                    self.stats.stalls += 1;
                }
                other => return Some(other),
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<S::V>> {
        use geostreams_raster::Pixel;
        loop {
            if let Some(item) = self.cqueue.pop_front() {
                return Some(item);
            }
            match self.input.next_chunk(budget)? {
                ChunkOrMarker::Marker(m) => {
                    if let Some(out) = self.chunk_marker(m) {
                        return Some(ChunkOrMarker::Marker(out));
                    }
                }
                ChunkOrMarker::Chunk(mut c) => {
                    self.stats.points_in += c.points.len() as u64;
                    let end = c.end.take();
                    let ranges = &self.ranges;
                    c.points.retain(|p| {
                        let v = p.value.to_f64();
                        ranges.iter().any(|&(lo, hi)| v >= lo && v <= hi)
                    });
                    if !c.points.is_empty() {
                        self.stats.points_out += c.points.len() as u64;
                        if let Some(fi) = self.frame.ensure_open_info() {
                            self.stats.frames_out += 1;
                            self.cqueue.push_back(ChunkOrMarker::Marker(Marker::FrameStart(fi)));
                        }
                    }
                    let end_keep = end.and_then(|m| self.chunk_marker(m));
                    if c.points.is_empty() {
                        c.recycle();
                        if let Some(m) = end_keep {
                            self.cqueue.push_back(ChunkOrMarker::Marker(m));
                        }
                    } else {
                        c.end = end_keep;
                        self.cqueue.push_back(ChunkOrMarker::Chunk(c));
                    }
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// §3.1 restrictions are transparent forwarders: every marker and every
/// surviving point passes through in place, so the stream protocol of
/// the input is the stream protocol of the output.
pub fn restriction_contract(operator: &str) -> crate::ops::ProtocolContract {
    crate::ops::ProtocolContract::forwarding(operator)
}

impl<S: GeoStream> SpatialRestrict<S> {
    /// §3.1: restrictions are non-blocking, O(1) per point, zero buffering.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract: transparent forwarder (see [`restriction_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        restriction_contract("restrict_space")
    }
}

impl<S: GeoStream> TemporalRestrict<S> {
    /// §3.1: restrictions are non-blocking, O(1) per point, zero buffering.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract: transparent forwarder (see [`restriction_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        restriction_contract("restrict_time")
    }
}

impl<S: GeoStream> ValueRestrict<S> {
    /// §3.1: restrictions are non-blocking, O(1) per point, zero buffering.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract: transparent forwarder (see [`restriction_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        restriction_contract("restrict_value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Timestamp, VecStream};
    use geostreams_geo::{Cell, Crs, LatticeGeoref, Polygon, Rect};

    fn lattice() -> LatticeGeoref {
        // 10x10 cells over lon [0,10], lat [0,10]; row 0 at the top.
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 10.0, 10.0), 10, 10)
    }

    fn source() -> VecStream<f32> {
        VecStream::single_sector("src", lattice(), 0, |c, r| f64::from(c + 10 * r))
    }

    #[test]
    fn spatial_rect_keeps_only_inside() {
        let region = Region::Rect(Rect::new(0.0, 8.0, 3.0, 10.0)); // NW corner
        let mut op = SpatialRestrict::new(source(), region.clone());
        let pts = op.drain_points();
        // Rows 0..2 (lat in (8,10)), cols 0..2 have centers inside.
        for p in &pts {
            let w = lattice().cell_to_world(p.cell);
            assert!(region.contains(w), "{:?} -> {w} escaped the region", p.cell);
        }
        assert_eq!(pts.len(), 3 * 2); // col centers 0.5,1.5,2.5 x row centers 8.5,9.5
        let st = op.op_stats();
        assert_eq!(st.points_in, 100);
        assert_eq!(st.points_out, pts.len() as u64);
        assert_eq!(st.buffered_points_peak, 0, "restriction must not buffer points");
    }

    #[test]
    fn spatial_restrict_emits_no_empty_frames() {
        let region = Region::Rect(Rect::new(0.0, 9.0, 10.0, 10.0)); // top row only
        let mut op = SpatialRestrict::new(source(), region);
        let els = op.drain_elements();
        let frames = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        assert_eq!(frames, 1, "only the surviving row's frame is forwarded");
        // Frame bookkeeping is balanced.
        let ends = els.iter().filter(|e| matches!(e, Element::FrameEnd(_))).count();
        assert_eq!(frames, ends);
    }

    #[test]
    fn spatial_restrict_disjoint_region_drops_everything() {
        let region = Region::Rect(Rect::new(100.0, 100.0, 110.0, 110.0));
        let mut op = SpatialRestrict::new(source(), region);
        let els = op.drain_elements();
        assert!(els.iter().all(|e| !e.is_point()));
        // Sector metadata still flows (downstream operators need it).
        assert!(els.iter().any(|e| matches!(e, Element::SectorStart(_))));
    }

    #[test]
    fn spatial_restrict_polygon_is_exact() {
        // Triangle covering the lower-left half of the grid.
        let tri = Polygon::new(vec![
            geostreams_geo::Coord::new(0.0, 0.0),
            geostreams_geo::Coord::new(10.0, 0.0),
            geostreams_geo::Coord::new(0.0, 10.0),
        ])
        .unwrap();
        let region = Region::Polygon(tri.clone());
        let mut op = SpatialRestrict::new(source(), region);
        let pts = op.drain_points();
        for p in &pts {
            let w = lattice().cell_to_world(p.cell);
            assert!(tri.contains(w));
        }
        // Roughly half the 100 cells (minus the diagonal) survive.
        assert!(pts.len() > 35 && pts.len() < 50, "{} points", pts.len());
    }

    #[test]
    fn temporal_interval_keeps_matching_sectors() {
        let mut src: VecStream<f32> = VecStream::sectors("src", lattice(), 5, |s, _, _| s as f64);
        let _ = &mut src;
        let op = TemporalRestrict::new(src, TimeSet::Interval { lo: Some(1), hi: Some(3) });
        let mut op = op;
        let pts = op.drain_points();
        assert_eq!(pts.len(), 2 * 100); // sectors 1 and 2
        assert!(pts.iter().all(|p| p.value == 1.0 || p.value == 2.0));
        assert_eq!(op.op_stats().buffered_points_peak, 0);
    }

    #[test]
    fn temporal_restrict_forwards_frame_timestamps() {
        let src: VecStream<f32> = VecStream::sectors("src", lattice(), 4, |s, _, _| s as f64);
        let mut op = TemporalRestrict::new(src, TimeSet::Instants(vec![3]));
        let els = op.drain_elements();
        for el in &els {
            if let Element::FrameStart(fi) = el {
                assert_eq!(fi.timestamp, Timestamp::new(3));
            }
        }
    }

    #[test]
    fn value_restrict_filters_by_range() {
        let mut op = ValueRestrict::range(source(), 10.0, 19.0); // row 1 only
        let pts = op.drain_points();
        assert_eq!(pts.len(), 10);
        assert!(pts.iter().all(|p| p.cell.row == 1));
        assert_eq!(op.op_stats().buffered_points_peak, 0);
    }

    #[test]
    fn value_restrict_multiple_ranges() {
        let mut op = ValueRestrict::ranges(source(), vec![(0.0, 4.0), (95.0, 99.0)]);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 10);
    }

    #[test]
    fn restrictions_compose_and_stay_closed() {
        // Chaining restrictions yields a GeoStream again (closure).
        let region = Region::Rect(Rect::new(0.0, 0.0, 10.0, 10.0));
        let op = SpatialRestrict::new(source(), region);
        let op = ValueRestrict::range(op, 0.0, 50.0);
        let mut op = TemporalRestrict::new(op, TimeSet::Interval { lo: None, hi: None });
        let pts = op.drain_points();
        assert_eq!(pts.len(), 51);
        let mut report = Vec::new();
        op.collect_stats(&mut report);
        let names: Vec<&str> = report.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["src", "restrict_space", "restrict_value", "restrict_time"]);
    }

    #[test]
    fn spatial_restrict_cell_for_point_cheap_path() {
        // Rectangular region: exact flag must be off.
        let op = SpatialRestrict::new(source(), Region::Rect(Rect::new(0.0, 0.0, 5.0, 5.0)));
        assert!(!op.exact);
        let op2 = SpatialRestrict::new(
            source(),
            Region::Points { coords: vec![geostreams_geo::Coord::new(2.5, 2.5)], tolerance: 0.4 },
        );
        assert!(op2.exact);
    }

    #[test]
    fn enumerated_point_region_snaps_single_cell() {
        // Cell (2, 7) center is at lon 2.5, lat 2.5.
        let region =
            Region::Points { coords: vec![geostreams_geo::Coord::new(2.5, 2.5)], tolerance: 0.4 };
        let mut op = SpatialRestrict::new(source(), region);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].cell, Cell::new(2, 7));
    }
}
