//! Frame/image-scoped value stretches (§3.2).
//!
//! "In order to fully utilize the complete range of values in V, point
//! values can be scaled. Typical approaches include linear contrast
//! stretch, histogram equalization, and Gaussian stretch. In order to
//! perform a respective value transform on a point, information about
//! previous point values needs to be maintained … all points of that
//! frame need to be stored before they can be output with new point
//! values. Thus, the cost of a stretch transform operator is determined
//! by the size of the largest frame that can occur in G."
//!
//! The scope is configurable: [`StretchScope::Frame`] buffers one arrival
//! frame (a single row for row-by-row streams); [`StretchScope::Image`]
//! buffers the paper's *image* — all frames of one timestamp, which for a
//! GOES visible-band sector is the 20 840 × 10 820-point frame whose
//! ≈280 MB buffer the paper cites. Experiment E2 measures exactly this
//! buffer growth.

use crate::model::{Element, GeoStream, StreamSchema};
use crate::stats::{OpReport, OpStats};
use geostreams_raster::{Histogram, Pixel, RangeTracker};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which stretch is applied once the scope's statistics are complete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StretchMode {
    /// Linear contrast stretch onto `[out_lo, out_hi]`.
    Linear {
        /// Output low bound.
        out_lo: f64,
        /// Output high bound.
        out_hi: f64,
    },
    /// Histogram equalization onto `[0, 1]` using `bins` bins over the
    /// schema's nominal value range.
    HistEq {
        /// Number of histogram bins.
        bins: usize,
    },
    /// Gaussian stretch onto `[0, 1]`: ±`n_sigma` standard deviations
    /// cover the output range.
    Gaussian {
        /// Number of standard deviations mapped to the output extremes.
        n_sigma: f64,
    },
}

/// Unit of buffering for a stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StretchScope {
    /// Buffer one arrival frame (a row, for row-by-row streams).
    Frame,
    /// Buffer one *image* (Definition 4): all frames of one timestamp —
    /// the paper's costly case.
    #[default]
    Image,
}

/// The frame/image-scoped stretch operator. Output pixels are `f32`.
pub struct StretchTransform<S: GeoStream> {
    input: S,
    mode: StretchMode,
    scope: StretchScope,
    /// Elements of the current scope held until its statistics complete.
    held: Vec<Element<S::V>>,
    tracker: RangeTracker,
    hist: Option<Histogram>,
    /// Input nominal range used to (re)build the histogram each scope.
    hist_range: (f64, f64),
    queue: VecDeque<Element<f32>>,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> StretchTransform<S> {
    /// Creates a stretch with the given mode and scope.
    pub fn new(input: S, mode: StretchMode, scope: StretchScope) -> Self {
        let mut schema = input.schema().renamed(match scope {
            StretchScope::Frame => "stretch[frame]",
            StretchScope::Image => "stretch[image]",
        });
        schema.value_range = match mode {
            StretchMode::Linear { out_lo, out_hi } => (out_lo, out_hi),
            _ => (0.0, 1.0),
        };
        let (ilo, ihi) = input.schema().value_range;
        let hist_range = (ilo, if ihi > ilo { ihi } else { ilo + 1.0 });
        let hist = match mode {
            StretchMode::HistEq { bins } => {
                Some(Histogram::new(hist_range.0, hist_range.1, bins.max(2)))
            }
            _ => None,
        };
        StretchTransform {
            input,
            mode,
            scope,
            held: Vec::new(),
            tracker: RangeTracker::new(),
            hist,
            hist_range,
            queue: VecDeque::new(),
            stats: OpStats::default(),
            schema,
        }
    }

    fn reset_scope_stats(&mut self) {
        self.tracker = RangeTracker::new();
        if let StretchMode::HistEq { bins } = self.mode {
            self.hist = Some(Histogram::new(self.hist_range.0, self.hist_range.1, bins.max(2)));
        }
    }

    /// Applies the configured stretch to one value.
    fn map_value(&self, v: f64) -> f64 {
        match self.mode {
            StretchMode::Linear { out_lo, out_hi } => self.tracker.stretch(v, out_lo, out_hi),
            StretchMode::HistEq { .. } => {
                self.hist.as_ref().map_or(0.0, |h| h.equalize(v, 0.0, 1.0))
            }
            StretchMode::Gaussian { n_sigma } => {
                self.tracker.gaussian_stretch(v, 0.0, 1.0, n_sigma)
            }
        }
    }

    /// Emits the held scope with stretched values.
    fn flush_scope(&mut self) {
        let held = std::mem::take(&mut self.held);
        let released = held.iter().filter(|e| e.is_point()).count() as u64;
        self.stats.buffer_shrink(released, released * S::V::BYTES as u64);
        for el in held {
            match el {
                Element::Point(p) => {
                    self.stats.points_out += 1;
                    let v = self.map_value(p.value.to_f64());
                    self.queue.push_back(Element::point(p.cell, v as f32));
                }
                Element::FrameStart(fi) => {
                    self.stats.frames_out += 1;
                    self.queue.push_back(Element::FrameStart(fi));
                }
                Element::FrameEnd(fe) => self.queue.push_back(Element::FrameEnd(fe)),
                Element::SectorStart(si) => self.queue.push_back(Element::SectorStart(si)),
                Element::SectorEnd(se) => self.queue.push_back(Element::SectorEnd(se)),
            }
        }
        self.reset_scope_stats();
    }
}

impl<S: GeoStream> GeoStream for StretchTransform<S> {
    type V = f32;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<f32>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            let Some(el) = self.input.next_element() else {
                // End of stream: flush whatever is pending (partial scope).
                if self.held.is_empty() {
                    return None;
                }
                self.flush_scope();
                continue;
            };
            match el {
                Element::SectorStart(si) => {
                    if self.held.is_empty() {
                        return Some(Element::SectorStart(si));
                    }
                    self.held.push(Element::SectorStart(si));
                }
                Element::FrameStart(fi) => {
                    self.stats.frames_in += 1;
                    self.held.push(Element::FrameStart(fi));
                    self.stats.stalls += 1;
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    let v = p.value.to_f64();
                    self.tracker.push(v);
                    if let Some(h) = &mut self.hist {
                        h.push(v);
                    }
                    self.stats.buffer_grow(1, S::V::BYTES as u64);
                    self.held.push(Element::Point(p));
                }
                Element::FrameEnd(fe) => {
                    self.held.push(Element::FrameEnd(fe));
                    if self.scope == StretchScope::Frame {
                        self.flush_scope();
                    }
                }
                Element::SectorEnd(se) => {
                    self.held.push(Element::SectorEnd(se));
                    self.flush_scope();
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// A stretch buffers a frame's values but forwards the marker skeleton
/// through its queue unchanged; it needs well-bracketed input (its flush
/// is driven by `FrameEnd`/`SectorEnd`) but not lattice order — min/max
/// over a frame is order-insensitive.
pub fn stretch_contract(scope: StretchScope) -> crate::ops::ProtocolContract {
    use crate::ops::protocol::{
        ChunkDiscipline, Granularity, MarkerEffect, OrderEffect, Parallelism, ProtocolContract,
    };
    ProtocolContract {
        operator: "stretch".to_string(),
        markers: MarkerEffect::Forward,
        order: OrderEffect::Preserve,
        chunks: ChunkDiscipline::Repack,
        requires_bracketing: true,
        requires_order: false,
        // The held elements and their statistics never outlive the
        // scope bracket, so the stretch partitions at exactly that
        // granularity: per frame, or per sector for image scope.
        parallelism: Parallelism::Partitionable,
        granularity: match scope {
            StretchScope::Frame => Granularity::Frame,
            StretchScope::Image => Granularity::Sector,
        },
    }
}

impl<S: GeoStream> StretchTransform<S> {
    /// Protocol contract (see [`stretch_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        stretch_contract(self.scope)
    }

    /// §3.2: a frame-scoped stretch buffers one arrival frame (a single
    /// row under row-by-row transmission); an image-scoped stretch must
    /// hold the whole image before it can emit.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        use crate::model::Organization;
        match (self.scope, self.schema.organization) {
            (StretchScope::Frame, Organization::RowByRow | Organization::PointByPoint) => {
                crate::ops::BlockingClass::BoundedRows(1)
            }
            _ => crate::ops::BlockingClass::BoundedFrame,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn lattice(w: u32, h: u32) -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 10.0, 10.0), w, h)
    }

    fn source(w: u32, h: u32) -> VecStream<f32> {
        VecStream::single_sector("src", lattice(w, h), 0, |c, r| f64::from(10 + c + w * r))
            .with_value_range(0.0, 100.0)
    }

    #[test]
    fn linear_stretch_fills_output_range() {
        let mut op = StretchTransform::new(
            source(4, 4),
            StretchMode::Linear { out_lo: 0.0, out_hi: 255.0 },
            StretchScope::Image,
        );
        let pts = op.drain_points();
        assert_eq!(pts.len(), 16);
        let min = pts.iter().map(|p| p.value).fold(f32::INFINITY, f32::min);
        let max = pts.iter().map(|p| p.value).fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(min, 0.0);
        assert_eq!(max, 255.0);
    }

    #[test]
    fn image_scope_buffers_whole_image() {
        let mut op = StretchTransform::new(
            source(8, 8),
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Image,
        );
        let _ = op.drain_points();
        // The claim of §3.2: the whole frame (image) must be stored.
        assert_eq!(op.op_stats().buffered_points_peak, 64);
    }

    #[test]
    fn frame_scope_buffers_one_row() {
        let mut op = StretchTransform::new(
            source(8, 8),
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Frame,
        );
        let _ = op.drain_points();
        // Row-by-row frames: one row of 8 points at a time.
        assert_eq!(op.op_stats().buffered_points_peak, 8);
    }

    #[test]
    fn frame_scope_stretches_per_row() {
        // Each row r has values 10+8r .. 17+8r; per-frame stretch maps
        // every row onto the full [0,1].
        let mut op = StretchTransform::new(
            source(8, 8),
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Frame,
        );
        let pts = op.drain_points();
        for row in 0..8u32 {
            let rowvals: Vec<f32> =
                pts.iter().filter(|p| p.cell.row == row).map(|p| p.value).collect();
            assert_eq!(rowvals.first().copied(), Some(0.0));
            assert_eq!(rowvals.last().copied(), Some(1.0));
        }
    }

    #[test]
    fn histogram_equalization_output_in_unit_range() {
        let mut op = StretchTransform::new(
            source(6, 6),
            StretchMode::HistEq { bins: 64 },
            StretchScope::Image,
        );
        let pts = op.drain_points();
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.value)));
        // Equalization is monotone in the input.
        let mut by_input: Vec<(u32, f32)> =
            pts.iter().map(|p| (p.cell.row * 6 + p.cell.col, p.value)).collect();
        by_input.sort_by_key(|(k, _)| *k);
        for w in by_input.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn gaussian_stretch_centers_mean() {
        let mut op = StretchTransform::new(
            source(5, 5),
            StretchMode::Gaussian { n_sigma: 2.0 },
            StretchScope::Image,
        );
        let pts = op.drain_points();
        let mean: f32 = pts.iter().map(|p| p.value).sum::<f32>() / pts.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn element_protocol_preserved() {
        let mut op = StretchTransform::new(
            source(3, 3),
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Image,
        );
        let els = op.drain_elements();
        let starts = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        let ends = els.iter().filter(|e| matches!(e, Element::FrameEnd(_))).count();
        assert_eq!(starts, 3);
        assert_eq!(ends, 3);
        assert!(matches!(els[0], Element::SectorStart(_)));
        assert!(matches!(els.last(), Some(Element::SectorEnd(_))));
    }

    #[test]
    fn multi_sector_stats_reset_between_images() {
        let lattice = lattice(4, 1);
        let src: VecStream<f32> = VecStream::sectors("src", lattice, 2, |s, c, _| {
            // Sector 0: values 0..3; sector 1: values 100..103.
            f64::from(c) + 100.0 * s as f64
        });
        let mut op = StretchTransform::new(
            src,
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Image,
        );
        let pts = op.drain_points();
        // Both sectors independently stretch onto [0,1].
        assert_eq!(pts[0].value, 0.0);
        assert_eq!(pts[3].value, 1.0);
        assert_eq!(pts[4].value, 0.0);
        assert_eq!(pts[7].value, 1.0);
    }
}
