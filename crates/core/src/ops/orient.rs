//! Exact orientation transforms: rotation and mirroring (§3.2: spatial
//! transforms "allow for magnification (zooming), rotation, and general
//! affine transformations").
//!
//! The eight dihedral orientations of a raster are *exact* spatial
//! transforms: every input point maps to exactly one output cell, so —
//! unlike resampling transforms — the operator is point-wise,
//! non-blocking, and buffer-free, like a restriction. The content is
//! re-oriented within the sector's world footprint (the transform acts
//! on the image, not the georeference; quarter-turns therefore swap the
//! lattice dimensions).

use crate::model::{Element, FrameInfo, GeoStream, SectorInfo, StreamSchema};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox, LatticeGeoref, Rect};
use serde::{Deserialize, Serialize};

/// One of the non-identity dihedral orientations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Orientation {
    /// Quarter turn counter-clockwise.
    Rot90,
    /// Half turn.
    Rot180,
    /// Quarter turn clockwise.
    Rot270,
    /// Mirror across the vertical axis (left-right).
    FlipH,
    /// Mirror across the horizontal axis (top-bottom).
    FlipV,
    /// Mirror across the main diagonal.
    Transpose,
}

impl Orientation {
    /// Parses the textual name used by the query language.
    pub fn from_name(s: &str) -> Option<Orientation> {
        Some(match s.to_ascii_lowercase().as_str() {
            "rot90" | "90" => Orientation::Rot90,
            "rot180" | "180" => Orientation::Rot180,
            "rot270" | "270" | "-90" => Orientation::Rot270,
            "fliph" | "h" | "mirror" => Orientation::FlipH,
            "flipv" | "v" => Orientation::FlipV,
            "transpose" | "t" => Orientation::Transpose,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Orientation::Rot90 => "rot90",
            Orientation::Rot180 => "rot180",
            Orientation::Rot270 => "rot270",
            Orientation::FlipH => "fliph",
            Orientation::FlipV => "flipv",
            Orientation::Transpose => "transpose",
        }
    }

    /// Whether the orientation swaps lattice width and height.
    pub fn swaps_axes(self) -> bool {
        matches!(self, Orientation::Rot90 | Orientation::Rot270 | Orientation::Transpose)
    }

    /// Maps an input cell into the output lattice (`w`, `h` are the
    /// *input* dimensions).
    #[inline]
    pub fn map_cell(self, cell: Cell, w: u32, h: u32) -> Cell {
        let (c, r) = (cell.col, cell.row);
        match self {
            // CCW quarter turn: the top row becomes the left column.
            Orientation::Rot90 => Cell::new(r, w - 1 - c),
            Orientation::Rot180 => Cell::new(w - 1 - c, h - 1 - r),
            Orientation::Rot270 => Cell::new(h - 1 - r, c),
            Orientation::FlipH => Cell::new(w - 1 - c, r),
            Orientation::FlipV => Cell::new(c, h - 1 - r),
            Orientation::Transpose => Cell::new(r, c),
        }
    }

    /// The inverse orientation.
    pub fn inverse(self) -> Orientation {
        match self {
            Orientation::Rot90 => Orientation::Rot270,
            Orientation::Rot270 => Orientation::Rot90,
            other => other,
        }
    }
}

/// The orientation operator: per-point cell remapping, zero buffering.
pub struct Orient<S: GeoStream> {
    input: S,
    orientation: Orientation,
    in_dims: (u32, u32),
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> Orient<S> {
    /// Creates the orientation transform.
    pub fn new(input: S, orientation: Orientation) -> Self {
        let schema = input.schema().renamed(format!("orient[{}]", orientation.name()));
        Orient { input, orientation, in_dims: (0, 0), stats: OpStats::default(), schema }
    }

    fn map_box(&self, cells: CellBox) -> CellBox {
        let (w, h) = self.in_dims;
        let a = self.orientation.map_cell(Cell::new(cells.col_min, cells.row_min), w, h);
        let b = self.orientation.map_cell(Cell::new(cells.col_max, cells.row_max), w, h);
        CellBox::new(a.col.min(b.col), a.row.min(b.row), a.col.max(b.col), a.row.max(b.row))
    }
}

impl<S: GeoStream> GeoStream for Orient<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        let el = self.input.next_element()?;
        Some(match el {
            Element::SectorStart(si) => {
                self.in_dims = (si.lattice.width, si.lattice.height);
                let lat = si.lattice;
                let out_lattice = if self.orientation.swaps_axes() {
                    // Re-grid the same world footprint with swapped dims.
                    let bbox: Rect = lat.world_bbox();
                    LatticeGeoref::north_up(lat.crs, bbox, lat.height, lat.width)
                } else {
                    lat
                };
                Element::SectorStart(SectorInfo { lattice: out_lattice, ..si })
            }
            Element::FrameStart(fi) => {
                self.stats.frames_in += 1;
                self.stats.frames_out += 1;
                Element::FrameStart(FrameInfo { cells: self.map_box(fi.cells), ..fi })
            }
            Element::Point(p) => {
                self.stats.points_in += 1;
                self.stats.points_out += 1;
                let (w, h) = self.in_dims;
                Element::point(self.orientation.map_cell(p.cell, w, h), p.value)
            }
            other => other,
        })
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Orientation changes remap cells point-wise and re-interpret the
/// georeference; markers and traversal order pass through untouched, so
/// the contract is a pure forwarder.
pub fn orient_contract() -> crate::ops::ProtocolContract {
    use crate::ops::protocol::{Granularity, Parallelism};
    // Point-wise, but the output lattice is derived from `SectorStart`
    // (quarter-turns swap its dimensions), so the morsel unit is the
    // sector bracket, not the frame.
    crate::ops::ProtocolContract::forwarding("orient")
        .with_parallelism(Parallelism::Partitionable, Granularity::Sector)
}

impl<S: GeoStream> Orient<S> {
    /// §3.2: orientation changes remap cells point-wise, zero buffering.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract: transparent forwarder (see [`orient_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        orient_contract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::Crs;

    fn source(w: u32, h: u32) -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 4.0), w, h);
        VecStream::single_sector("src", lattice, 0, |c, r| f64::from(c + 100 * r))
    }

    fn grid_of<S: GeoStream<V = f32>>(mut s: S) -> Vec<Vec<f32>> {
        let mut dims = (0u32, 0u32);
        let mut pts = Vec::new();
        while let Some(el) = s.next_element() {
            match el {
                Element::SectorStart(si) => dims = (si.lattice.width, si.lattice.height),
                Element::Point(p) => pts.push(p),
                _ => {}
            }
        }
        let mut grid = vec![vec![f32::NAN; dims.0 as usize]; dims.1 as usize];
        for p in pts {
            grid[p.cell.row as usize][p.cell.col as usize] = p.value;
        }
        grid
    }

    #[test]
    fn names_parse() {
        assert_eq!(Orientation::from_name("rot90"), Some(Orientation::Rot90));
        assert_eq!(Orientation::from_name("H"), Some(Orientation::FlipH));
        assert_eq!(Orientation::from_name("sideways"), None);
    }

    #[test]
    fn flip_h_mirrors_columns() {
        let g = grid_of(Orient::new(source(4, 2), Orientation::FlipH));
        // Input row 0 is [0,1,2,3] -> output [3,2,1,0].
        assert_eq!(g[0], vec![3.0, 2.0, 1.0, 0.0]);
        assert_eq!(g[1][0], 103.0);
    }

    #[test]
    fn rot90_turns_top_row_into_left_column() {
        let g = grid_of(Orient::new(source(4, 2), Orientation::Rot90));
        // Output is 2 wide, 4 tall.
        assert_eq!(g.len(), 4);
        assert_eq!(g[0].len(), 2);
        // Input (c=3, r=0) -> output (0, 0): value 3.
        assert_eq!(g[0][0], 3.0);
        // Input (c=0, r=0) -> output (0, 3).
        assert_eq!(g[3][0], 0.0);
        // Input (c=0, r=1) -> output (1, 3).
        assert_eq!(g[3][1], 100.0);
    }

    #[test]
    fn involutions_are_identity() {
        for o in
            [Orientation::Rot180, Orientation::FlipH, Orientation::FlipV, Orientation::Transpose]
        {
            let twice = Orient::new(Orient::new(source(5, 3), o), o);
            let g = grid_of(twice);
            let base = grid_of(source(5, 3));
            assert_eq!(g, base, "{o:?} twice");
        }
    }

    #[test]
    fn four_quarter_turns_are_identity() {
        let s = Orient::new(
            Orient::new(
                Orient::new(Orient::new(source(5, 3), Orientation::Rot90), Orientation::Rot90),
                Orientation::Rot90,
            ),
            Orientation::Rot90,
        );
        assert_eq!(grid_of(s), grid_of(source(5, 3)));
    }

    #[test]
    fn rot90_then_rot270_cancels() {
        let s = Orient::new(Orient::new(source(6, 4), Orientation::Rot90), Orientation::Rot270);
        assert_eq!(grid_of(s), grid_of(source(6, 4)));
    }

    #[test]
    fn orientation_never_buffers() {
        let mut op = Orient::new(source(32, 16), Orientation::Rot270);
        let _ = op.drain_points();
        assert_eq!(op.op_stats().buffered_points_peak, 0);
        assert_eq!(op.op_stats().points_out, 512);
    }

    #[test]
    fn map_cell_round_trips_through_inverse() {
        let (w, h) = (7u32, 5u32);
        for o in [
            Orientation::Rot90,
            Orientation::Rot180,
            Orientation::Rot270,
            Orientation::FlipH,
            Orientation::FlipV,
            Orientation::Transpose,
        ] {
            let (ow, oh) = if o.swaps_axes() { (h, w) } else { (w, h) };
            for c in 0..w {
                for r in 0..h {
                    let mapped = o.map_cell(Cell::new(c, r), w, h);
                    assert!(mapped.col < ow && mapped.row < oh, "{o:?} {c},{r} -> {mapped}");
                    let back = o.inverse().map_cell(mapped, ow, oh);
                    assert_eq!(back, Cell::new(c, r), "{o:?}");
                }
            }
        }
    }
}
