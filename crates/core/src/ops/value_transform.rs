//! Point-wise value transforms (§3.2, Definition 8).
//!
//! "A simple form of a value transform operator is one that transforms
//! color point values … to gray-scale point values. Clearly, such an
//! operator allows for processing on a point-by-point basis." These
//! operators hold no state and cost O(1) per point; the frame-scoped
//! stretches that *do* buffer live in [`crate::ops::stretch`].

use crate::model::{Chunk, ChunkOrMarker, Element, GeoStream, Marker, PointRecord, StreamSchema};
use crate::stats::{OpReport, OpStats};
use geostreams_raster::Pixel;
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;

/// A declarative, plannable point-wise value function on the arithmetic
/// domain (`f64 → f64`). Using data rather than closures keeps query
/// plans serializable and comparable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueFunc {
    /// `v ↦ scale·v + offset`.
    Linear {
        /// Multiplier.
        scale: f64,
        /// Additive offset.
        offset: f64,
    },
    /// Maps `[lo, hi] → [0, 1]`, clamping outside.
    Normalize {
        /// Input low bound.
        lo: f64,
        /// Input high bound.
        hi: f64,
    },
    /// Clamps into `[lo, hi]`.
    Clamp {
        /// Low bound.
        lo: f64,
        /// High bound.
        hi: f64,
    },
    /// Absolute value.
    Abs,
    /// Gamma correction on a `[0, 1]` value.
    Gamma {
        /// Exponent.
        g: f64,
    },
    /// Binary threshold: `v ≥ t ↦ 1`, else `0`.
    Threshold {
        /// Threshold.
        t: f64,
    },
}

impl ValueFunc {
    /// Applies the function.
    #[inline]
    pub fn apply(&self, v: f64) -> f64 {
        match *self {
            ValueFunc::Linear { scale, offset } => scale * v + offset,
            ValueFunc::Normalize { lo, hi } => {
                if hi > lo {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            }
            ValueFunc::Clamp { lo, hi } => v.clamp(lo, hi),
            ValueFunc::Abs => v.abs(),
            ValueFunc::Gamma { g } => v.clamp(0.0, 1.0).powf(g),
            ValueFunc::Threshold { t } => {
                if v >= t {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The image of a value range under the function (used to keep the
    /// schema's nominal display range truthful).
    pub fn map_range(&self, (lo, hi): (f64, f64)) -> (f64, f64) {
        match *self {
            ValueFunc::Linear { .. } | ValueFunc::Abs => {
                let a = self.apply(lo);
                let b = self.apply(hi);
                if matches!(self, ValueFunc::Abs) && lo < 0.0 && hi > 0.0 {
                    (0.0, a.max(b))
                } else {
                    (a.min(b), a.max(b))
                }
            }
            ValueFunc::Normalize { .. } | ValueFunc::Gamma { .. } | ValueFunc::Threshold { .. } => {
                (0.0, 1.0)
            }
            ValueFunc::Clamp { lo: l, hi: h } => (lo.max(l), hi.min(h)),
        }
    }
}

/// Point-wise value transform `f_val ∘ G` applying a [`ValueFunc`] and
/// converting to a (possibly different) pixel type `W`.
pub struct MapTransform<S: GeoStream, W: Pixel> {
    input: S,
    func: ValueFunc,
    stats: OpStats,
    schema: StreamSchema,
    /// Reused f64 staging buffer for the lane-blocked chunk path
    /// (drained every chunk; see [`crate::ops::lanes`]).
    scratch: Vec<f64>,
    _w: PhantomData<W>,
}

impl<S: GeoStream, W: Pixel> MapTransform<S, W> {
    /// Creates the transform.
    pub fn new(input: S, func: ValueFunc) -> Self {
        let mut schema = input.schema().renamed("map_value");
        schema.value_range = func.map_range(schema.value_range);
        MapTransform {
            input,
            func,
            stats: OpStats::default(),
            schema,
            scratch: Vec::new(),
            _w: PhantomData,
        }
    }
}

impl<S: GeoStream, W: Pixel> GeoStream for MapTransform<S, W> {
    type V = W;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<W>> {
        let el = self.input.next_element()?;
        if el.is_point() {
            self.stats.points_in += 1;
            self.stats.points_out += 1;
        } else if matches!(el, Element::FrameStart(_)) {
            self.stats.frames_in += 1;
            self.stats.frames_out += 1;
        }
        Some(el.map_value(|v| W::from_f64(self.func.apply(v.to_f64()))))
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<W>> {
        match self.input.next_chunk(budget)? {
            ChunkOrMarker::Marker(m) => {
                if matches!(m, Marker::FrameStart(_)) {
                    self.stats.frames_in += 1;
                    self.stats.frames_out += 1;
                }
                Some(ChunkOrMarker::Marker(m))
            }
            ChunkOrMarker::Chunk(mut c) => {
                let n = c.points.len() as u64;
                self.stats.points_in += n;
                self.stats.points_out += n;
                if let Some(Marker::FrameStart(_)) = &c.end {
                    self.stats.frames_in += 1;
                    self.stats.frames_out += 1;
                }
                // Lane-blocked fast path: stage values through the f64
                // arithmetic domain, apply the hoisted-dispatch kernel
                // (bit-identical to per-element `apply`), convert back.
                self.scratch.clear();
                self.scratch.extend(c.points.iter().map(|p| p.value.to_f64()));
                crate::ops::lanes::apply_slice(self.func, &mut self.scratch);
                let mut out = Chunk::with_budget(c.points.len());
                out.points.extend(
                    c.points
                        .drain(..)
                        .zip(self.scratch.drain(..))
                        .map(|(p, v)| PointRecord { cell: p.cell, value: W::from_f64(v) }),
                );
                out.end = c.end.take();
                c.recycle();
                Some(ChunkOrMarker::Chunk(out))
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Pure pixel-type cast (`V → W` through the arithmetic domain) with no
/// value change; the planner inserts these to normalize pipelines.
pub struct CastTransform<S: GeoStream, W: Pixel> {
    input: S,
    stats: OpStats,
    schema: StreamSchema,
    _w: PhantomData<W>,
}

impl<S: GeoStream, W: Pixel> CastTransform<S, W> {
    /// Creates the cast.
    pub fn new(input: S) -> Self {
        let schema = input.schema().renamed("cast");
        CastTransform { input, stats: OpStats::default(), schema, _w: PhantomData }
    }
}

impl<S: GeoStream, W: Pixel> GeoStream for CastTransform<S, W> {
    type V = W;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<W>> {
        let el = self.input.next_element()?;
        if el.is_point() {
            self.stats.points_in += 1;
            self.stats.points_out += 1;
        }
        Some(el.map_value(|v| W::from_f64(v.to_f64())))
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<W>> {
        match self.input.next_chunk(budget)? {
            ChunkOrMarker::Marker(m) => Some(ChunkOrMarker::Marker(m)),
            ChunkOrMarker::Chunk(mut c) => {
                let n = c.points.len() as u64;
                self.stats.points_in += n;
                self.stats.points_out += n;
                let mut out = Chunk::with_budget(c.points.len());
                out.points.extend(
                    c.points.drain(..).map(|p| PointRecord {
                        cell: p.cell,
                        value: W::from_f64(p.value.to_f64()),
                    }),
                );
                out.end = c.end.take();
                c.recycle();
                Some(ChunkOrMarker::Chunk(out))
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Point-wise value transforms rewrite values in place: markers and
/// lattice order are untouched, so the contract is a pure forwarder.
pub fn value_transform_contract(operator: &str) -> crate::ops::ProtocolContract {
    crate::ops::ProtocolContract::forwarding(operator)
}

impl<S: GeoStream, W: Pixel> MapTransform<S, W> {
    /// §3.2: point-wise value transforms are non-blocking.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract: transparent forwarder (see [`value_transform_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        value_transform_contract("map_value")
    }
}

impl<S: GeoStream, W: Pixel> CastTransform<S, W> {
    /// Pixel-type casts are point-wise and non-blocking.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract: transparent forwarder (see [`value_transform_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        value_transform_contract("cast")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn source() -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        VecStream::single_sector("src", lattice, 0, |c, r| f64::from(c + 4 * r))
    }

    #[test]
    fn value_funcs_apply() {
        assert_eq!(ValueFunc::Linear { scale: 2.0, offset: 1.0 }.apply(3.0), 7.0);
        assert_eq!(ValueFunc::Normalize { lo: 0.0, hi: 10.0 }.apply(5.0), 0.5);
        assert_eq!(ValueFunc::Normalize { lo: 0.0, hi: 10.0 }.apply(-5.0), 0.0);
        assert_eq!(ValueFunc::Clamp { lo: 0.0, hi: 1.0 }.apply(7.0), 1.0);
        assert_eq!(ValueFunc::Abs.apply(-3.0), 3.0);
        assert_eq!(ValueFunc::Threshold { t: 0.5 }.apply(0.6), 1.0);
        assert_eq!(ValueFunc::Threshold { t: 0.5 }.apply(0.4), 0.0);
        assert!((ValueFunc::Gamma { g: 2.0 }.apply(0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_normalize_is_zero() {
        assert_eq!(ValueFunc::Normalize { lo: 5.0, hi: 5.0 }.apply(5.0), 0.0);
    }

    #[test]
    fn map_range_tracks_linear() {
        let f = ValueFunc::Linear { scale: -2.0, offset: 0.0 };
        assert_eq!(f.map_range((0.0, 10.0)), (-20.0, 0.0));
        assert_eq!(ValueFunc::Abs.map_range((-3.0, 2.0)), (0.0, 3.0));
        assert_eq!(ValueFunc::Normalize { lo: 0.0, hi: 1.0 }.map_range((5.0, 9.0)), (0.0, 1.0));
    }

    #[test]
    fn map_transform_scales_points() {
        let mut op: MapTransform<_, f32> =
            MapTransform::new(source(), ValueFunc::Linear { scale: 0.5, offset: 1.0 });
        let pts = op.drain_points();
        assert_eq!(pts.len(), 16);
        assert_eq!(pts[0].value, 1.0); // 0*0.5+1
        assert_eq!(pts[15].value, 8.5); // 15*0.5+1
        let st = op.op_stats();
        assert_eq!(st.points_in, 16);
        assert_eq!(st.buffered_points_peak, 0, "point-wise transforms never buffer");
    }

    #[test]
    fn map_transform_can_change_pixel_type() {
        let mut op: MapTransform<_, u8> =
            MapTransform::new(source(), ValueFunc::Linear { scale: 10.0, offset: 0.0 });
        let pts = op.drain_points();
        assert_eq!(pts[15].value, 150u8);
    }

    #[test]
    fn cast_preserves_values() {
        let mut op: CastTransform<_, u16> = CastTransform::new(source());
        let pts = op.drain_points();
        assert_eq!(pts[7].value, 7u16);
    }

    #[test]
    fn chunked_lane_path_is_bit_identical_to_scalar() {
        let funcs = [
            ValueFunc::Linear { scale: 0.37, offset: -2.25 },
            ValueFunc::Normalize { lo: 0.0, hi: 15.0 },
            ValueFunc::Clamp { lo: 2.0, hi: 9.0 },
            ValueFunc::Abs,
            ValueFunc::Gamma { g: 2.2 },
            ValueFunc::Threshold { t: 7.0 },
        ];
        for func in funcs {
            let mut scalar_op: MapTransform<_, f32> = MapTransform::new(source(), func);
            let scalar: Vec<_> = scalar_op.drain_points();
            for budget in [1usize, 3, 64] {
                let mut chunked_op: MapTransform<_, f32> = MapTransform::new(source(), func);
                let chunked: Vec<_> = crate::model::drain_chunked(&mut chunked_op, budget)
                    .into_iter()
                    .filter_map(|el| if let Element::Point(p) = el { Some(p) } else { None })
                    .collect();
                assert_eq!(chunked.len(), scalar.len());
                for (a, b) in chunked.iter().zip(&scalar) {
                    assert_eq!(a.value.to_bits(), b.value.to_bits(), "{func:?} budget {budget}");
                }
            }
        }
    }

    #[test]
    fn schema_range_updated() {
        let src = source();
        src.schema();
        let op: MapTransform<_, f32> =
            MapTransform::new(source(), ValueFunc::Normalize { lo: 0.0, hi: 15.0 });
        assert_eq!(op.schema().value_range, (0.0, 1.0));
    }
}
