//! Stream composition (§3.3, Definition 10).
//!
//! `G₁ γ G₂ = {(x, G₁(x) γ G₂(x)) : x ∈ X}` for
//! `γ ∈ {+, −, ×, ÷, sup, inf}` — the operator behind multi-band data
//! products such as NDVI. The paper's two key observations are both
//! implemented and measurable here:
//!
//! 1. "the points must match in the spatial dimension **and** in the
//!    timestamp" — under measurement-time semantics nothing ever joins;
//!    under scan-sector semantics whole sectors join (E3 verifies the
//!    output ratio);
//! 2. "the space complexity of a stream composition operator depends on
//!    the point organization in which the image data is transmitted" —
//!    the operator's match buffer (plus the transport split queues, see
//!    [`crate::model::split2`]) peaks at about one *image* for
//!    image-by-image transmission and one *row* for row-by-row.

use crate::error::{CoreError, Result};
use crate::model::{
    Chunk, ChunkOrMarker, Element, FrameEnd, FrameInfo, GeoStream, SectorEnd, StreamSchema,
    Timestamp,
};
use crate::stats::{OpReport, OpStats};
use geostreams_geo::{Cell, CellBox};
use geostreams_raster::Pixel;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// The binary value operator γ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GammaOp {
    /// Addition.
    Add,
    /// Difference (left − right).
    Sub,
    /// Product.
    Mul,
    /// Quotient (left ÷ right); division by ~0 yields 0.
    Div,
    /// Supremum (max).
    Sup,
    /// Infimum (min).
    Inf,
    /// Normalized difference `(a − b) / (a + b)` (guarded at `a+b ≈ 0`):
    /// the fused kernel behind the NDVI macro operator of §4, equivalent
    /// to the §3.4 expression `(G₁ − G₂) ⊘ (G₂ + G₁)` in a single pass.
    NormDiff,
}

impl GammaOp {
    /// Applies the operator in the arithmetic domain.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            GammaOp::Add => a + b,
            GammaOp::Sub => a - b,
            GammaOp::Mul => a * b,
            GammaOp::Div => {
                if b.abs() < 1e-12 {
                    0.0
                } else {
                    a / b
                }
            }
            GammaOp::Sup => a.max(b),
            GammaOp::Inf => a.min(b),
            GammaOp::NormDiff => {
                let denom = a + b;
                if denom.abs() < 1e-12 {
                    0.0
                } else {
                    (a - b) / denom
                }
            }
        }
    }

    /// Symbol used by the query language.
    pub fn symbol(self) -> &'static str {
        match self {
            GammaOp::Add => "+",
            GammaOp::Sub => "-",
            GammaOp::Mul => "*",
            GammaOp::Div => "/",
            GammaOp::Sup => "sup",
            GammaOp::Inf => "inf",
            GammaOp::NormDiff => "normdiff",
        }
    }

    /// Parses a γ symbol.
    pub fn from_symbol(s: &str) -> Option<GammaOp> {
        Some(match s {
            "+" | "add" => GammaOp::Add,
            "-" | "sub" => GammaOp::Sub,
            "*" | "mul" => GammaOp::Mul,
            "/" | "div" => GammaOp::Div,
            "sup" | "max" => GammaOp::Sup,
            "inf" | "min" => GammaOp::Inf,
            "normdiff" => GammaOp::NormDiff,
            _ => return None,
        })
    }
}

/// Join strategy of the composition operator (A2 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum JoinStrategy {
    /// Symmetric hash join on `(timestamp, cell)`, pulling whichever
    /// input is behind. Works for every organization.
    #[default]
    Hash,
    /// Frame-at-a-time merge: buffer one left frame, then stream the
    /// matching right frame through it. Assumes both streams deliver the
    /// same frame sequence (true for the row-by-row instrument case).
    FrameMerge,
}

/// Per-side pull cursor used by the adaptive scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
struct SidePos {
    sectors: u64,
    elements: u64,
}

#[inline]
fn cell_key(c: Cell) -> u64 {
    (u64::from(c.col) << 32) | u64::from(c.row)
}

/// The stream composition operator `G₁ γ G₂`.
pub struct Compose<L: GeoStream, R: GeoStream<V = L::V>> {
    left: L,
    right: R,
    op: GammaOp,
    strategy: JoinStrategy,

    left_buf: HashMap<(i64, u64), L::V>,
    right_buf: HashMap<(i64, u64), L::V>,
    left_pos: SidePos,
    right_pos: SidePos,
    left_done: bool,
    right_done: bool,
    left_ts: Option<Timestamp>,
    right_ts: Option<Timestamp>,

    active: Option<crate::model::SectorInfo>,
    left_lattice: Option<geostreams_geo::LatticeGeoref>,
    right_lattice: Option<geostreams_geo::LatticeGeoref>,
    /// Definition 10 requires both streams over one point lattice; when
    /// the sector lattices disagree no point can match.
    lattice_mismatch: bool,
    left_sector_closed: bool,
    right_sector_closed: bool,

    open_frame: Option<(Timestamp, u64, u64)>,
    next_frame_id: u64,
    /// Points whose partner never arrived (dropped at sector close).
    pub unmatched_dropped: u64,

    queue: VecDeque<Element<L::V>>,
    /// Set on the first `next_chunk` call: side pulls are then staged
    /// through whole input chunks (amortizing upstream dispatch) while
    /// the element-level join schedule stays exactly the scalar one.
    chunked: bool,
    left_stage: StageCursor<L::V>,
    right_stage: StageCursor<L::V>,
    stats: OpStats,
    schema: StreamSchema,
}

/// A staged input chunk consumed element-at-a-time by the join
/// schedule: points are read in place through a cursor instead of being
/// copied into an intermediate queue.
struct StageCursor<V: Pixel> {
    chunk: Chunk<V>,
    idx: usize,
}

impl<V: Pixel> StageCursor<V> {
    fn empty() -> Self {
        StageCursor { chunk: Chunk { points: Vec::new(), end: None, ctx: None }, idx: 0 }
    }

    /// The next staged element, if any remains in the current chunk.
    fn next(&mut self) -> Option<Element<V>> {
        if self.idx < self.chunk.points.len() {
            let p = self.chunk.points[self.idx];
            self.idx += 1;
            return Some(Element::Point(p));
        }
        self.chunk.end.take().map(|m| m.into_element())
    }

    /// Replaces the staged chunk, recycling the consumed one.
    fn refill(&mut self, chunk: Chunk<V>) {
        std::mem::replace(&mut self.chunk, chunk).recycle();
        self.idx = 0;
    }
}

impl<L: GeoStream, R: GeoStream<V = L::V>> Compose<L, R> {
    /// Creates the composition; the streams must share a CRS.
    pub fn new(left: L, right: R, op: GammaOp, strategy: JoinStrategy) -> Result<Self> {
        let ls = left.schema();
        let rs = right.schema();
        if ls.crs != rs.crs {
            return Err(CoreError::SchemaMismatch(format!(
                "compose requires matching coordinate systems, got {} vs {}",
                ls.crs, rs.crs
            )));
        }
        let mut schema = ls.renamed(format!("compose[{} {} {}]", ls.name, op.symbol(), rs.name));
        // The composed range is heuristic; macro operators refine it.
        let (llo, lhi) = ls.value_range;
        let (rlo, rhi) = rs.value_range;
        schema.value_range = match op {
            GammaOp::Add => (llo + rlo, lhi + rhi),
            GammaOp::Sub => (llo - rhi, lhi - rlo),
            GammaOp::Sup | GammaOp::Inf => (llo.min(rlo), lhi.max(rhi)),
            GammaOp::NormDiff => (-1.0, 1.0),
            _ => (llo.min(rlo), lhi.max(rhi)),
        };
        Ok(Compose {
            left,
            right,
            op,
            strategy,
            left_buf: HashMap::new(),
            right_buf: HashMap::new(),
            left_pos: SidePos::default(),
            right_pos: SidePos::default(),
            left_done: false,
            right_done: false,
            left_ts: None,
            right_ts: None,
            active: None,
            left_lattice: None,
            right_lattice: None,
            lattice_mismatch: false,
            left_sector_closed: false,
            right_sector_closed: false,
            open_frame: None,
            next_frame_id: 0,
            unmatched_dropped: 0,
            queue: VecDeque::new(),
            chunked: false,
            left_stage: StageCursor::empty(),
            right_stage: StageCursor::empty(),
            stats: OpStats::default(),
            schema,
        })
    }

    /// Pulls one element from the left input — directly in scalar mode,
    /// via whole staged chunks in chunked mode.
    fn left_next(&mut self) -> Option<Element<L::V>> {
        if !self.chunked {
            return self.left.next_element();
        }
        loop {
            if let Some(el) = self.left_stage.next() {
                return Some(el);
            }
            match self.left.next_chunk(crate::model::DEFAULT_CHUNK_BUDGET)? {
                ChunkOrMarker::Marker(m) => return Some(m.into_element()),
                ChunkOrMarker::Chunk(c) => self.left_stage.refill(c),
            }
        }
    }

    /// Pulls one element from the right input (see [`Self::left_next`]).
    fn right_next(&mut self) -> Option<Element<L::V>> {
        if !self.chunked {
            return self.right.next_element();
        }
        loop {
            if let Some(el) = self.right_stage.next() {
                return Some(el);
            }
            match self.right.next_chunk(crate::model::DEFAULT_CHUNK_BUDGET)? {
                ChunkOrMarker::Marker(m) => return Some(m.into_element()),
                ChunkOrMarker::Chunk(c) => self.right_stage.refill(c),
            }
        }
    }

    /// Opens/continues the output frame for timestamp `ts`, emitting
    /// boundary elements as needed, then queues the composed point.
    fn emit_point(&mut self, ts: Timestamp, cell: Cell, v: L::V) {
        let sector_id = self.active.as_ref().map_or(0, |s| s.sector_id);
        let needs_new = match self.open_frame {
            Some((open_ts, _, _)) => open_ts != ts,
            None => true,
        };
        if needs_new {
            self.close_frame();
            let frame_id = self.next_frame_id;
            self.next_frame_id += 1;
            let cells = self
                .active
                .as_ref()
                .map(|s| CellBox::full(s.lattice.width, s.lattice.height))
                .unwrap_or(CellBox::new(0, 0, 0, 0));
            self.stats.frames_out += 1;
            self.queue.push_back(Element::FrameStart(FrameInfo {
                frame_id,
                sector_id,
                timestamp: ts,
                cells,
                synth_ns: crate::obs::now_ns(),
            }));
            self.open_frame = Some((ts, frame_id, sector_id));
        }
        self.stats.points_out += 1;
        self.queue.push_back(Element::point(cell, v));
    }

    fn close_frame(&mut self) {
        if let Some((_, frame_id, sector_id)) = self.open_frame.take() {
            self.queue.push_back(Element::FrameEnd(FrameEnd { frame_id, sector_id }));
        }
    }

    /// Closes the active output sector. Buffered entries are *not*
    /// cleared here: a stream may legitimately join a later sector's
    /// points against them (e.g. a self-join through
    /// [`crate::ops::Delay`]); stale entries are evicted by the
    /// timestamp watermark instead.
    fn flush_sector(&mut self) {
        self.close_frame();
        if let Some(si) = self.active.take() {
            self.queue.push_back(Element::SectorEnd(SectorEnd { sector_id: si.sector_id }));
        }
        self.left_sector_closed = false;
        self.right_sector_closed = false;
    }

    /// Drops buffered entries older than both sides' current frame
    /// timestamps — they can never match again because timestamps are
    /// monotone per stream (§3.3's scan-sector stamping).
    fn evict_stale(&mut self) {
        let (Some(l), Some(r)) = (self.left_ts, self.right_ts) else { return };
        let watermark = l.value().min(r.value());
        let before = (self.left_buf.len() + self.right_buf.len()) as u64;
        self.left_buf.retain(|k, _| k.0 >= watermark);
        self.right_buf.retain(|k, _| k.0 >= watermark);
        let after = (self.left_buf.len() + self.right_buf.len()) as u64;
        let dropped = before - after;
        self.unmatched_dropped += dropped;
        self.stats.buffer_shrink(dropped, dropped * L::V::BYTES as u64);
    }

    /// Drops everything still buffered (end of both inputs).
    fn evict_all(&mut self) {
        let dropped = (self.left_buf.len() + self.right_buf.len()) as u64;
        self.unmatched_dropped += dropped;
        self.stats.buffer_shrink(dropped, dropped * L::V::BYTES as u64);
        self.left_buf.clear();
        self.right_buf.clear();
    }

    /// Processes one input element from the given side (0 = left).
    fn process(&mut self, side: u8, el: Element<L::V>) {
        match el {
            Element::SectorStart(si) => {
                if side == 0 {
                    self.left_lattice = Some(si.lattice);
                    self.queue.push_back(Element::SectorStart(si.clone()));
                    self.active = Some(si);
                } else {
                    // Right sector metadata is swallowed but its lattice
                    // is checked against the left's (Definition 10).
                    self.right_lattice = Some(si.lattice);
                }
                self.lattice_mismatch = matches!(
                    (&self.left_lattice, &self.right_lattice),
                    (Some(a), Some(b)) if a != b
                );
            }
            Element::FrameStart(fi) => {
                self.stats.frames_in += 1;
                if side == 0 {
                    self.left_ts = Some(fi.timestamp);
                } else {
                    self.right_ts = Some(fi.timestamp);
                }
                self.evict_stale();
            }
            Element::Point(p) => {
                self.stats.points_in += 1;
                if self.lattice_mismatch {
                    // Streams over different lattices share no points.
                    self.unmatched_dropped += 1;
                    return;
                }
                let (ts, mine, theirs) = if side == 0 {
                    (self.left_ts.unwrap_or_default(), &mut self.left_buf, &mut self.right_buf)
                } else {
                    (self.right_ts.unwrap_or_default(), &mut self.right_buf, &mut self.left_buf)
                };
                let key = (ts.value(), cell_key(p.cell));
                if let Some(other) = theirs.remove(&key) {
                    self.stats.buffer_shrink(1, L::V::BYTES as u64);
                    let (a, b) = if side == 0 {
                        (p.value.to_f64(), other.to_f64())
                    } else {
                        (other.to_f64(), p.value.to_f64())
                    };
                    let v = L::V::from_f64(self.op.apply(a, b));
                    self.emit_point(ts, p.cell, v);
                } else {
                    mine.insert(key, p.value);
                    self.stats.buffer_grow(1, L::V::BYTES as u64);
                }
            }
            Element::FrameEnd(_) => {}
            Element::SectorEnd(_) => {
                if side == 0 {
                    self.left_sector_closed = true;
                } else {
                    self.right_sector_closed = true;
                }
                if self.left_sector_closed && self.right_sector_closed {
                    self.flush_sector();
                }
            }
        }
    }

    /// One scheduling step: advances the join until it either produced
    /// output or must be called again; returns `false` when the stream
    /// is fully exhausted (termination cleanup done, queue empty).
    ///
    /// FrameMerge is a restricted schedule of the same join: it is
    /// selected by biasing the scheduler to finish the left frame
    /// first. Both strategies share the matching code path; the
    /// strategy only alters pull order (measured by A2).
    fn advance(&mut self) -> bool {
        if self.left_done && self.right_done {
            self.evict_all();
            if self.active.is_some() || self.open_frame.is_some() {
                self.flush_sector();
                return true;
            }
            return false;
        }
        match self.strategy {
            JoinStrategy::Hash => {
                if !self.pump() && self.queue.is_empty() {
                    self.evict_all();
                    if self.active.is_some() || self.open_frame.is_some() {
                        self.flush_sector();
                        return true;
                    }
                    return false;
                }
                true
            }
            JoinStrategy::FrameMerge => {
                // Pull a whole left frame, then a whole right frame.
                if !self.left_done {
                    loop {
                        match self.left_next() {
                            Some(el) => {
                                let end =
                                    matches!(el, Element::FrameEnd(_) | Element::SectorEnd(_));
                                self.left_pos.elements += 1;
                                if matches!(el, Element::SectorEnd(_)) {
                                    self.left_pos.sectors += 1;
                                }
                                self.process(0, el);
                                if end {
                                    break;
                                }
                            }
                            None => {
                                self.left_done = true;
                                self.left_sector_closed = true;
                                break;
                            }
                        }
                    }
                }
                if !self.right_done {
                    loop {
                        match self.right_next() {
                            Some(el) => {
                                let end =
                                    matches!(el, Element::FrameEnd(_) | Element::SectorEnd(_));
                                self.right_pos.elements += 1;
                                if matches!(el, Element::SectorEnd(_)) {
                                    self.right_pos.sectors += 1;
                                }
                                self.process(1, el);
                                if end {
                                    break;
                                }
                            }
                            None => {
                                self.right_done = true;
                                self.right_sector_closed = true;
                                break;
                            }
                        }
                    }
                }
                true
            }
        }
    }

    /// Pulls one element from whichever side is behind; returns `false`
    /// when both inputs are exhausted.
    fn pump(&mut self) -> bool {
        let pull_left = if self.left_done {
            false
        } else if self.right_done {
            true
        } else {
            self.left_pos <= self.right_pos
        };
        if pull_left {
            match self.left_next() {
                Some(el) => {
                    self.left_pos.elements += 1;
                    if matches!(el, Element::SectorEnd(_)) {
                        self.left_pos.sectors += 1;
                    }
                    self.process(0, el);
                    true
                }
                None => {
                    self.left_done = true;
                    self.left_sector_closed = true;
                    !self.right_done
                }
            }
        } else if !self.right_done {
            match self.right_next() {
                Some(el) => {
                    self.right_pos.elements += 1;
                    if matches!(el, Element::SectorEnd(_)) {
                        self.right_pos.sectors += 1;
                    }
                    self.process(1, el);
                    true
                }
                None => {
                    self.right_done = true;
                    self.right_sector_closed = true;
                    !self.left_done
                }
            }
        } else {
            false
        }
    }
}

impl<L: GeoStream, R: GeoStream<V = L::V>> GeoStream for Compose<L, R> {
    type V = L::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<L::V>> {
        loop {
            if let Some(el) = self.queue.pop_front() {
                return Some(el);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<crate::model::ChunkOrMarker<L::V>> {
        // Switch side pulls to chunk staging; the join schedule itself
        // is element-granular either way, so output is byte-identical
        // to the scalar path.
        self.chunked = true;
        loop {
            // Fill the output queue past one full run before packing, so
            // chunk size is set by the budget rather than by how little a
            // single advance() happens to emit.
            while self.queue.len() <= budget {
                if !self.advance() {
                    break;
                }
            }
            if let Some(item) = crate::model::pack_queue(&mut self.queue, budget) {
                return Some(item);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.left.collect_stats(out);
        self.right.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Composition merges two frame-aligned streams cell by cell: both
/// sides must be bracketed and lattice-ordered for the merge to line
/// up, and the output marker sequence is synthesized fresh.
pub fn compose_contract(operator: &str) -> crate::ops::ProtocolContract {
    use crate::ops::protocol::{Granularity, Parallelism};
    // The frame-aligned merge consumes two inputs: it bounds the
    // parallel region (subtrees above it can still be partitioned).
    crate::ops::ProtocolContract::resynthesizing(operator)
        .with_parallelism(Parallelism::BlockingMerge, Granularity::Sector)
}

impl<L: GeoStream, R: GeoStream<V = L::V>> Compose<L, R> {
    /// Protocol contract (see [`compose_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        compose_contract("compose")
    }

    /// §3.3: composition buffering "depends on the point organization
    /// (whole image for image-by-image vs a single row for row-by-row)".
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        use crate::model::Organization;
        if self.schema.organization == Organization::ImageByImage {
            crate::ops::BlockingClass::BoundedFrame
        } else {
            crate::ops::BlockingClass::BoundedRows(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{split2, Organization, TimeSemantics, VecStream};
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn lattice(w: u32, h: u32) -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), w, h)
    }

    fn band(name: &str, w: u32, h: u32, f: impl Fn(u32, u32) -> f64) -> VecStream<f32> {
        VecStream::single_sector(name, lattice(w, h), 0, f)
    }

    #[test]
    fn gamma_ops_apply() {
        assert_eq!(GammaOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(GammaOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(GammaOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(GammaOp::Div.apply(6.0, 3.0), 2.0);
        assert_eq!(GammaOp::Div.apply(6.0, 0.0), 0.0, "guarded division");
        assert_eq!(GammaOp::Sup.apply(2.0, 3.0), 3.0);
        assert_eq!(GammaOp::Inf.apply(2.0, 3.0), 2.0);
    }

    #[test]
    fn gamma_symbols_round_trip() {
        for op in
            [GammaOp::Add, GammaOp::Sub, GammaOp::Mul, GammaOp::Div, GammaOp::Sup, GammaOp::Inf]
        {
            assert_eq!(GammaOp::from_symbol(op.symbol()), Some(op));
        }
        assert_eq!(GammaOp::from_symbol("%"), None);
    }

    #[test]
    fn compose_adds_matching_points() {
        let a = band("a", 4, 4, |c, r| f64::from(c + r));
        let b = band("b", 4, 4, |c, r| f64::from(c * r));
        let mut op = Compose::new(a, b, GammaOp::Add, JoinStrategy::Hash).unwrap();
        let pts = op.drain_points();
        assert_eq!(pts.len(), 16);
        for p in &pts {
            let (c, r) = (p.cell.col, p.cell.row);
            assert_eq!(f64::from(p.value), f64::from(c + r) + f64::from(c * r));
        }
        assert_eq!(op.unmatched_dropped, 0);
    }

    #[test]
    fn compose_rejects_crs_mismatch() {
        let a = band("a", 2, 2, |_, _| 0.0);
        let lat2 =
            LatticeGeoref::north_up(Crs::utm(10, true), Rect::new(0.0, 0.0, 100.0, 100.0), 2, 2);
        let b: VecStream<f32> = VecStream::single_sector("b", lat2, 0, |_, _| 0.0);
        assert!(Compose::new(a, b, GammaOp::Add, JoinStrategy::Hash).is_err());
    }

    fn elements_of(mut s: VecStream<f32>) -> Vec<Element<f32>> {
        s.drain_elements()
    }

    #[test]
    fn row_interleaved_transport_buffers_one_row() {
        // Build a line-interleaved transport of two 8x8 bands.
        let a = elements_of(band("a", 8, 8, |c, _| f64::from(c)));
        let b = elements_of(band("b", 8, 8, |_, r| f64::from(r)));
        let transport = interleave_rows(a, b);
        let (s0, s1) = split2(
            transport.into_iter(),
            StreamSchema::new("a", Crs::LatLon),
            StreamSchema::new("b", Crs::LatLon),
        );
        let mut op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).unwrap();
        let pts = op.drain_points();
        assert_eq!(pts.len(), 64);
        let peak = op.op_stats().buffered_points_peak;
        assert!(peak <= 2 * 8, "row-by-row compose peak {peak} should be ~1 row");
    }

    #[test]
    fn band_sequential_transport_buffers_one_image() {
        let a = elements_of(band("a", 8, 8, |c, _| f64::from(c)));
        let b = elements_of(band("b", 8, 8, |_, r| f64::from(r)));
        // Whole image of band a, then whole image of band b.
        let transport: Vec<(u8, Element<f32>)> =
            a.into_iter().map(|e| (0u8, e)).chain(b.into_iter().map(|e| (1u8, e))).collect();
        let (s0, s1) = split2(
            transport.into_iter(),
            StreamSchema::new("a", Crs::LatLon),
            StreamSchema::new("b", Crs::LatLon),
        );
        let mut op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).unwrap();
        let pts = op.drain_points();
        assert_eq!(pts.len(), 64);
        // Total composition-subsystem buffering ≈ one image: either the
        // split queue or the operator's own hash buffer held it.
        let mut reports = Vec::new();
        op.collect_stats(&mut reports);
        let total_peak: u64 =
            reports.iter().map(|r| r.stats.buffered_points_peak).max().unwrap_or(0);
        assert!(total_peak >= 60, "image-by-image should buffer ~an image, got {total_peak}");
    }

    #[test]
    fn measurement_time_streams_never_match() {
        // Two streams whose frames carry different timestamps: per §3.3
        // the composition produces no output.
        let mk = |name: &str, ts_off: i64| {
            let mut s = band(name, 4, 4, |c, _| f64::from(c));
            let els: Vec<Element<f32>> = s
                .drain_elements()
                .into_iter()
                .map(|el| match el {
                    Element::FrameStart(mut fi) => {
                        fi.timestamp = Timestamp::new(fi.frame_id as i64 * 2 + ts_off);
                        Element::FrameStart(fi)
                    }
                    other => other,
                })
                .collect();
            let mut schema = StreamSchema::new(name, Crs::LatLon);
            schema.time_semantics = TimeSemantics::MeasurementTime;
            VecStream::new(schema, els)
        };
        let mut op =
            Compose::new(mk("a", 0), mk("b", 1), GammaOp::Add, JoinStrategy::Hash).unwrap();
        let pts = op.drain_points();
        assert!(pts.is_empty(), "measurement timestamps must never match");
        assert_eq!(op.unmatched_dropped, 32);
    }

    #[test]
    fn frame_merge_strategy_matches_hash_output() {
        let run = |strategy| {
            let a = band("a", 6, 6, |c, r| f64::from(c + r));
            let b = band("b", 6, 6, |c, r| f64::from(c).max(f64::from(r)));
            let mut op = Compose::new(a, b, GammaOp::Mul, strategy).unwrap();
            let mut pts = op.drain_points();
            pts.sort_by_key(|p| (p.cell.row, p.cell.col));
            pts.iter().map(|p| p.value).collect::<Vec<f32>>()
        };
        assert_eq!(run(JoinStrategy::Hash), run(JoinStrategy::FrameMerge));
    }

    #[test]
    fn multi_sector_composition_flushes_between_sectors() {
        let mk = |name: &str| {
            VecStream::<f32>::sectors(name, lattice(4, 4), 3, |s, c, r| f64::from(c + r) + s as f64)
        };
        let mut op = Compose::new(mk("a"), mk("b"), GammaOp::Sub, JoinStrategy::Hash).unwrap();
        let els = op.drain_elements();
        let pts = els.iter().filter(|e| e.is_point()).count();
        assert_eq!(pts, 3 * 16);
        let sector_ends = els.iter().filter(|e| matches!(e, Element::SectorEnd(_))).count();
        assert_eq!(sector_ends, 3);
        // All diffs are zero.
        for el in els {
            if let Element::Point(p) = el {
                assert_eq!(p.value, 0.0);
            }
        }
        assert_eq!(op.op_stats().buffered_points, 0);
    }

    /// Helper: interleave two row-by-row element sequences row frame by
    /// row frame (band-interleaved-by-line transmission).
    fn interleave_rows(a: Vec<Element<f32>>, b: Vec<Element<f32>>) -> Vec<(u8, Element<f32>)> {
        let frames = |els: Vec<Element<f32>>| {
            let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
            for el in els {
                let boundary = matches!(el, Element::FrameEnd(_) | Element::SectorStart(_));
                out.last_mut().expect("nonempty").push(el);
                if boundary {
                    out.push(Vec::new());
                }
            }
            out.retain(|g| !g.is_empty());
            out
        };
        let fa = frames(a);
        let fb = frames(b);
        let mut out = Vec::new();
        for (ga, gb) in fa.into_iter().zip(fb) {
            out.extend(ga.into_iter().map(|e| (0u8, e)));
            out.extend(gb.into_iter().map(|e| (1u8, e)));
        }
        out
    }

    #[test]
    fn mismatched_lattices_never_join() {
        // Definition 10: both streams must share a point lattice. A
        // stream joined against a magnified version of itself shares no
        // points even though cell indices overlap numerically.
        use crate::ops::Magnify;
        let a = band("a", 4, 4, |c, r| f64::from(c + r));
        let b = Magnify::new(band("b", 4, 4, |c, r| f64::from(c + r)), 2);
        let mut op = Compose::new(a, b, GammaOp::Add, JoinStrategy::Hash).unwrap();
        let pts = op.drain_points();
        assert!(pts.is_empty(), "different lattices share no points");
        assert!(op.unmatched_dropped > 0);
    }

    #[test]
    fn organization_tag_is_metadata_only() {
        // Organization does not change correctness, only buffering.
        let a = band("a", 4, 4, |c, _| f64::from(c)).with_organization(Organization::ImageByImage);
        let b = band("b", 4, 4, |c, _| f64::from(c));
        let mut op = Compose::new(a, b, GammaOp::Sub, JoinStrategy::Hash).unwrap();
        assert!(op.drain_points().iter().all(|p| p.value == 0.0));
    }
}
