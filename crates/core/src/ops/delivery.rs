//! Delivery: reassembling images and encoding PNG for clients.
//!
//! §4 of the paper: the DSMS "streams the point data to a specialized
//! stream delivery operator that ships stream results back to clients
//! using the PNG image format". [`ImageAssembler`] realizes Definition 4
//! (an *image* is the same-timestamp subset of a stream) by collecting a
//! sector's points into a dense [`RasterImage`]; [`PngSink`] turns each
//! assembled image into PNG bytes, either grayscale (scaled by the
//! schema's value range) or through a [`ColorMap`].

use crate::model::{Element, GeoStream};
use crate::stats::OpStats;
use geostreams_raster::colormap::ColorMap;
use geostreams_raster::png::{self, PngOptions};
use geostreams_raster::{Grid2D, Pixel, RasterImage, Rgb8};

/// Collects each sector of a stream into a dense raster image. Cells
/// never delivered (restricted away or unmappable) keep `V::default()`.
pub struct ImageAssembler<S: GeoStream> {
    input: S,
    current: Option<PartialImage<S::V>>,
    stats: OpStats,
}

struct PartialImage<V> {
    grid: Grid2D<V>,
    georef: geostreams_geo::LatticeGeoref,
    timestamp: i64,
    band: u16,
    filled: u64,
}

impl<S: GeoStream> ImageAssembler<S> {
    /// Wraps a stream for image assembly.
    pub fn new(input: S) -> Self {
        ImageAssembler { input, current: None, stats: OpStats::default() }
    }

    /// Pulls until the next complete image (sector) is available.
    pub fn next_image(&mut self) -> Option<RasterImage<S::V>> {
        loop {
            let el = self.input.next_element()?;
            match el {
                Element::SectorStart(si) => {
                    self.current = Some(PartialImage {
                        grid: Grid2D::new(si.lattice.width, si.lattice.height),
                        georef: si.lattice,
                        timestamp: si.timestamp.value(),
                        band: si.band,
                        filled: 0,
                    });
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    if let Some(cur) = &mut self.current {
                        if p.cell.col < cur.grid.width() && p.cell.row < cur.grid.height() {
                            cur.grid.set(p.cell.col, p.cell.row, p.value);
                            cur.filled += 1;
                        }
                    }
                }
                Element::SectorEnd(_) => {
                    if let Some(cur) = self.current.take() {
                        if cur.filled > 0 {
                            self.stats.frames_out += 1;
                            return Some(RasterImage::new(
                                cur.grid,
                                cur.georef,
                                cur.timestamp,
                                cur.band,
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Drains the stream into all remaining images.
    pub fn collect_images(&mut self) -> Vec<RasterImage<S::V>> {
        let mut out = Vec::new();
        while let Some(img) = self.next_image() {
            out.push(img);
        }
        out
    }

    /// Assembly statistics.
    pub fn stats(&self) -> OpStats {
        self.stats.clone()
    }

    /// Access to the wrapped stream (for stats collection).
    pub fn inner(&self) -> &S {
        &self.input
    }
}

/// How [`PngSink`] renders pixel values.
#[derive(Debug, Clone)]
pub enum Rendering {
    /// 8-bit grayscale, scaling `[lo, hi]` to `0..=255`.
    Gray {
        /// Display range low bound.
        lo: f64,
        /// Display range high bound.
        hi: f64,
    },
    /// RGB through a color map over `[lo, hi]`.
    Mapped {
        /// Display range low bound.
        lo: f64,
        /// Display range high bound.
        hi: f64,
        /// The color ramp.
        map: ColorMap,
    },
}

/// A delivered frame: sector timestamp, band, and encoded PNG bytes.
#[derive(Debug, Clone)]
pub struct DeliveredFrame {
    /// Timestamp of the delivered image.
    pub timestamp: i64,
    /// Band of the delivered image.
    pub band: u16,
    /// Encoded PNG.
    pub png: Vec<u8>,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

/// Encodes each assembled image of a stream as a PNG.
pub struct PngSink<S: GeoStream> {
    assembler: ImageAssembler<S>,
    rendering: Rendering,
    options: PngOptions,
    /// Total PNG bytes produced so far.
    pub bytes_delivered: u64,
}

impl<S: GeoStream> PngSink<S> {
    /// Creates a sink with the given rendering; display range defaults to
    /// the stream schema's value range.
    pub fn new(input: S, rendering: Option<Rendering>, options: PngOptions) -> Self {
        let (lo, hi) = input.schema().value_range;
        let rendering = rendering.unwrap_or(Rendering::Gray { lo, hi });
        PngSink { assembler: ImageAssembler::new(input), rendering, options, bytes_delivered: 0 }
    }

    /// The stream feeding this sink (for post-run stats collection).
    pub fn inner(&self) -> &S {
        self.assembler.inner()
    }

    /// Pulls until the next delivered PNG frame.
    pub fn next_frame(&mut self) -> Option<DeliveredFrame> {
        let img = self.assembler.next_image()?;
        let png = match &self.rendering {
            Rendering::Gray { lo, hi } => {
                let span = if hi > lo { hi - lo } else { 1.0 };
                let gray: Grid2D<u8> = img
                    .grid
                    .map(|v| (((v.to_f64() - lo) / span).clamp(0.0, 1.0) * 255.0).round() as u8);
                png::encode_gray(&gray, self.options)
            }
            Rendering::Mapped { lo, hi, map } => {
                let rgb: Grid2D<Rgb8> = img.grid.map(|v| map.map_range(v.to_f64(), *lo, *hi));
                png::encode_rgb(&rgb, self.options)
            }
        };
        self.bytes_delivered += png.len() as u64;
        Some(DeliveredFrame {
            timestamp: img.timestamp,
            band: img.band,
            png,
            width: img.width(),
            height: img.height(),
        })
    }
}

/// Three-band true-color composite delivery: assembles one sector from
/// each of three single-band streams (sharing lattice dimensions) and
/// encodes an RGB PNG — the "Web-based graphical interface" view of §4.
pub struct RgbComposite<R: GeoStream, G: GeoStream, B: GeoStream> {
    r: ImageAssembler<R>,
    g: ImageAssembler<G>,
    b: ImageAssembler<B>,
    ranges: [(f64, f64); 3],
    options: PngOptions,
    /// Total PNG bytes produced so far.
    pub bytes_delivered: u64,
}

impl<R: GeoStream, G: GeoStream, B: GeoStream> RgbComposite<R, G, B> {
    /// Creates the composite; display ranges default to each stream's
    /// schema value range.
    pub fn new(r: R, g: G, b: B, options: PngOptions) -> Self {
        let ranges = [r.schema().value_range, g.schema().value_range, b.schema().value_range];
        RgbComposite {
            r: ImageAssembler::new(r),
            g: ImageAssembler::new(g),
            b: ImageAssembler::new(b),
            ranges,
            options,
            bytes_delivered: 0,
        }
    }

    /// Pulls until the next composite frame; `None` when any band ends
    /// or the bands' lattices stop matching.
    pub fn next_frame(&mut self) -> Option<DeliveredFrame> {
        let ir = self.r.next_image()?;
        let ig = self.g.next_image()?;
        let ib = self.b.next_image()?;
        if ir.width() != ig.width()
            || ir.width() != ib.width()
            || ir.height() != ig.height()
            || ir.height() != ib.height()
        {
            return None;
        }
        let to_byte = |v: f64, (lo, hi): (f64, f64)| -> u8 {
            let span = if hi > lo { hi - lo } else { 1.0 };
            (((v - lo) / span).clamp(0.0, 1.0) * 255.0).round() as u8
        };
        let [rr, rg, rb] = self.ranges;
        let rgb: Grid2D<Rgb8> = Grid2D::from_fn(ir.width(), ir.height(), |c, px_r| {
            Rgb8::new(
                to_byte(ir.grid.get(c, px_r).to_f64(), rr),
                to_byte(ig.grid.get(c, px_r).to_f64(), rg),
                to_byte(ib.grid.get(c, px_r).to_f64(), rb),
            )
        });
        let png = png::encode_rgb(&rgb, self.options);
        self.bytes_delivered += png.len() as u64;
        Some(DeliveredFrame {
            timestamp: ir.timestamp,
            band: 0,
            png,
            width: ir.width(),
            height: ir.height(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Cell, Crs, LatticeGeoref, Rect};
    use geostreams_raster::png::Decoded;

    fn lattice() -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8)
    }

    #[test]
    fn assembler_rebuilds_the_image() {
        let src: VecStream<f32> =
            VecStream::single_sector("src", lattice(), 7, |c, r| f64::from(c * r));
        let mut asm = ImageAssembler::new(src);
        let img = asm.next_image().unwrap();
        assert_eq!(img.timestamp, 7);
        assert_eq!(img.get(Cell::new(3, 5)), Some(15.0));
        assert!(asm.next_image().is_none());
    }

    #[test]
    fn assembler_emits_one_image_per_sector() {
        let src: VecStream<f32> = VecStream::sectors("src", lattice(), 3, |s, _, _| s as f64);
        let mut asm = ImageAssembler::new(src);
        let images = asm.collect_images();
        assert_eq!(images.len(), 3);
        assert_eq!(images[2].mean(), 2.0);
    }

    #[test]
    fn assembler_skips_empty_sectors() {
        // A value restriction that removes everything leaves no image.
        let src: VecStream<f32> = VecStream::single_sector("src", lattice(), 0, |_, _| 5.0);
        let filtered = crate::ops::ValueRestrict::range(src, 100.0, 200.0);
        let mut asm = ImageAssembler::new(filtered);
        assert!(asm.next_image().is_none());
    }

    #[test]
    fn png_sink_gray_round_trip() {
        let src: VecStream<f32> =
            VecStream::single_sector("src", lattice(), 0, |c, _| f64::from(c) / 7.0)
                .with_value_range(0.0, 1.0);
        let mut sink = PngSink::new(src, None, PngOptions::default());
        let frame = sink.next_frame().unwrap();
        assert_eq!((frame.width, frame.height), (8, 8));
        match geostreams_raster::png::decode(&frame.png).unwrap() {
            Decoded::Gray(g) => {
                assert_eq!(g.get(0, 0), 0);
                assert_eq!(g.get(7, 0), 255);
            }
            _ => panic!("expected gray"),
        }
        assert!(sink.bytes_delivered > 0);
    }

    #[test]
    fn rgb_composite_combines_three_bands() {
        let mk = |v: f64| -> VecStream<f32> {
            VecStream::single_sector("band", lattice(), 0, move |c, _| v * f64::from(c) / 7.0)
                .with_value_range(0.0, 1.0)
        };
        let mut comp = RgbComposite::new(mk(1.0), mk(0.5), mk(0.0), PngOptions::default());
        let frame = comp.next_frame().unwrap();
        match geostreams_raster::png::decode(&frame.png).unwrap() {
            Decoded::Rgb(g) => {
                let px = g.get(7, 0);
                assert_eq!(px.r, 255);
                assert_eq!(px.g, 128);
                assert_eq!(px.b, 0);
            }
            _ => panic!("expected rgb"),
        }
        assert!(comp.next_frame().is_none(), "single sector exhausted");
        assert!(comp.bytes_delivered > 0);
    }

    #[test]
    fn rgb_composite_rejects_mismatched_lattices() {
        let a: VecStream<f32> = VecStream::single_sector("a", lattice(), 0, |_, _| 0.5);
        let small = geostreams_geo::LatticeGeoref::north_up(
            Crs::LatLon,
            geostreams_geo::Rect::new(0.0, 0.0, 8.0, 8.0),
            4,
            4,
        );
        let b: VecStream<f32> = VecStream::single_sector("b", small, 0, |_, _| 0.5);
        let c: VecStream<f32> = VecStream::single_sector("c", lattice(), 0, |_, _| 0.5);
        let mut comp = RgbComposite::new(a, b, c, PngOptions::default());
        assert!(comp.next_frame().is_none());
    }

    #[test]
    fn png_sink_colormapped_ndvi() {
        let src: VecStream<f32> = VecStream::single_sector("ndvi", lattice(), 0, |c, _| {
            f64::from(c) / 7.0 * 2.0 - 1.0 // NDVI in [-1, 1]
        });
        let rendering = Rendering::Mapped { lo: -1.0, hi: 1.0, map: ColorMap::ndvi() };
        let mut sink = PngSink::new(src, Some(rendering), PngOptions::default());
        let frame = sink.next_frame().unwrap();
        match geostreams_raster::png::decode(&frame.png).unwrap() {
            Decoded::Rgb(g) => {
                // High NDVI column is green-dominant.
                let lush = g.get(7, 0);
                assert!(lush.g > lush.r && lush.g > lush.b);
            }
            _ => panic!("expected rgb"),
        }
    }
}
