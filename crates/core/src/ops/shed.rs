//! Load shedding.
//!
//! The paper's introduction lists load shedding among the adaptive DSMS
//! techniques its framework should carry over to image streams. For a
//! raster stream, dropping *random* points produces speckle; dropping
//! whole rows or a regular cell stride degrades gracefully (the image
//! loses resolution, not coherence). [`Shed`] implements both policies
//! deterministically — the engine can dial `keep_ratio` down when a
//! pipeline falls behind the downlink, and every dropped point is
//! counted.

use crate::model::{ChunkOrMarker, Element, GeoStream, Marker, StreamSchema};
use crate::stats::{OpReport, OpStats};
use serde::{Deserialize, Serialize};

/// What a shedding operator drops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Keep every point of every k-th row-frame, drop other frames
    /// entirely (cheapest: whole frames skip the pipeline).
    Rows,
    /// Keep a regular subgrid of points (uniform resolution loss).
    Points,
}

/// The load-shedding operator.
pub struct Shed<S: GeoStream> {
    input: S,
    policy: ShedPolicy,
    /// Keep 1 of every `stride` rows/points.
    stride: u32,
    frame_counter: u64,
    keeping_frame: bool,
    /// Points dropped so far.
    pub dropped: u64,
    stats: OpStats,
    schema: StreamSchema,
}

impl<S: GeoStream> Shed<S> {
    /// Keeps `1/stride` of the stream (`stride = 1` keeps everything).
    pub fn new(input: S, policy: ShedPolicy, stride: u32) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        let schema = input.schema().renamed(format!("shed[{policy:?} 1/{stride}]"));
        Shed {
            input,
            policy,
            stride,
            frame_counter: 0,
            keeping_frame: true,
            dropped: 0,
            stats: OpStats::default(),
            schema,
        }
    }

    /// The effective keep ratio.
    pub fn keep_ratio(&self) -> f64 {
        1.0 / f64::from(self.stride)
    }

    /// Marker transition shared by the scalar and chunked paths.
    fn chunk_marker(&mut self, m: Marker) -> Option<Marker> {
        match (m, self.policy) {
            (Marker::FrameStart(fi), ShedPolicy::Rows) => {
                self.stats.frames_in += 1;
                self.keeping_frame = self.frame_counter.is_multiple_of(u64::from(self.stride));
                self.frame_counter += 1;
                if self.keeping_frame {
                    self.stats.frames_out += 1;
                    Some(Marker::FrameStart(fi))
                } else {
                    self.stats.stalls += 1;
                    None
                }
            }
            (Marker::FrameEnd(fe), ShedPolicy::Rows) => {
                if self.keeping_frame {
                    Some(Marker::FrameEnd(fe))
                } else {
                    None
                }
            }
            (Marker::FrameStart(fi), ShedPolicy::Points) => {
                self.stats.frames_in += 1;
                self.stats.frames_out += 1;
                Some(Marker::FrameStart(fi))
            }
            (m, _) => Some(m),
        }
    }
}

impl<S: GeoStream> GeoStream for Shed<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            let el = self.input.next_element()?;
            match (&el, self.policy) {
                (Element::FrameStart(_), ShedPolicy::Rows) => {
                    self.stats.frames_in += 1;
                    self.keeping_frame = self.frame_counter.is_multiple_of(u64::from(self.stride));
                    self.frame_counter += 1;
                    if self.keeping_frame {
                        self.stats.frames_out += 1;
                        return Some(el);
                    }
                    self.stats.stalls += 1;
                }
                (Element::Point(p), ShedPolicy::Rows) => {
                    self.stats.points_in += 1;
                    if self.keeping_frame {
                        self.stats.points_out += 1;
                        return Some(el);
                    }
                    self.dropped += 1;
                    let _ = p;
                }
                (Element::FrameEnd(_), ShedPolicy::Rows) => {
                    if self.keeping_frame {
                        return Some(el);
                    }
                }
                (Element::Point(p), ShedPolicy::Points) => {
                    self.stats.points_in += 1;
                    let keep = p.cell.col % self.stride == 0 && p.cell.row % self.stride == 0;
                    if keep {
                        self.stats.points_out += 1;
                        return Some(el);
                    }
                    self.dropped += 1;
                }
                (Element::FrameStart(_), ShedPolicy::Points) => {
                    self.stats.frames_in += 1;
                    self.stats.frames_out += 1;
                    return Some(el);
                }
                _ => return Some(el),
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<S::V>> {
        loop {
            match self.input.next_chunk(budget)? {
                ChunkOrMarker::Marker(m) => {
                    if let Some(out) = self.chunk_marker(m) {
                        return Some(ChunkOrMarker::Marker(out));
                    }
                }
                ChunkOrMarker::Chunk(mut c) => {
                    let n = c.points.len() as u64;
                    self.stats.points_in += n;
                    let end = c.end.take();
                    match self.policy {
                        ShedPolicy::Rows => {
                            // The whole run shares the frame's verdict.
                            if self.keeping_frame {
                                self.stats.points_out += n;
                            } else {
                                self.dropped += n;
                                c.points.clear();
                            }
                        }
                        ShedPolicy::Points => {
                            let stride = self.stride;
                            c.points
                                .retain(|p| p.cell.col % stride == 0 && p.cell.row % stride == 0);
                            let kept = c.points.len() as u64;
                            self.stats.points_out += kept;
                            self.dropped += n - kept;
                        }
                    }
                    let end_keep = end.and_then(|m| self.chunk_marker(m));
                    if c.points.is_empty() {
                        c.recycle();
                        if let Some(m) = end_keep {
                            return Some(ChunkOrMarker::Marker(m));
                        }
                    } else {
                        c.end = end_keep;
                        return Some(ChunkOrMarker::Chunk(c));
                    }
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
        out.push(OpReport::new(self.schema.name.clone(), self.op_stats()));
    }
}

/// Shedding drops *points* but always keeps markers (the PR 3 contract):
/// the bracketing skeleton and surviving-point order pass through
/// untouched, so the contract is a pure forwarder.
pub fn shed_contract() -> crate::ops::ProtocolContract {
    use crate::ops::protocol::{Granularity, Parallelism};
    // The frame/point stride counters run across the whole stream, so a
    // per-morsel instance would restart the cadence: serial only.
    crate::ops::ProtocolContract::forwarding("shed")
        .with_parallelism(Parallelism::OrderSensitive, Granularity::Sector)
}

impl<S: GeoStream> Shed<S> {
    /// Shedding drops elements in place: non-blocking, zero buffering.
    pub fn declared_blocking(&self) -> crate::ops::BlockingClass {
        crate::ops::BlockingClass::NonBlocking
    }

    /// Protocol contract: transparent forwarder (see [`shed_contract`]).
    pub fn declared_contract(&self) -> crate::ops::ProtocolContract {
        shed_contract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn source(w: u32, h: u32) -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), w, h);
        VecStream::single_sector("src", lattice, 0, |c, r| f64::from(c + 100 * r))
    }

    #[test]
    fn stride_one_keeps_everything() {
        let mut op = Shed::new(source(8, 8), ShedPolicy::Points, 1);
        assert_eq!(op.drain_points().len(), 64);
        assert_eq!(op.dropped, 0);
    }

    #[test]
    fn row_shedding_keeps_every_kth_row() {
        let mut op = Shed::new(source(8, 8), ShedPolicy::Rows, 2);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 32);
        assert!(pts.iter().all(|p| p.cell.row % 2 == 0));
        assert_eq!(op.dropped, 32);
    }

    #[test]
    fn point_shedding_keeps_subgrid() {
        let mut op = Shed::new(source(8, 8), ShedPolicy::Points, 4);
        let pts = op.drain_points();
        assert_eq!(pts.len(), 4); // cols {0,4} x rows {0,4}
        assert!(pts.iter().all(|p| p.cell.col % 4 == 0 && p.cell.row % 4 == 0));
        assert_eq!(op.dropped, 60);
    }

    #[test]
    fn row_shedding_emits_no_empty_frames() {
        let mut op = Shed::new(source(4, 6), ShedPolicy::Rows, 3);
        let els = op.drain_elements();
        let starts = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        let ends = els.iter().filter(|e| matches!(e, Element::FrameEnd(_))).count();
        assert_eq!(starts, 2); // rows 0 and 3
        assert_eq!(starts, ends);
    }

    #[test]
    fn shedding_never_buffers() {
        let mut op = Shed::new(source(32, 32), ShedPolicy::Rows, 4);
        let _ = op.drain_points();
        assert_eq!(op.op_stats().buffered_points_peak, 0);
    }

    #[test]
    fn keep_ratio_matches_stride() {
        for stride in [1u32, 2, 3, 7, 16] {
            let op = Shed::new(source(4, 4), ShedPolicy::Points, stride);
            assert!((op.keep_ratio() - 1.0 / f64::from(stride)).abs() < 1e-12);
        }
    }

    #[test]
    fn keep_ratio_holds_under_bursty_input() {
        // Frames arriving in uneven bursts (many short rows, then long
        // ones) must still converge on the declared keep ratio.
        use crate::model::{Element, FrameEnd, FrameInfo, SectorInfo, StreamSchema};
        use crate::model::{Organization, Timestamp};
        use geostreams_geo::{Cell, CellBox};
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), 64, 32);
        let mut els: Vec<Element<f32>> = vec![Element::SectorStart(SectorInfo {
            sector_id: 0,
            lattice,
            band: 0,
            organization: Organization::RowByRow,
            timestamp: Timestamp::new(0),
        })];
        // Bursts: rows of width 1, 64, 2, 64, 3, ... (id = row).
        let widths = [1u32, 64, 2, 64, 3, 64, 4, 64, 5, 64];
        for (row, w) in widths.iter().enumerate() {
            let row = row as u32;
            els.push(Element::FrameStart(FrameInfo {
                frame_id: u64::from(row),
                sector_id: 0,
                timestamp: Timestamp::new(0),
                cells: CellBox::new(0, row, w - 1, row),
                synth_ns: 0,
            }));
            for col in 0..*w {
                els.push(Element::point(Cell::new(col, row), 1.0f32));
            }
            els.push(Element::FrameEnd(FrameEnd { frame_id: u64::from(row), sector_id: 0 }));
        }
        els.push(Element::SectorEnd(crate::model::SectorEnd { sector_id: 0 }));
        let total: u64 = widths.iter().map(|w| u64::from(*w)).sum();

        // Rows policy: exactly every stride-th frame survives, whatever
        // its burst size.
        let src = VecStream::new(StreamSchema::new("bursty", Crs::LatLon), els.clone());
        let mut op = Shed::new(src, ShedPolicy::Rows, 2);
        let pts = op.drain_points();
        let kept_rows: u64 = widths.iter().step_by(2).map(|w| u64::from(*w)).sum();
        assert_eq!(pts.len() as u64, kept_rows);
        assert_eq!(op.dropped, total - kept_rows);
        assert!((op.keep_ratio() - 0.5).abs() < 1e-12);

        // Points policy: the kept fraction tracks 1/stride² on the
        // subgrid (cols and rows both strided), independent of burst
        // shape.
        let src = VecStream::new(StreamSchema::new("bursty", Crs::LatLon), els);
        let mut op = Shed::new(src, ShedPolicy::Points, 4);
        let pts = op.drain_points();
        assert!(pts.iter().all(|p| p.cell.col % 4 == 0 && p.cell.row % 4 == 0));
        assert_eq!(pts.len() as u64 + op.dropped, total, "every point accounted for");
    }

    #[test]
    fn declared_blocking_stays_nonblocking() {
        // The PR 2 static analyzer admits shed pipelines as NonBlocking;
        // this pins the contract for both policies and any stride.
        for policy in [ShedPolicy::Rows, ShedPolicy::Points] {
            for stride in [1, 2, 8] {
                let op = Shed::new(source(4, 4), policy, stride);
                assert_eq!(op.declared_blocking(), crate::ops::BlockingClass::NonBlocking);
            }
        }
    }

    #[test]
    fn shed_then_downsample_degrades_gracefully() {
        // A classic shed-then-aggregate pipeline still yields an image.
        use crate::ops::Downsample;
        let shed = Shed::new(source(16, 16), ShedPolicy::Points, 2);
        let mut down = Downsample::new(shed, 2);
        let pts = down.drain_points();
        assert_eq!(pts.len(), 64, "one surviving point per 2x2 block");
    }
}
