//! Stream-protocol contracts: the FrameEnd/SectorEnd marker discipline
//! of DESIGN.md §12 as a machine-checked algebra.
//!
//! Every element stream obeys the bracketing grammar
//! `SectorStart (FrameStart Point* FrameEnd)* SectorEnd`, and chunked
//! transport additionally promises that a point run never crosses a
//! frame or sector edge. Until now those invariants lived in prose and
//! were enforced only by runtime differential tests. This module makes
//! them first-class:
//!
//! * a [`ProtocolContract`] declares, per operator, what it does to
//!   framing markers ([`MarkerEffect`]), what it does to lattice order
//!   ([`OrderEffect`]), what it requires of its input, and how it
//!   treats chunk boundaries ([`ChunkDiscipline`]);
//! * [`CertBuilder`] composes contracts bottom-up along a plan into a
//!   [`ProtocolCertificate`]: the proof object that every stage's input
//!   requirements are met by the guarantees its upstream emits. The
//!   static analyzer attaches the certificate to every
//!   [`PlanReport`](crate::query::PlanReport), and the DSMS refuses to
//!   admit a plan whose certificate is not [`ProtocolCertificate::certified`];
//! * [`ChunkProtocolChecker`] cross-checks the discipline **live** in
//!   debug builds (marker bracketing, chunks never crossing frame or
//!   sector edges); it compiles to a no-op in release builds so the
//!   certified fast path pays nothing.

// `Marker` is only consumed by the debug-build checker body.
#[cfg_attr(not(debug_assertions), allow(unused_imports))]
use crate::model::{ChunkOrMarker, Marker};
use geostreams_raster::Pixel;
use serde::{Deserialize, Serialize};

/// What an operator does to the framing markers passing through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarkerEffect {
    /// Every input marker is forwarded unchanged, in place: bracketing
    /// of the input is bracketing of the output (restrictions,
    /// point-wise transforms, orientation, shedding).
    Forward,
    /// Input markers are consumed and a fresh, well-bracketed marker
    /// sequence is synthesized for the output lattice (downsampling,
    /// re-projection, composition, aggregation, delay, stretch).
    Resynthesize,
    /// A source: markers are synthesized from nothing (scanners,
    /// archive replay, splice).
    Synthesize,
}

impl std::fmt::Display for MarkerEffect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MarkerEffect::Forward => "forward",
            MarkerEffect::Resynthesize => "resynthesize",
            MarkerEffect::Synthesize => "synthesize",
        })
    }
}

/// What an operator does to lattice (row-major, frame-major) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderEffect {
    /// Output order is input order (every §3.1 restriction, value
    /// transforms, focal/downsample/stretch which re-emit in lattice
    /// order).
    Preserve,
    /// The operator restores lattice order from possibly disordered,
    /// possibly unbracketed input (the repair stage): its output is
    /// ordered and bracketed regardless of what arrives.
    Restore,
    /// A source: emits in lattice order by construction.
    Emit,
    /// The operator may emit out of lattice order; downstream stages
    /// that require order cannot be certified above it.
    Break,
}

impl std::fmt::Display for OrderEffect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OrderEffect::Preserve => "preserve",
            OrderEffect::Restore => "restore",
            OrderEffect::Emit => "emit",
            OrderEffect::Break => "break",
        })
    }
}

/// The smallest lattice unit an operator can be partitioned by without
/// changing its output: the unit a morsel must cover so a fresh operator
/// instance, fed only that unit, reproduces the serial operator's output
/// for it byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// State is frame-scoped (or derived from the enclosing
    /// `SectorStart`): one frame plus its sector context is a complete
    /// unit of work.
    Frame,
    /// State is sector-scoped (row bands, image-wide statistics): a
    /// whole `SectorStart..SectorEnd` bracket is the unit.
    Sector,
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Granularity::Frame => "frame",
            Granularity::Sector => "sector",
        })
    }
}

/// How an operator's work distributes across morsel workers (the
/// contract the [`MorselDriver`](crate::exec::run_morsels) composes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// A pure per-unit function at [`ProtocolContract::granularity`]: a
    /// fresh instance per morsel reproduces the serial output, so
    /// morsels can run on any worker in any order and be merged back by
    /// sequence number.
    Partitionable,
    /// The operator observes the stream serially (cross-sector
    /// counters, strides, temporal shifts): it must stay below the
    /// morsel split, on the single-threaded inner pipeline.
    OrderSensitive,
    /// The operator merges multiple inputs or windows across morsel
    /// boundaries (compositions, temporal aggregates): it bounds the
    /// parallel region and is never peeled into a morsel stage.
    BlockingMerge,
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Parallelism::Partitionable => "partitionable",
            Parallelism::OrderSensitive => "order-sensitive",
            Parallelism::BlockingMerge => "blocking-merge",
        })
    }
}

impl Default for Parallelism {
    /// Deserialized contracts from peers that predate the parallelism
    /// field must not be partitioned by default.
    fn default() -> Self {
        Parallelism::OrderSensitive
    }
}

impl Default for Granularity {
    /// The conservative unit: a sector morsel is always sufficient.
    fn default() -> Self {
        Granularity::Sector
    }
}

/// How an operator treats chunk boundaries relative to frame edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChunkDiscipline {
    /// Point runs pass through without re-batching; the input's
    /// edge-alignment is the output's.
    Preserve,
    /// The operator re-packs points into fresh chunks but maintains the
    /// §12 invariant that a run never crosses a frame or sector edge
    /// (everything built on [`pack_queue`](crate::model::pack_queue)).
    Repack,
}

impl std::fmt::Display for ChunkDiscipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChunkDiscipline::Preserve => "preserve",
            ChunkDiscipline::Repack => "repack",
        })
    }
}

/// The protocol promises one operator makes, and what it requires of
/// its input. Declared by each operator (see `declared_contract()` on
/// the operator types) and composed by the plan analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolContract {
    /// Operator name the contract belongs to.
    pub operator: String,
    /// Effect on framing markers.
    pub markers: MarkerEffect,
    /// Effect on lattice order.
    pub order: OrderEffect,
    /// Chunk-boundary behavior.
    pub chunks: ChunkDiscipline,
    /// The operator's correctness depends on well-bracketed input
    /// markers (frame-scoped state machines: stretch, aggregate,
    /// compose, delay, downsample, focal, reproject).
    pub requires_bracketing: bool,
    /// The operator's correctness depends on in-lattice-order input
    /// (row-band windows: focal, downsample, reproject; the
    /// frame-aligned merge of compose).
    pub requires_order: bool,
    /// How the operator's work distributes across morsel workers.
    #[serde(default)]
    pub parallelism: Parallelism,
    /// The morsel unit when `parallelism` is
    /// [`Parallelism::Partitionable`] (ignored otherwise).
    #[serde(default)]
    pub granularity: Granularity,
}

impl ProtocolContract {
    /// A source contract: synthesizes markers and order, requires
    /// nothing of (non-existent) input.
    pub fn source(operator: &str) -> Self {
        ProtocolContract {
            operator: operator.to_string(),
            markers: MarkerEffect::Synthesize,
            order: OrderEffect::Emit,
            chunks: ChunkDiscipline::Repack,
            requires_bracketing: false,
            requires_order: false,
            // A source is the scan itself: it cannot be split below
            // itself, only its consumers can be.
            parallelism: Parallelism::OrderSensitive,
            granularity: Granularity::Sector,
        }
    }

    /// A transparent pass-through contract: forwards markers and order
    /// untouched; tolerates anything (restrictions, value maps, shed).
    pub fn forwarding(operator: &str) -> Self {
        ProtocolContract {
            operator: operator.to_string(),
            markers: MarkerEffect::Forward,
            order: OrderEffect::Preserve,
            chunks: ChunkDiscipline::Preserve,
            requires_bracketing: false,
            requires_order: false,
            // Pure forwarders are frame-partitionable by default; ops
            // with cross-frame state (shed) override this.
            parallelism: Parallelism::Partitionable,
            granularity: Granularity::Frame,
        }
    }

    /// A frame-scoped contract: consumes the input marker structure,
    /// synthesizes its own, and needs bracketed, ordered input to do so
    /// (spatial transforms, compositions, aggregates).
    pub fn resynthesizing(operator: &str) -> Self {
        ProtocolContract {
            operator: operator.to_string(),
            markers: MarkerEffect::Resynthesize,
            order: OrderEffect::Preserve,
            chunks: ChunkDiscipline::Repack,
            requires_bracketing: true,
            requires_order: true,
            // Resynthesizers are serial unless the op proves its
            // state is sector-scoped and opts in (focal, stretch).
            parallelism: Parallelism::OrderSensitive,
            granularity: Granularity::Sector,
        }
    }

    /// The repair contract: restores bracketing and order from
    /// arbitrary (chaotic) input.
    pub fn repairing(operator: &str) -> Self {
        ProtocolContract {
            operator: operator.to_string(),
            markers: MarkerEffect::Resynthesize,
            order: OrderEffect::Restore,
            chunks: ChunkDiscipline::Repack,
            requires_bracketing: false,
            requires_order: false,
            // Repair reorders globally: it must see the stream whole.
            parallelism: Parallelism::OrderSensitive,
            granularity: Granularity::Sector,
        }
    }

    /// Overrides the parallelism class (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism, granularity: Granularity) -> Self {
        self.parallelism = parallelism;
        self.granularity = granularity;
        self
    }
}

/// What a stream statically guarantees at some point in a plan: the
/// state the certificate builder threads bottom-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamGuarantees {
    /// Markers are well bracketed
    /// (`SectorStart (FrameStart Point* FrameEnd)* SectorEnd`).
    pub bracketed: bool,
    /// Points arrive in lattice order within each frame.
    pub lattice_order: bool,
}

impl StreamGuarantees {
    /// The guarantees of a pristine source.
    pub fn pristine() -> Self {
        StreamGuarantees { bracketed: true, lattice_order: true }
    }
}

/// One stage of a certificate: the contract, where it sits in the plan,
/// and whether its input requirements were met.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCheck {
    /// Slash-separated operator path from the plan root.
    pub path: String,
    /// The stage's declared contract.
    pub contract: ProtocolContract,
    /// Guarantees the stage's input provides.
    pub input: StreamGuarantees,
    /// Guarantees the stage's output provides.
    pub output: StreamGuarantees,
    /// True when every input requirement of the contract is satisfied.
    pub ok: bool,
}

/// The composed proof that a plan respects the marker discipline:
/// produced by the static analyzer, attached to every
/// [`PlanReport`](crate::query::PlanReport), exposed over `GET /explain`,
/// and required by DSMS admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolCertificate {
    /// True when every stage's requirements are met: the plan provably
    /// preserves the FrameEnd/SectorEnd discipline end to end.
    pub certified: bool,
    /// Guarantees at the plan root (what the client receives).
    pub output: StreamGuarantees,
    /// Per-stage checks, innermost (sources) first.
    pub stages: Vec<StageCheck>,
    /// Human-readable composition failures (empty when certified).
    pub violations: Vec<String>,
}

impl Default for ProtocolCertificate {
    fn default() -> Self {
        // The zero value is deliberately *uncertified*: a report that
        // never ran the verifier (e.g. deserialized from an older
        // peer) must not pass admission by default.
        ProtocolCertificate {
            certified: false,
            output: StreamGuarantees { bracketed: false, lattice_order: false },
            stages: Vec::new(),
            violations: vec!["plan was not protocol-verified".to_string()],
        }
    }
}

/// Bottom-up certificate builder. The analyzer applies one contract per
/// operator as it walks the expression tree; [`CertBuilder::finish`]
/// seals the proof.
#[derive(Debug, Default)]
pub struct CertBuilder {
    stages: Vec<StageCheck>,
    violations: Vec<String>,
}

impl CertBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        CertBuilder::default()
    }

    /// Applies `contract` at `path` over input guarantees `input`,
    /// records the stage check, and returns the output guarantees.
    ///
    /// Binary operators call this with the *meet* of both input sides
    /// (see [`meet`]).
    pub fn apply(
        &mut self,
        path: &str,
        contract: &ProtocolContract,
        input: StreamGuarantees,
    ) -> StreamGuarantees {
        let mut ok = true;
        if contract.requires_bracketing && !input.bracketed {
            ok = false;
            self.violations.push(format!(
                "{path}: `{}` requires well-bracketed markers but its input does not \
                 guarantee bracketing",
                contract.operator
            ));
        }
        if contract.requires_order && !input.lattice_order {
            ok = false;
            self.violations.push(format!(
                "{path}: `{}` requires lattice-ordered input but its upstream may emit \
                 out of order",
                contract.operator
            ));
        }
        let output = match (contract.markers, contract.order) {
            // A repairing stage restores both properties outright.
            (_, OrderEffect::Restore) => StreamGuarantees::pristine(),
            // A source synthesizes both.
            (MarkerEffect::Synthesize, _) => StreamGuarantees::pristine(),
            // A resynthesizing stage emits fresh, well-bracketed
            // markers — but only if its own requirements held;
            // garbage in, garbage out.
            (MarkerEffect::Resynthesize, _) => StreamGuarantees {
                bracketed: ok,
                lattice_order: ok && contract.order != OrderEffect::Break,
            },
            // A forwarding stage propagates what it got; breaking
            // order taints the order guarantee.
            (MarkerEffect::Forward, order) => StreamGuarantees {
                bracketed: input.bracketed,
                lattice_order: input.lattice_order && order != OrderEffect::Break,
            },
        };
        self.stages.push(StageCheck {
            path: path.to_string(),
            contract: contract.clone(),
            input,
            output,
            ok,
        });
        output
    }

    /// Seals the proof: certified iff every stage checked out.
    pub fn finish(self, root_output: StreamGuarantees) -> ProtocolCertificate {
        let certified = self.stages.iter().all(|s| s.ok);
        ProtocolCertificate {
            certified,
            output: root_output,
            stages: self.stages,
            violations: self.violations,
        }
    }
}

/// The meet of two input guarantees (binary operators receive the
/// weaker of what each side provides).
pub fn meet(a: StreamGuarantees, b: StreamGuarantees) -> StreamGuarantees {
    StreamGuarantees {
        bracketed: a.bracketed && b.bracketed,
        lattice_order: a.lattice_order && b.lattice_order,
    }
}

/// Live cross-check of the marker discipline over chunked transport.
///
/// In debug builds [`ChunkProtocolChecker::observe`] runs a bracketing
/// state machine over every item a driver pulls and verifies the §12
/// chunk-boundary invariant (a point run may only be terminated by its
/// own frame's `FrameEnd`, never by a sector edge or a new opening
/// marker). In release builds `observe` is an empty inline function:
/// the validator is compiled out entirely, as the certificate already
/// carries the static proof.
#[derive(Debug, Default)]
// The state machine only runs under `debug_assertions`; in release the
// struct survives (stable API) but most of it is never touched.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub struct ChunkProtocolChecker {
    sector_open: bool,
    frame_open: bool,
    violations: u64,
    first: Option<String>,
}

impl ChunkProtocolChecker {
    /// A fresh checker (no sector open).
    pub fn new() -> Self {
        ChunkProtocolChecker::default()
    }

    /// Violations observed so far (always 0 in release builds).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Description of the first violation, if any.
    pub fn first_violation(&self) -> Option<&str> {
        self.first.as_deref()
    }

    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn fail(&mut self, msg: String) {
        self.violations += 1;
        if self.first.is_none() {
            self.first = Some(msg);
        }
    }

    /// Observes one pulled item. Debug builds check; release builds
    /// compile this to nothing.
    #[inline]
    pub fn observe<V: Pixel>(&mut self, item: &ChunkOrMarker<V>) {
        #[cfg(debug_assertions)]
        self.observe_impl(item);
        #[cfg(not(debug_assertions))]
        let _ = item;
    }

    #[cfg(debug_assertions)]
    fn observe_impl<V: Pixel>(&mut self, item: &ChunkOrMarker<V>) {
        match item {
            ChunkOrMarker::Chunk(c) => {
                if !self.frame_open {
                    self.fail("point run outside an open frame".to_string());
                }
                match &c.end {
                    None | Some(Marker::FrameEnd(_)) => {}
                    Some(other) => {
                        // The §12 invariant: a run is terminated by its
                        // frame's end or by budget exhaustion — any
                        // other marker means the chunk crossed a frame
                        // or sector edge.
                        self.fail(format!(
                            "point run crosses a frame/sector edge (terminated by {})",
                            marker_name(other)
                        ));
                    }
                }
                if let Some(m) = &c.end {
                    self.transition(m);
                }
            }
            ChunkOrMarker::Marker(m) => self.transition(m),
        }
    }

    #[cfg(debug_assertions)]
    fn transition(&mut self, m: &Marker) {
        match m {
            Marker::SectorStart(_) => {
                if self.sector_open {
                    self.fail("SectorStart while a sector is already open".to_string());
                }
                self.sector_open = true;
                self.frame_open = false;
            }
            Marker::FrameStart(_) => {
                if !self.sector_open {
                    self.fail("FrameStart outside a sector".to_string());
                }
                if self.frame_open {
                    self.fail("FrameStart while a frame is already open".to_string());
                }
                self.frame_open = true;
            }
            Marker::FrameEnd(_) => {
                if !self.frame_open {
                    self.fail("FrameEnd without an open frame".to_string());
                }
                self.frame_open = false;
            }
            Marker::SectorEnd(_) => {
                if self.frame_open {
                    self.fail("SectorEnd while a frame is still open".to_string());
                    self.frame_open = false;
                }
                if !self.sector_open {
                    self.fail("SectorEnd without an open sector".to_string());
                }
                self.sector_open = false;
            }
        }
    }

    /// End-of-stream check: an open frame or sector at stream end is a
    /// truncation. Not called by the drivers (a watchdog-cancelled
    /// query ends mid-sector legitimately); available for tests that
    /// assert a complete run.
    pub fn finish(&mut self) {
        #[cfg(debug_assertions)]
        if self.frame_open || self.sector_open {
            self.fail("stream ended with an open frame or sector".to_string());
        }
    }
}

#[cfg(debug_assertions)]
fn marker_name(m: &Marker) -> &'static str {
    match m {
        Marker::SectorStart(_) => "SectorStart",
        Marker::FrameStart(_) => "FrameStart",
        Marker::FrameEnd(_) => "FrameEnd",
        Marker::SectorEnd(_) => "SectorEnd",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{drain_chunked, Chunk, GeoStream, VecStream};
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn source(sectors: u64) -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 4.0, 4.0), 8, 4);
        VecStream::sectors("p", lattice, sectors, |s, c, r| f64::from(c + r) + s as f64)
    }

    #[test]
    fn certificate_composes_over_a_linear_plan() {
        let mut b = CertBuilder::new();
        let src = b.apply(
            "/source",
            &ProtocolContract::source("source"),
            StreamGuarantees { bracketed: false, lattice_order: false },
        );
        assert_eq!(src, StreamGuarantees::pristine());
        let r = b.apply("/restrict", &ProtocolContract::forwarding("restrict_space"), src);
        let f = b.apply("/focal", &ProtocolContract::resynthesizing("focal"), r);
        let cert = b.finish(f);
        assert!(cert.certified, "{:?}", cert.violations);
        assert!(cert.output.bracketed && cert.output.lattice_order);
        assert_eq!(cert.stages.len(), 3);
        assert!(cert.violations.is_empty());
    }

    #[test]
    fn order_breaking_stage_blocks_certification_of_windowed_ops() {
        // A hypothetical reordering stage under a focal window: the
        // focal operator's order requirement cannot be discharged.
        let mut breaker = ProtocolContract::forwarding("scramble");
        breaker.order = OrderEffect::Break;
        let mut b = CertBuilder::new();
        let src =
            b.apply("/source", &ProtocolContract::source("source"), StreamGuarantees::pristine());
        let scrambled = b.apply("/scramble", &breaker, src);
        assert!(!scrambled.lattice_order);
        let out = b.apply("/focal", &ProtocolContract::resynthesizing("focal"), scrambled);
        // Garbage in, garbage out: the focal output is itself tainted.
        assert!(!out.lattice_order);
        let cert = b.finish(out);
        assert!(!cert.certified);
        assert_eq!(cert.stages.iter().filter(|s| !s.ok).count(), 1);
        assert!(cert.violations.iter().any(|v| v.contains("lattice-ordered")));
    }

    #[test]
    fn repair_restores_certifiability() {
        let mut breaker = ProtocolContract::forwarding("scramble");
        breaker.order = OrderEffect::Break;
        let mut b = CertBuilder::new();
        let src =
            b.apply("/src", &ProtocolContract::source("source"), StreamGuarantees::pristine());
        let scrambled = b.apply("/scramble", &breaker, src);
        let repaired = b.apply("/repair", &ProtocolContract::repairing("repair"), scrambled);
        assert_eq!(repaired, StreamGuarantees::pristine());
        let out = b.apply("/focal", &ProtocolContract::resynthesizing("focal"), repaired);
        let cert = b.finish(out);
        assert!(cert.certified, "{:?}", cert.violations);
    }

    #[test]
    fn meet_takes_the_weaker_side() {
        let strong = StreamGuarantees::pristine();
        let weak = StreamGuarantees { bracketed: true, lattice_order: false };
        assert_eq!(meet(strong, weak), weak);
        assert_eq!(meet(weak, strong), weak);
        assert_eq!(meet(strong, strong), strong);
    }

    #[test]
    fn default_certificate_is_uncertified() {
        let cert = ProtocolCertificate::default();
        assert!(!cert.certified);
        assert!(!cert.violations.is_empty());
    }

    #[test]
    fn certificate_serializes_round_trip() {
        let mut b = CertBuilder::new();
        let g = b.apply("/s", &ProtocolContract::source("source"), StreamGuarantees::pristine());
        let cert = b.finish(g);
        let json = serde_json::to_string(&cert).unwrap();
        let back: ProtocolCertificate = serde_json::from_str(&json).unwrap();
        assert_eq!(cert, back);
    }

    #[test]
    fn checker_accepts_every_generated_stream() {
        // All budgets, all sector counts: the §12 discipline holds on
        // anything our sources produce.
        for budget in [1usize, 5, 64, 1024] {
            let mut s = source(2);
            let mut checker = ChunkProtocolChecker::new();
            while let Some(item) = s.next_chunk(budget) {
                checker.observe(&item);
                item.recycle();
            }
            checker.finish();
            assert_eq!(checker.violations(), 0, "budget {budget}: {:?}", checker.first_violation());
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn checker_flags_edge_crossing_chunks() {
        use crate::model::{Element, SectorEnd};
        // A chunk terminated by a SectorEnd crosses the frame edge.
        let mut checker = ChunkProtocolChecker::new();
        let els = source(1).drain_elements();
        // Open sector + frame legitimately first.
        let mut opened = 0;
        for el in &els {
            match el {
                Element::SectorStart(si) => {
                    checker.observe::<f32>(&ChunkOrMarker::Marker(Marker::SectorStart(si.clone())));
                    opened += 1;
                }
                Element::FrameStart(fi) => {
                    checker.observe::<f32>(&ChunkOrMarker::Marker(Marker::FrameStart(*fi)));
                    opened += 1;
                }
                _ => {}
            }
            if opened == 2 {
                break;
            }
        }
        assert_eq!(checker.violations(), 0);
        let mut bad = Chunk::<f32>::with_budget(4);
        bad.points
            .push(crate::model::PointRecord { cell: geostreams_geo::Cell::new(0, 0), value: 1.0 });
        bad.end = Some(Marker::SectorEnd(SectorEnd { sector_id: 0 }));
        checker.observe(&ChunkOrMarker::Chunk(bad));
        assert!(checker.violations() > 0);
        assert!(checker.first_violation().unwrap().contains("crosses"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn checker_flags_bracketing_violations() {
        use crate::model::{FrameEnd, SectorEnd};
        let mut checker = ChunkProtocolChecker::new();
        checker.observe::<f32>(&ChunkOrMarker::Marker(Marker::FrameEnd(FrameEnd {
            frame_id: 0,
            sector_id: 0,
        })));
        checker
            .observe::<f32>(&ChunkOrMarker::Marker(Marker::SectorEnd(SectorEnd { sector_id: 0 })));
        assert_eq!(checker.violations(), 2);
    }

    #[test]
    fn parallelism_rides_constructor_defaults() {
        let f = ProtocolContract::forwarding("restrict_space");
        assert_eq!(f.parallelism, Parallelism::Partitionable);
        assert_eq!(f.granularity, Granularity::Frame);
        assert_eq!(ProtocolContract::source("scan").parallelism, Parallelism::OrderSensitive);
        assert_eq!(ProtocolContract::repairing("repair").parallelism, Parallelism::OrderSensitive);
        let focal = ProtocolContract::resynthesizing("focal")
            .with_parallelism(Parallelism::Partitionable, Granularity::Sector);
        assert_eq!(focal.parallelism, Parallelism::Partitionable);
        assert_eq!(focal.granularity, Granularity::Sector);
        // Sector morsels subsume frame morsels: the driver takes the max.
        assert!(Granularity::Sector > Granularity::Frame);
    }

    #[test]
    fn contracts_without_parallelism_deserialize_order_sensitive() {
        // A contract serialized by a peer that predates the parallelism
        // field must come back OrderSensitive (never silently split).
        let json = serde_json::to_string(&ProtocolContract::forwarding("old")).unwrap();
        let stripped = json
            .replace(",\"parallelism\":\"Partitionable\"", "")
            .replace(",\"granularity\":\"Frame\"", "");
        assert_ne!(json, stripped, "fields were present to strip");
        let back: ProtocolContract = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.parallelism, Parallelism::OrderSensitive);
        assert_eq!(back.granularity, Granularity::Sector);
    }

    #[test]
    fn drain_chunked_streams_stay_clean() {
        // Sanity: the chunk helpers themselves respect the discipline.
        let els = drain_chunked(&mut source(1), 7);
        assert!(!els.is_empty());
    }
}
