//! The stream operator algebra (§3 of the paper).
//!
//! Three operator classes, all closed over GeoStreams:
//!
//! * **restrictions** (§3.1): [`SpatialRestrict`], [`TemporalRestrict`],
//!   [`ValueRestrict`] — non-blocking, O(1) per point, zero buffering;
//! * **transforms** (§3.2): point-wise value maps ([`MapTransform`],
//!   [`CastTransform`]), frame/image-scoped stretches
//!   ([`StretchTransform`]), and spatial transforms ([`Magnify`],
//!   [`Downsample`], [`Reproject`]);
//! * **compositions** (§3.3): [`Compose`] with `γ ∈ {+,−,×,÷,sup,inf}`,
//!   plus macro operators such as [`macro_ops::ndvi`].
//!
//! [`aggregate`] adds the spatio-temporal aggregates the paper's outlook
//! (§6) announces, and [`delivery`] reassembles images and encodes PNG
//! for clients.

pub mod aggregate;
pub mod blocking;
pub mod compose;
pub mod delay;
pub mod delivery;
pub mod focal;
pub mod lanes;
pub mod macro_ops;
pub mod orient;
pub mod protocol;
pub mod reproject;
pub mod restrict;
pub mod shed;
pub mod spatial;
pub mod stretch;
pub mod value_transform;

pub use aggregate::{AggFunc, SpatialAggregate, TemporalAggregate};
pub use blocking::BlockingClass;
pub use compose::{Compose, GammaOp, JoinStrategy};
pub use delay::Delay;
pub use delivery::{ImageAssembler, PngSink, RgbComposite};
pub use focal::{FocalFunc, FocalTransform};
pub use orient::{Orient, Orientation};
pub use protocol::{
    meet, CertBuilder, ChunkDiscipline, ChunkProtocolChecker, Granularity, MarkerEffect,
    OrderEffect, Parallelism, ProtocolCertificate, ProtocolContract, StageCheck, StreamGuarantees,
};
pub use reproject::{Reproject, ReprojectConfig};
pub use restrict::{SpatialRestrict, TemporalRestrict, ValueRestrict};
pub use shed::{Shed, ShedPolicy};
pub use spatial::{Downsample, Magnify};
pub use stretch::{StretchMode, StretchScope, StretchTransform};
pub use value_transform::{CastTransform, MapTransform, ValueFunc};
