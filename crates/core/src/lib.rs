//! # GeoStreams core: a data and query model for streaming geospatial image data
//!
//! This crate implements the contribution of Gertz, Hart, Rueda, Singhal
//! and Zhang, *"A Data and Query Model for Streaming Geospatial Image
//! Data"* (EDBT 2006):
//!
//! * the **data model** of §2 — point lattices, value sets, streams,
//!   images and *GeoStreams* (geo-referenced streams), including the
//!   three point organizations of Fig. 1 and the two timestamp semantics
//!   (measurement time vs. scan-sector identifiers);
//! * the **query model** of §3 — a *closed* algebra of stream
//!   restrictions (spatial, temporal, value), stream transforms (value
//!   and spatial, including re-projection between coordinate systems) and
//!   stream compositions (`+ − × ÷ sup inf`), with the per-operator cost
//!   and buffering behavior the paper reasons about exposed as
//!   first-class [`stats::OpStats`];
//! * the **query language, optimizer and executor** sketched in §3.4/§4 —
//!   a textual algebra parser, rewrite rules that push spatial
//!   restrictions inward (across compositions, value transforms and
//!   re-projections, mapping regions between coordinate systems), and a
//!   pull-based streaming executor;
//! * the **multi-query spatial index** of §4 — a dynamic cascade tree
//!   that routes each incoming point to the registered queries whose
//!   regions of interest contain it.
//!
//! # Quickstart
//!
//! ```
//! use geostreams_core::model::{Element, StreamSchema, VecStream, Organization, TimeSemantics};
//! use geostreams_core::ops::SpatialRestrict;
//! use geostreams_core::model::GeoStream;
//! use geostreams_geo::{Crs, Rect, Region, LatticeGeoref};
//!
//! // A tiny one-sector stream over a 4x4 lat/lon lattice.
//! let lattice = LatticeGeoref::north_up(
//!     Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 4, 4);
//! let source: VecStream<f32> = VecStream::single_sector("demo", lattice, 1, |col, row| {
//!     (col + row) as f64
//! });
//!
//! // Spatial restriction to the north-west quadrant.
//! let region = Region::Rect(Rect::new(-124.0, 38.0, -122.0, 40.0));
//! let mut restricted = SpatialRestrict::new(source, region);
//! let mut kept = 0;
//! while let Some(el) = restricted.next_element() {
//!     if matches!(el, Element::Point(_)) { kept += 1; }
//! }
//! assert_eq!(kept, 4); // 2x2 cells fall inside
//! ```

#![warn(missing_docs)]
// Tests may unwrap freely; the deny applies to library code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod exec;
pub mod model;
pub mod obs;
pub mod ops;
pub mod query;
pub mod stats;

pub use error::{CoreError, Result};
pub use model::{
    Chunk, ChunkOrMarker, Element, GeoStream, Marker, Organization, StreamSchema, TimeSemantics,
    Timestamp, DEFAULT_CHUNK_BUDGET,
};
pub use stats::OpStats;
