//! Property-based tests of the query algebra: algebraic laws of the
//! operators (§3) and semantic preservation of the optimizer's rewrites
//! (§3.4) over randomized streams, regions and expressions.

use geostreams::core::model::{drain_points_of, GeoStream, PointRecord, VecStream};
use geostreams::core::ops::{
    Compose, GammaOp, JoinStrategy, MapTransform, SpatialRestrict, ValueFunc, ValueRestrict,
};
use geostreams::core::query::{optimize, parse_query, Catalog, Planner};
use geostreams::core::model::StreamSchema;
use geostreams::geo::{Crs, LatticeGeoref, Rect, Region};
use proptest::prelude::*;

const W: u32 = 12;
const H: u32 = 10;

fn lattice() -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 12.0, 10.0), W, H)
}

/// Builds a deterministic stream whose values derive from a seed.
fn stream(seed: u64) -> VecStream<f32> {
    VecStream::single_sector("s", lattice(), 0, move |c, r| {
        let x = (u64::from(c) * 31 + u64::from(r) * 17 + seed * 1299709) % 1000;
        x as f64 / 100.0
    })
    .with_value_range(0.0, 10.0)
}

fn sorted_points<S: GeoStream<V = f32>>(mut s: S) -> Vec<PointRecord<f32>> {
    let mut pts = drain_points_of(&mut s);
    pts.sort_by_key(|p| (p.cell.row, p.cell.col));
    pts
}

fn region_strategy() -> impl Strategy<Value = Region> {
    (0.0f64..12.0, 0.0f64..10.0, 0.5f64..8.0, 0.5f64..8.0)
        .prop_map(|(x, y, w, h)| Region::Rect(Rect::new(x, y, (x + w).min(12.0), (y + h).min(10.0))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Restriction is idempotent: G|R|R = G|R.
    #[test]
    fn spatial_restriction_idempotent(seed in 0u64..500, region in region_strategy()) {
        let once = sorted_points(SpatialRestrict::new(stream(seed), region.clone()));
        let twice = sorted_points(SpatialRestrict::new(
            SpatialRestrict::new(stream(seed), region.clone()),
            region,
        ));
        prop_assert_eq!(once, twice);
    }

    /// Restrictions commute: (G|R)|V = (G|V)|R.
    #[test]
    fn restrictions_commute(seed in 0u64..500, region in region_strategy(),
                            lo in 0.0f64..5.0, span in 0.5f64..5.0) {
        let a = sorted_points(ValueRestrict::range(
            SpatialRestrict::new(stream(seed), region.clone()), lo, lo + span));
        let b = sorted_points(SpatialRestrict::new(
            ValueRestrict::range(stream(seed), lo, lo + span), region));
        prop_assert_eq!(a, b);
    }

    /// Point-wise transforms commute with restrictions:
    /// f(G|R) = f(G)|R when f does not change positions.
    #[test]
    fn map_commutes_with_spatial_restrict(seed in 0u64..500, region in region_strategy(),
                                          scale in 0.1f64..3.0, offset in -5.0f64..5.0) {
        let f = ValueFunc::Linear { scale, offset };
        let a = sorted_points(MapTransform::<_, f32>::new(
            SpatialRestrict::new(stream(seed), region.clone()), f));
        let b = sorted_points(SpatialRestrict::new(
            MapTransform::<_, f32>::new(stream(seed), f), region));
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.cell, y.cell);
            prop_assert!((x.value - y.value).abs() < 1e-5);
        }
    }

    /// γ ∈ {+, ×, sup, inf} are commutative on matched points.
    #[test]
    fn commutative_gammas(seed1 in 0u64..200, seed2 in 0u64..200,
                          op_idx in 0usize..4) {
        let op = [GammaOp::Add, GammaOp::Mul, GammaOp::Sup, GammaOp::Inf][op_idx];
        let ab = sorted_points(
            Compose::new(stream(seed1), stream(seed2), op, JoinStrategy::Hash).unwrap());
        let ba = sorted_points(
            Compose::new(stream(seed2), stream(seed1), op, JoinStrategy::Hash).unwrap());
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert_eq!(x.cell, y.cell);
            prop_assert!((x.value - y.value).abs() < 1e-5);
        }
    }

    /// Composition distributes restriction: (G1 γ G2)|R = (G1|R) γ (G2|R).
    #[test]
    fn restriction_distributes_over_composition(
        seed1 in 0u64..200, seed2 in 0u64..200, region in region_strategy()
    ) {
        let outer = sorted_points(SpatialRestrict::new(
            Compose::new(stream(seed1), stream(seed2), GammaOp::Sub, JoinStrategy::Hash).unwrap(),
            region.clone(),
        ));
        let inner = sorted_points(
            Compose::new(
                SpatialRestrict::new(stream(seed1), region.clone()),
                SpatialRestrict::new(stream(seed2), region),
                GammaOp::Sub,
                JoinStrategy::Hash,
            )
            .unwrap(),
        );
        prop_assert_eq!(outer, inner);
    }

    /// NormDiff equals the three-composition NDVI formula.
    #[test]
    fn fused_normdiff_equals_formula(seed1 in 0u64..200, seed2 in 0u64..200) {
        let fused = sorted_points(
            Compose::new(stream(seed1), stream(seed2), GammaOp::NormDiff, JoinStrategy::Hash)
                .unwrap(),
        );
        for p in &fused {
            // Recompute from the definitions.
            let a = {
                let pts = sorted_points(stream(seed1));
                pts.iter().find(|q| q.cell == p.cell).unwrap().value
            };
            let b = {
                let pts = sorted_points(stream(seed2));
                pts.iter().find(|q| q.cell == p.cell).unwrap().value
            };
            let denom = f64::from(a) + f64::from(b);
            let expect = if denom.abs() < 1e-12 {
                0.0
            } else {
                (f64::from(a) - f64::from(b)) / denom
            };
            prop_assert!((f64::from(p.value) - expect).abs() < 1e-5);
        }
    }
}

/// Random query generator for optimizer-equivalence fuzzing.
fn query_strategy() -> impl Strategy<Value = String> {
    let region = (0.0f64..10.0, 0.0f64..8.0, 1.0f64..6.0, 1.0f64..6.0)
        .prop_map(|(x, y, w, h)| format!("bbox({x:.3}, {y:.3}, {:.3}, {:.3})", x + w, y + h));
    let leaf = prop_oneof![Just("g1".to_string()), Just("g2".to_string())];
    leaf.prop_recursive(3, 12, 2, move |inner| {
        let region = region.clone();
        prop_oneof![
            (inner.clone(), region.clone())
                .prop_map(|(e, r)| format!("restrict_space({e}, {r}, \"latlon\")")),
            (inner.clone(), -2.0f64..2.0, -1.0f64..1.0)
                .prop_map(|(e, s, o)| format!("scale({e}, {s:.3}, {o:.3})")),
            (inner.clone(), 0.0f64..5.0, 5.0f64..10.0)
                .prop_map(|(e, lo, hi)| format!("restrict_value({e}, {lo:.3}, {hi:.3})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("add({a}, {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("div(sub({a}, {b}), add({b}, {a}))")),
            inner.clone().prop_map(|e| format!("magnify({e}, 2)")),
            inner.clone().prop_map(|e| format!("focal({e}, \"mean\", 3)")),
            inner.clone().prop_map(|e| format!("shed({e}, \"points\", 2)")),
            inner.clone().prop_map(|e| format!("shed({e}, \"rows\", 2)")),
        ]
    })
}

fn fuzz_catalog() -> Catalog {
    let mut cat = Catalog::new();
    for (name, seed) in [("g1", 1u64), ("g2", 2)] {
        let mut schema = StreamSchema::new(name, Crs::LatLon);
        schema.sector_lattice = Some(lattice());
        schema.value_range = (0.0, 10.0);
        cat.register(schema, move || Box::new(stream(seed)));
    }
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimizer never changes query answers (the paper's rewrites
    /// are equivalences).
    #[test]
    fn optimizer_preserves_semantics(q in query_strategy()) {
        let cat = fuzz_catalog();
        let planner = Planner::new(&cat);
        let expr = parse_query(&q).unwrap();
        let optimized = optimize(&expr, &cat);
        let mut base = planner.build(&expr).unwrap();
        let mut opt = planner.build(&optimized).unwrap();
        let mut a = drain_points_of(&mut base);
        let mut b = drain_points_of(&mut opt);
        a.sort_by_key(|p| (p.cell.row, p.cell.col));
        b.sort_by_key(|p| (p.cell.row, p.cell.col));
        prop_assert_eq!(a.len(), b.len(), "{} vs {}", expr, optimized);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.cell, y.cell, "{} vs {}", expr, optimized);
            prop_assert!((x.value - y.value).abs() < 1e-4,
                "{} vs {}: {:?} {} != {}", expr, optimized, x.cell, x.value, y.value);
        }
    }

    /// Parse/display round-trips on random generated queries.
    #[test]
    fn parser_display_round_trip(q in query_strategy()) {
        let e1 = parse_query(&q).unwrap();
        let rendered = e1.to_string();
        let e2 = parse_query(&rendered).unwrap();
        prop_assert_eq!(e1, e2);
    }
}
