//! Property tests of the query algebra: algebraic laws of the operators
//! (§3) and semantic preservation of the optimizer's rewrites (§3.4)
//! over seeded pseudo-random streams, regions and expressions.

mod common;

use common::Rng;
use geostreams::core::model::StreamSchema;
use geostreams::core::model::{drain_points_of, GeoStream, PointRecord, VecStream};
use geostreams::core::ops::{
    Compose, GammaOp, JoinStrategy, MapTransform, SpatialRestrict, ValueFunc, ValueRestrict,
};
use geostreams::core::query::{optimize, parse_query, Catalog, Planner};
use geostreams::geo::{Crs, LatticeGeoref, Rect, Region};

const W: u32 = 12;
const H: u32 = 10;

fn lattice() -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 12.0, 10.0), W, H)
}

/// Builds a deterministic stream whose values derive from a seed.
fn stream(seed: u64) -> VecStream<f32> {
    VecStream::single_sector("s", lattice(), 0, move |c, r| {
        let x = (u64::from(c) * 31 + u64::from(r) * 17 + seed * 1299709) % 1000;
        x as f64 / 100.0
    })
    .with_value_range(0.0, 10.0)
}

fn sorted_points<S: GeoStream<V = f32>>(mut s: S) -> Vec<PointRecord<f32>> {
    let mut pts = drain_points_of(&mut s);
    pts.sort_by_key(|p| (p.cell.row, p.cell.col));
    pts
}

fn random_region(rng: &mut Rng) -> Region {
    let x = rng.uniform(0.0, 12.0);
    let y = rng.uniform(0.0, 10.0);
    let w = rng.uniform(0.5, 8.0);
    let h = rng.uniform(0.5, 8.0);
    Region::Rect(Rect::new(x, y, (x + w).min(12.0), (y + h).min(10.0)))
}

/// Restriction is idempotent: G|R|R = G|R.
#[test]
fn spatial_restriction_idempotent() {
    for case in 0..64u64 {
        let mut rng = Rng::new(case);
        let seed = rng.int(0, 500);
        let region = random_region(&mut rng);
        let once = sorted_points(SpatialRestrict::new(stream(seed), region.clone()));
        let twice = sorted_points(SpatialRestrict::new(
            SpatialRestrict::new(stream(seed), region.clone()),
            region,
        ));
        assert_eq!(once, twice, "case {case}");
    }
}

/// Restrictions commute: (G|R)|V = (G|V)|R.
#[test]
fn restrictions_commute() {
    for case in 0..64u64 {
        let mut rng = Rng::new(1000 + case);
        let seed = rng.int(0, 500);
        let region = random_region(&mut rng);
        let lo = rng.uniform(0.0, 5.0);
        let hi = lo + rng.uniform(0.5, 5.0);
        let a = sorted_points(ValueRestrict::range(
            SpatialRestrict::new(stream(seed), region.clone()),
            lo,
            hi,
        ));
        let b =
            sorted_points(SpatialRestrict::new(ValueRestrict::range(stream(seed), lo, hi), region));
        assert_eq!(a, b, "case {case}");
    }
}

/// Point-wise transforms commute with restrictions:
/// f(G|R) = f(G)|R when f does not change positions.
#[test]
fn map_commutes_with_spatial_restrict() {
    for case in 0..64u64 {
        let mut rng = Rng::new(2000 + case);
        let seed = rng.int(0, 500);
        let region = random_region(&mut rng);
        let f = ValueFunc::Linear { scale: rng.uniform(0.1, 3.0), offset: rng.uniform(-5.0, 5.0) };
        let a = sorted_points(MapTransform::<_, f32>::new(
            SpatialRestrict::new(stream(seed), region.clone()),
            f,
        ));
        let b = sorted_points(SpatialRestrict::new(
            MapTransform::<_, f32>::new(stream(seed), f),
            region,
        ));
        assert_eq!(a.len(), b.len(), "case {case}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cell, y.cell, "case {case}");
            assert!((x.value - y.value).abs() < 1e-5, "case {case}");
        }
    }
}

/// γ ∈ {+, ×, sup, inf} are commutative on matched points.
#[test]
fn commutative_gammas() {
    for case in 0..64u64 {
        let mut rng = Rng::new(3000 + case);
        let seed1 = rng.int(0, 200);
        let seed2 = rng.int(0, 200);
        let op = [GammaOp::Add, GammaOp::Mul, GammaOp::Sup, GammaOp::Inf][rng.index(4)];
        let ab = sorted_points(
            Compose::new(stream(seed1), stream(seed2), op, JoinStrategy::Hash).unwrap(),
        );
        let ba = sorted_points(
            Compose::new(stream(seed2), stream(seed1), op, JoinStrategy::Hash).unwrap(),
        );
        assert_eq!(ab.len(), ba.len(), "case {case}");
        for (x, y) in ab.iter().zip(&ba) {
            assert_eq!(x.cell, y.cell, "case {case}");
            assert!((x.value - y.value).abs() < 1e-5, "case {case}");
        }
    }
}

/// Composition distributes restriction: (G1 γ G2)|R = (G1|R) γ (G2|R).
#[test]
fn restriction_distributes_over_composition() {
    for case in 0..64u64 {
        let mut rng = Rng::new(4000 + case);
        let seed1 = rng.int(0, 200);
        let seed2 = rng.int(0, 200);
        let region = random_region(&mut rng);
        let outer = sorted_points(SpatialRestrict::new(
            Compose::new(stream(seed1), stream(seed2), GammaOp::Sub, JoinStrategy::Hash).unwrap(),
            region.clone(),
        ));
        let inner = sorted_points(
            Compose::new(
                SpatialRestrict::new(stream(seed1), region.clone()),
                SpatialRestrict::new(stream(seed2), region),
                GammaOp::Sub,
                JoinStrategy::Hash,
            )
            .unwrap(),
        );
        assert_eq!(outer, inner, "case {case}");
    }
}

/// NormDiff equals the three-composition NDVI formula.
#[test]
fn fused_normdiff_equals_formula() {
    for case in 0..16u64 {
        let mut rng = Rng::new(5000 + case);
        let seed1 = rng.int(0, 200);
        let seed2 = rng.int(0, 200);
        let fused = sorted_points(
            Compose::new(stream(seed1), stream(seed2), GammaOp::NormDiff, JoinStrategy::Hash)
                .unwrap(),
        );
        let pts1 = sorted_points(stream(seed1));
        let pts2 = sorted_points(stream(seed2));
        for p in &fused {
            let a = pts1.iter().find(|q| q.cell == p.cell).unwrap().value;
            let b = pts2.iter().find(|q| q.cell == p.cell).unwrap().value;
            let denom = f64::from(a) + f64::from(b);
            let expect =
                if denom.abs() < 1e-12 { 0.0 } else { (f64::from(a) - f64::from(b)) / denom };
            assert!((f64::from(p.value) - expect).abs() < 1e-5, "case {case} at {:?}", p.cell);
        }
    }
}

/// Random query generator for optimizer-equivalence fuzzing.
fn gen_query(rng: &mut Rng, depth: u32) -> String {
    if depth == 0 || rng.index(4) == 0 {
        return if rng.chance() { "g1" } else { "g2" }.to_string();
    }
    match rng.index(9) {
        0 => {
            let x = rng.uniform(0.0, 10.0);
            let y = rng.uniform(0.0, 8.0);
            let w = rng.uniform(1.0, 6.0);
            let h = rng.uniform(1.0, 6.0);
            format!(
                "restrict_space({}, bbox({x:.3}, {y:.3}, {:.3}, {:.3}), \"latlon\")",
                gen_query(rng, depth - 1),
                x + w,
                y + h
            )
        }
        1 => format!(
            "scale({}, {:.3}, {:.3})",
            gen_query(rng, depth - 1),
            rng.uniform(-2.0, 2.0),
            rng.uniform(-1.0, 1.0)
        ),
        2 => format!(
            "restrict_value({}, {:.3}, {:.3})",
            gen_query(rng, depth - 1),
            rng.uniform(0.0, 5.0),
            rng.uniform(5.0, 10.0)
        ),
        3 => format!("add({}, {})", gen_query(rng, depth - 1), gen_query(rng, depth - 1)),
        4 => {
            let a = gen_query(rng, depth - 1);
            let b = gen_query(rng, depth - 1);
            format!("div(sub({a}, {b}), add({b}, {a}))")
        }
        5 => format!("magnify({}, 2)", gen_query(rng, depth - 1)),
        6 => format!("focal({}, \"mean\", 3)", gen_query(rng, depth - 1)),
        7 => format!("shed({}, \"points\", 2)", gen_query(rng, depth - 1)),
        _ => format!("shed({}, \"rows\", 2)", gen_query(rng, depth - 1)),
    }
}

fn fuzz_catalog() -> Catalog {
    let mut cat = Catalog::new();
    for (name, seed) in [("g1", 1u64), ("g2", 2)] {
        let mut schema = StreamSchema::new(name, Crs::LatLon);
        schema.sector_lattice = Some(lattice());
        schema.value_range = (0.0, 10.0);
        cat.register(schema, move || Box::new(stream(seed)));
    }
    cat
}

/// The optimizer never changes query answers (the paper's rewrites are
/// equivalences).
#[test]
fn optimizer_preserves_semantics() {
    for case in 0..48u64 {
        let mut rng = Rng::new(6000 + case);
        let q = gen_query(&mut rng, 3);
        let cat = fuzz_catalog();
        let planner = Planner::new(&cat);
        let expr = parse_query(&q).unwrap();
        let optimized = optimize(&expr, &cat);
        let mut base = planner.build(&expr).unwrap();
        let mut opt = planner.build(&optimized).unwrap();
        let mut a = drain_points_of(&mut base);
        let mut b = drain_points_of(&mut opt);
        a.sort_by_key(|p| (p.cell.row, p.cell.col));
        b.sort_by_key(|p| (p.cell.row, p.cell.col));
        assert_eq!(a.len(), b.len(), "{expr} vs {optimized}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cell, y.cell, "{expr} vs {optimized}");
            assert!(
                (x.value - y.value).abs() < 1e-4,
                "{expr} vs {optimized}: {:?} {} != {}",
                x.cell,
                x.value,
                y.value
            );
        }
    }
}

/// Parse/display round-trips on random generated queries.
#[test]
fn parser_display_round_trip() {
    for case in 0..48u64 {
        let mut rng = Rng::new(7000 + case);
        let q = gen_query(&mut rng, 3);
        let e1 = parse_query(&q).unwrap();
        let rendered = e1.to_string();
        let e2 = parse_query(&rendered).unwrap();
        assert_eq!(e1, e2);
    }
}
