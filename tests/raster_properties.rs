//! Property tests of the raster substrate: statistics, resampling
//! kernels, and colormaps.

mod common;

use common::Rng;
use geostreams::raster::resample::{block_average, magnify, sample, Kernel};
use geostreams::raster::{Grid2D, Histogram, RangeTracker};

fn random_grid(rng: &mut Rng) -> Grid2D<f32> {
    let w = rng.int(2, 24) as u32;
    let h = rng.int(2, 24) as u32;
    let mut s = rng.next_u64();
    Grid2D::from_fn(w, h, |c, r| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(u64::from(c * 131 + r));
        ((s >> 40) as f64 / (1u64 << 24) as f64) as f32
    })
}

/// Every interpolation kernel's output is bounded by the grid's extrema
/// (true for nearest/bilinear always; Catmull-Rom can overshoot by a
/// bounded factor).
#[test]
fn interpolation_is_bounded() {
    for case in 0..96u64 {
        let mut rng = Rng::new(case);
        let grid = random_grid(&mut rng);
        let min = grid.data().iter().copied().fold(f32::INFINITY, f32::min) as f64;
        let max = grid.data().iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let fc = rng.uniform(0.0, 1.0) * f64::from(grid.width() - 1);
        let fr = rng.uniform(0.0, 1.0) * f64::from(grid.height() - 1);
        for kernel in [Kernel::Nearest, Kernel::Bilinear] {
            let s = sample(&grid, fc, fr, kernel);
            assert!(s >= min - 1e-9 && s <= max + 1e-9, "{kernel:?}: {s} ∉ [{min},{max}]");
        }
        // Catmull-Rom overshoot is bounded by ~1.5x the range.
        let s = sample(&grid, fc, fr, Kernel::Bicubic);
        let span = (max - min).max(1e-9);
        assert!(s >= min - span && s <= max + span, "bicubic {s} far outside");
    }
}

/// Sampling exactly at integer cells returns the cell value for all
/// kernels (interpolation property).
#[test]
fn kernels_interpolate_cell_centers() {
    for case in 0..96u64 {
        let mut rng = Rng::new(1000 + case);
        let grid = random_grid(&mut rng);
        let c = grid.width() / 2;
        let r = grid.height() / 2;
        let expect = f64::from(grid.get(c, r));
        for kernel in [Kernel::Nearest, Kernel::Bilinear, Kernel::Bicubic] {
            let s = sample(&grid, f64::from(c), f64::from(r), kernel);
            assert!((s - expect).abs() < 1e-6, "{kernel:?} at center: {s} vs {expect}");
        }
    }
}

/// Block averaging preserves the global mean over the covered area.
#[test]
fn block_average_preserves_mean() {
    for case in 0..96u64 {
        let mut rng = Rng::new(2000 + case);
        let grid = random_grid(&mut rng);
        let k = rng.int(1, 4) as u32;
        if grid.width() < k || grid.height() < k {
            continue;
        }
        let out = block_average(&grid, k);
        if out.is_empty() {
            continue;
        }
        // Mean over the covered region (multiples of k).
        let (cw, ch) = (out.width() * k, out.height() * k);
        let mut covered_sum = 0.0;
        for r in 0..ch {
            for c in 0..cw {
                covered_sum += f64::from(grid.get(c, r));
            }
        }
        let covered_mean = covered_sum / f64::from(cw * ch);
        let out_mean: f64 =
            out.data().iter().map(|&v| f64::from(v)).sum::<f64>() / out.len() as f64;
        assert!((out_mean - covered_mean).abs() < 1e-4, "case {case}");
    }
}

/// magnify(k) then block_average(k) is the identity.
#[test]
fn magnify_average_round_trip() {
    for case in 0..96u64 {
        let mut rng = Rng::new(3000 + case);
        let grid = random_grid(&mut rng);
        let k = rng.int(1, 4) as u32;
        let round = block_average(&magnify(&grid, k), k);
        assert_eq!(round.width(), grid.width(), "case {case}");
        for (c, r, v) in grid.iter_cells() {
            assert!((round.get(c, r) - v).abs() < 1e-4, "case {case} at ({c},{r})");
        }
    }
}

/// RangeTracker::merge equals bulk accumulation regardless of split.
#[test]
fn tracker_merge_is_associative() {
    for case in 0..96u64 {
        let mut rng = Rng::new(4000 + case);
        let values: Vec<f64> = (0..rng.int(1, 200)).map(|_| rng.uniform(-1e3, 1e3)).collect();
        let split = rng.index(values.len() + 1);
        let mut bulk = RangeTracker::new();
        for &v in &values {
            bulk.push(v);
        }
        let mut a = RangeTracker::new();
        let mut b = RangeTracker::new();
        for &v in &values[..split] {
            a.push(v);
        }
        for &v in &values[split..] {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count, bulk.count);
        assert!((a.mean() - bulk.mean()).abs() < 1e-6);
        assert!((a.std_dev() - bulk.std_dev()).abs() < 1e-6);
        assert_eq!(a.min, bulk.min);
        assert_eq!(a.max, bulk.max);
    }
}

/// Histogram CDF is monotone and reaches 1 at the top of the range.
#[test]
fn histogram_cdf_monotone() {
    for case in 0..96u64 {
        let mut rng = Rng::new(5000 + case);
        let bins = rng.int(2, 64) as usize;
        let mut h = Histogram::new(0.0, 100.0, bins);
        for _ in 0..rng.int(1, 300) {
            h.push(rng.uniform(0.0, 100.0));
        }
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = f64::from(i) * 5.0;
            let c = h.cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!((h.cdf(100.0) - 1.0).abs() < 1e-12, "case {case}");
    }
}

/// Stretch maps observed extrema exactly onto the output bounds.
#[test]
fn stretch_hits_output_bounds() {
    for case in 0..96u64 {
        let mut rng = Rng::new(6000 + case);
        let values: Vec<f64> = (0..rng.int(2, 100)).map(|_| rng.uniform(-50.0, 50.0)).collect();
        let mut t = RangeTracker::new();
        for &v in &values {
            t.push(v);
        }
        if t.range() <= 1e-9 {
            continue;
        }
        assert!((t.stretch(t.min, 0.0, 255.0) - 0.0).abs() < 1e-9);
        assert!((t.stretch(t.max, 0.0, 255.0) - 255.0).abs() < 1e-9);
        // Interior values stay inside.
        for &v in &values {
            let s = t.stretch(v, 0.0, 255.0);
            assert!((-1e-9..=255.0 + 1e-9).contains(&s), "case {case}");
        }
    }
}
