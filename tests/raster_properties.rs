//! Property-based tests of the raster substrate: statistics, resampling
//! kernels, and colormaps.

use geostreams::raster::resample::{block_average, magnify, sample, Kernel};
use geostreams::raster::{Grid2D, Histogram, RangeTracker};
use proptest::prelude::*;

fn grid_strategy() -> impl Strategy<Value = Grid2D<f32>> {
    (2u32..24, 2u32..24, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut s = seed;
        Grid2D::from_fn(w, h, |c, r| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(u64::from(c * 131 + r));
            ((s >> 40) as f64 / (1u64 << 24) as f64) as f32
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every interpolation kernel's output is bounded by the grid's
    /// extrema (true for nearest/bilinear always; Catmull-Rom can
    /// overshoot by a bounded factor).
    #[test]
    fn interpolation_is_bounded(grid in grid_strategy(),
                                u in 0.0f64..1.0, v in 0.0f64..1.0) {
        let min = grid.data().iter().copied().fold(f32::INFINITY, f32::min) as f64;
        let max = grid.data().iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let fc = u * f64::from(grid.width() - 1);
        let fr = v * f64::from(grid.height() - 1);
        for kernel in [Kernel::Nearest, Kernel::Bilinear] {
            let s = sample(&grid, fc, fr, kernel);
            prop_assert!(s >= min - 1e-9 && s <= max + 1e-9, "{kernel:?}: {s} ∉ [{min},{max}]");
        }
        // Catmull-Rom overshoot is bounded by ~1.5x the range.
        let s = sample(&grid, fc, fr, Kernel::Bicubic);
        let span = (max - min).max(1e-9);
        prop_assert!(s >= min - span && s <= max + span, "bicubic {s} far outside");
    }

    /// Sampling exactly at integer cells returns the cell value for all
    /// kernels (interpolation property).
    #[test]
    fn kernels_interpolate_cell_centers(grid in grid_strategy()) {
        let c = grid.width() / 2;
        let r = grid.height() / 2;
        let expect = f64::from(grid.get(c, r));
        for kernel in [Kernel::Nearest, Kernel::Bilinear, Kernel::Bicubic] {
            let s = sample(&grid, f64::from(c), f64::from(r), kernel);
            prop_assert!((s - expect).abs() < 1e-6, "{kernel:?} at center: {s} vs {expect}");
        }
    }

    /// Block averaging preserves the global mean over the covered area.
    #[test]
    fn block_average_preserves_mean(grid in grid_strategy(), k in 1u32..4) {
        prop_assume!(grid.width() >= k && grid.height() >= k);
        let out = block_average(&grid, k);
        prop_assume!(!out.is_empty());
        // Mean over the covered region (multiples of k).
        let (cw, ch) = (out.width() * k, out.height() * k);
        let mut covered_sum = 0.0;
        for r in 0..ch {
            for c in 0..cw {
                covered_sum += f64::from(grid.get(c, r));
            }
        }
        let covered_mean = covered_sum / f64::from(cw * ch);
        let out_mean: f64 =
            out.data().iter().map(|&v| f64::from(v)).sum::<f64>() / out.len() as f64;
        prop_assert!((out_mean - covered_mean).abs() < 1e-4);
    }

    /// magnify(k) then block_average(k) is the identity.
    #[test]
    fn magnify_average_round_trip(grid in grid_strategy(), k in 1u32..4) {
        let round = block_average(&magnify(&grid, k), k);
        prop_assert_eq!(round.width(), grid.width());
        for (c, r, v) in grid.iter_cells() {
            prop_assert!((round.get(c, r) - v).abs() < 1e-4);
        }
    }

    /// RangeTracker::merge equals bulk accumulation regardless of split.
    #[test]
    fn tracker_merge_is_associative(values in proptest::collection::vec(-1e3f64..1e3, 1..200),
                                    split in 0usize..200) {
        let split = split.min(values.len());
        let mut bulk = RangeTracker::new();
        for &v in &values {
            bulk.push(v);
        }
        let mut a = RangeTracker::new();
        let mut b = RangeTracker::new();
        for &v in &values[..split] {
            a.push(v);
        }
        for &v in &values[split..] {
            b.push(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count, bulk.count);
        prop_assert!((a.mean() - bulk.mean()).abs() < 1e-6);
        prop_assert!((a.std_dev() - bulk.std_dev()).abs() < 1e-6);
        prop_assert_eq!(a.min, bulk.min);
        prop_assert_eq!(a.max, bulk.max);
    }

    /// Histogram CDF is monotone and reaches 1 at the top of the range.
    #[test]
    fn histogram_cdf_monotone(values in proptest::collection::vec(0.0f64..100.0, 1..300),
                              bins in 2usize..64) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &v in &values {
            h.push(v);
        }
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = f64::from(i) * 5.0;
            let c = h.cdf(x);
            prop_assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            prop_assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        prop_assert!((h.cdf(100.0) - 1.0).abs() < 1e-12);
    }

    /// Stretch maps observed extrema exactly onto the output bounds.
    #[test]
    fn stretch_hits_output_bounds(values in proptest::collection::vec(-50.0f64..50.0, 2..100)) {
        let mut t = RangeTracker::new();
        for &v in &values {
            t.push(v);
        }
        prop_assume!(t.range() > 1e-9);
        prop_assert!((t.stretch(t.min, 0.0, 255.0) - 0.0).abs() < 1e-9);
        prop_assert!((t.stretch(t.max, 0.0, 255.0) - 255.0).abs() < 1e-9);
        // Interior values stay inside.
        for &v in &values {
            let s = t.stretch(v, 0.0, 255.0);
            prop_assert!((-1e-9..=255.0 + 1e-9).contains(&s));
        }
    }
}
