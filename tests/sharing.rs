//! Shared-plan multicast acceptance (ISSUE 9): identical queries
//! collapse onto one evaluated pipeline with results identical to the
//! unshared oracle, partial overlap shares exactly the common prefix,
//! unsubscribing tears down only unreferenced plans, a slow tenant is
//! shed without stalling its siblings, chaos-seeded shared runs are
//! deterministic, and shared fan-out moves `Arc` payloads without a
//! single per-subscriber deep copy.

use geostreams::core::Result;
use geostreams::dsms::protocol::{ClientRequest, OutputFormat};
use geostreams::dsms::{
    run_supervised, Dsms, FanoutPolicy, IngestStats, QueryResult, RuntimeConfig, ServerMetrics,
};
use geostreams::satsim::{goes_like, FaultPlan};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn req(q: &str, format: OutputFormat) -> ClientRequest {
    ClientRequest { query: q.to_string(), format, sectors: 0 }
}

/// Per-query delivery counts — the observable "bytes" of a counting
/// query. Equality against the unshared oracle is the sharing
/// invariant.
fn digests(results: &[Result<QueryResult>]) -> Vec<(u64, u64)> {
    results
        .iter()
        .map(|r| {
            let r = r.as_ref().unwrap();
            assert!(!r.cancelled);
            let report = r.report.as_ref().unwrap();
            (r.points, report.sectors)
        })
        .collect()
}

#[test]
fn identical_queries_share_one_pipeline_and_match_the_unshared_oracle() {
    let scanner = goes_like(64, 32, 11);
    let requests: Vec<ClientRequest> =
        (0..8).map(|_| req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats)).collect();

    let metrics = Arc::new(ServerMetrics::new());
    let shared = RuntimeConfig {
        share_plans: true,
        fanout: FanoutPolicy::Blocking,
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let (results, stats) = run_supervised(&scanner, 3, &requests, &shared).unwrap();
    assert_eq!(stats.shared_plans, 1, "8 identical queries must evaluate exactly one plan");
    assert!(stats.shared_chunks_multicast > 0);

    let oracle_config = RuntimeConfig {
        share_plans: false,
        fanout: FanoutPolicy::Blocking,
        ..RuntimeConfig::default()
    };
    let (oracle, oracle_stats) = run_supervised(&scanner, 3, &requests, &oracle_config).unwrap();
    assert_eq!(oracle_stats.shared_plans, 0, "the oracle runs the legacy per-query path");

    let shared_digests = digests(&results);
    assert_eq!(shared_digests, digests(&oracle), "sharing must not change per-subscriber results");
    assert!(shared_digests[0].0 > 0);
    assert!(shared_digests.iter().all(|d| *d == shared_digests[0]));

    // The sharing metrics surfaced on the exposition.
    let prom = metrics.render_prometheus();
    assert!(prom.contains("geostreams_share_distinct_plans 1"), "{prom}");
    assert!(prom.contains("geostreams_share_chunks_multicast_total"), "{prom}");
    assert!(prom.contains("geostreams_share_subscribers"), "{prom}");
}

#[test]
fn partial_overlap_shares_only_the_common_prefix() {
    let scanner = goes_like(64, 32, 11);
    let requests = vec![
        req("abs(downsample(goes-sim.b1-vis, 4))", OutputFormat::Stats),
        req("scale(downsample(goes-sim.b1-vis, 4), 2, 0)", OutputFormat::Stats),
    ];
    let shared_config = RuntimeConfig {
        share_plans: true,
        fanout: FanoutPolicy::Blocking,
        ..RuntimeConfig::default()
    };
    let (results, stats) = run_supervised(&scanner, 3, &requests, &shared_config).unwrap();
    // The DAG: the shared `downsample` prefix evaluated once, plus one
    // consumer node per distinct suffix.
    assert_eq!(stats.shared_plans, 3, "cut node + two consumers");

    let oracle_config = RuntimeConfig {
        share_plans: false,
        fanout: FanoutPolicy::Blocking,
        ..RuntimeConfig::default()
    };
    let (oracle, _) = run_supervised(&scanner, 3, &requests, &oracle_config).unwrap();
    assert_eq!(digests(&results), digests(&oracle));
}

#[test]
fn unsubscribe_tears_down_only_unreferenced_plans() {
    let scanner = goes_like(32, 16, 5);
    let dsms = Dsms::over_scanner(&scanner, 2);
    let q = "scale(goes-sim.b4-ir, 2, 0)";
    let a = dsms.register_text(q, OutputFormat::Stats, 0).unwrap();
    let b = dsms.register_text(q, OutputFormat::Stats, 0).unwrap();
    let c = dsms.register_text("abs(goes-sim.b4-ir)", OutputFormat::Stats, 0).unwrap();
    assert_eq!(a.canonical_key, b.canonical_key);
    assert_ne!(a.canonical_key, c.canonical_key);
    assert_eq!(dsms.share().topology().distinct_plans, 2);

    // Dropping one of two subscribers keeps the shared plan alive.
    assert!(dsms.unregister(a.id));
    let topo = dsms.share().topology();
    assert_eq!(topo.distinct_plans, 2);
    let entry = topo.plans.iter().find(|p| p.key == b.canonical_key).unwrap();
    assert_eq!(entry.subscribers, vec![b.id]);

    // Dropping the last subscriber tears the plan down; the unrelated
    // plan is untouched.
    assert!(dsms.unregister(b.id));
    let topo = dsms.share().topology();
    assert_eq!(topo.distinct_plans, 1);
    assert_eq!(topo.plans[0].key, c.canonical_key);
    assert!(dsms.unregister(c.id));
    assert_eq!(dsms.share().topology().distinct_plans, 0);
    assert!(dsms.registered().is_empty(), "no handle state leaks past release");
}

#[test]
fn slow_tenant_is_shed_without_stalling_siblings() {
    let scanner = goes_like(64, 32, 11);
    let requests = vec![
        req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
        req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
    ];
    // The slow tenant stalls 100ms per item against a 25ms marker
    // patience: once its channel fills, the subscription tree first
    // sheds its point runs and then — when it cannot accept framing
    // markers within patience — unsubscribes it, exactly like the band
    // fan-out's shed tier. The fast sibling never notices.
    let config = RuntimeConfig {
        share_plans: true,
        fanout: FanoutPolicy::Shed,
        channel_cap: 32,
        query_stall: vec![(1, Duration::from_millis(100))],
        tenants: vec![(1, "slow".to_string())],
        marker_patience: Duration::from_millis(25),
        ..RuntimeConfig::default()
    };
    let started = Instant::now();
    let (results, stats) = run_supervised(&scanner, 3, &requests, &config).unwrap();
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(30), "the slow tenant must not stall the run");
    assert_eq!(stats.shared_plans, 1);
    for r in &results {
        assert!(!r.as_ref().unwrap().cancelled);
    }

    // The slow tenant was shed — and only the slow tenant.
    let shed: Vec<(String, u64)> = stats.shed_per_tenant.clone();
    let slow = shed.iter().find(|(t, _)| t == "slow").map(|(_, n)| *n).unwrap_or(0);
    assert!(slow > 0, "the stalled subscriber must shed under backpressure: {shed:?}");

    // The fast sibling still saw the complete stream.
    let oracle_config = RuntimeConfig {
        share_plans: false,
        fanout: FanoutPolicy::Blocking,
        ..RuntimeConfig::default()
    };
    let single = vec![req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats)];
    let (oracle, _) = run_supervised(&scanner, 3, &single, &oracle_config).unwrap();
    assert_eq!(results[0].as_ref().unwrap().points, oracle[0].as_ref().unwrap().points);
}

#[test]
fn chaos_seeded_shared_run_is_deterministic() {
    let scanner = goes_like(64, 32, 11);
    let requests = vec![
        req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
        req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
        req("abs(downsample(goes-sim.b1-vis, 4))", OutputFormat::Stats),
        req("scale(downsample(goes-sim.b1-vis, 4), 3, 1)", OutputFormat::Stats),
    ];
    let run = || -> (Vec<(u64, u64)>, u64, IngestStats) {
        let config = RuntimeConfig {
            share_plans: true,
            fanout: FanoutPolicy::Blocking,
            fault_plan: Some(
                FaultPlan::seeded(7)
                    .with_dropped_rows(0.08)
                    .with_dropped_points(0.03)
                    .with_duplicates(0.05),
            ),
            ..RuntimeConfig::default()
        };
        let (results, stats) = run_supervised(&scanner, 3, &requests, &config).unwrap();
        let d = digests(&results);
        (d, stats.shared_chunks_multicast, stats)
    };
    let (d1, m1, s1) = run();
    let (d2, m2, s2) = run();
    assert_eq!(d1, d2, "same seed must produce identical shared results");
    assert_eq!(m1, m2, "multicast counts must be deterministic");
    assert_eq!(s1.shared_plans, 4, "2 identical + cut + 2 consumers");
    assert_eq!(s1.shared_plans, s2.shared_plans);
    assert!(d1.iter().all(|(points, _)| *points > 0));
}

#[test]
fn shared_fanout_makes_zero_payload_copies() {
    let scanner = goes_like(64, 32, 11);
    // Identical queries: one shared node, no interior DAG edges, so
    // every payload travels as one `Arc` from the evaluator through
    // the subscription tree to all four subscribers.
    let requests: Vec<ClientRequest> =
        (0..4).map(|_| req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats)).collect();
    let config = RuntimeConfig {
        share_plans: true,
        fanout: FanoutPolicy::Blocking,
        ..RuntimeConfig::default()
    };
    let (results, stats) = run_supervised(&scanner, 3, &requests, &config).unwrap();
    assert!(results.iter().all(|r| r.as_ref().unwrap().points > 0));
    assert_eq!(
        stats.payload_copies, 0,
        "shared fan-out must never deep-copy a chunk per subscriber"
    );

    // The legacy path with a single subscriber per band channel also
    // moves the payload end to end without a copy.
    let legacy = RuntimeConfig {
        share_plans: false,
        fanout: FanoutPolicy::Blocking,
        ..RuntimeConfig::default()
    };
    let single = vec![req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats)];
    let (results, stats) = run_supervised(&scanner, 3, &single, &legacy).unwrap();
    assert!(results[0].as_ref().unwrap().points > 0);
    assert_eq!(stats.payload_copies, 0, "single-subscriber legacy fan-out is move-only");
}
