//! Cross-crate integration tests: simulator → algebra → DSMS → PNG.

use geostreams::core::exec::run_to_end;
use geostreams::core::model::GeoStream;
use geostreams::core::query::{parse_query, Planner};
use geostreams::dsms::{Dsms, OutputFormat};
use geostreams::geo::{Coord, Crs, Rect};
use geostreams::raster::png::{decode, Decoded};
use geostreams::satsim::{airborne::airborne_camera, goes_like, lidar::lidar_profiler};
use std::sync::Arc;

fn server() -> Arc<Dsms> {
    Arc::new(Dsms::over_scanner(&goes_like(64, 32, 123), 2))
}

#[test]
fn full_pipeline_text_query_to_png() {
    let s = server();
    let h = s
        .register_text(
            "stretch(restrict_space(goes-sim.b1-vis, bbox(-110, 25, -80, 45), \"latlon\"), \
             \"linear\")",
            OutputFormat::PngGray,
            2,
        )
        .unwrap();
    let result = s.run_query(&h).unwrap();
    assert_eq!(result.frames.len(), 2);
    for frame in &result.frames {
        match decode(&frame.png).unwrap() {
            Decoded::Gray(g) => {
                assert!(g.width() > 0 && g.height() > 0);
                // A linear stretch fills the display range.
                let max = g.data().iter().copied().max().unwrap();
                let min = g.data().iter().copied().min().unwrap();
                assert_eq!(max, 255);
                assert_eq!(min, 0);
            }
            _ => panic!("expected gray"),
        }
    }
}

#[test]
fn every_catalog_band_streams_and_delivers() {
    let s = server();
    for name in s.catalog().names() {
        let h = s.register_text(&name, OutputFormat::PngGray, 1).unwrap();
        let result = s.run_query(&h).unwrap();
        assert_eq!(result.frames.len(), 1, "{name}");
    }
}

#[test]
fn optimizer_is_transparent_to_query_results() {
    // Run the same query with and without optimization on a fresh
    // catalog; delivered pixels must agree.
    let scanner = goes_like(48, 24, 321);
    let server = Dsms::over_scanner(&scanner, 1);
    let planner = Planner::new(server.catalog());
    let q = "restrict_space(
               scale(ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4)), 100, 0),
               bbox(-105, 28, -88, 42), \"latlon\")";
    let expr = parse_query(q).unwrap();
    let optimized = geostreams::core::query::optimize(&expr, server.catalog());
    let mut a = planner.build(&expr).unwrap();
    let mut b = planner.build(&optimized).unwrap();
    let mut pa = geostreams::core::model::drain_points_of(&mut a);
    let mut pb = geostreams::core::model::drain_points_of(&mut b);
    pa.sort_by_key(|p| (p.cell.row, p.cell.col));
    pb.sort_by_key(|p| (p.cell.row, p.cell.col));
    assert_eq!(pa.len(), pb.len());
    assert!(!pa.is_empty());
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.cell, y.cell);
        assert!((x.value - y.value).abs() < 1e-4);
    }
}

#[test]
fn ndvi_over_vegetation_is_positive_and_matches_ground_truth() {
    let scanner = goes_like(64, 32, 9);
    let model = scanner.model;
    let nir = scanner.band_stream_by_id(2, 1).unwrap();
    let vis4 = geostreams::core::ops::Downsample::new(scanner.band_stream_by_id(1, 1).unwrap(), 4);
    let mut op = geostreams::core::ops::macro_ops::ndvi(nir, vis4).unwrap();
    let lattice = scanner.sector_lattice(1, 0); // band index 1 = b2-nir
    let geos = Crs::geostationary(-75.0);
    let mut checked = 0;
    while let Some(el) = op.next_element() {
        if let geostreams::core::model::Element::Point(p) = el {
            let w = lattice.cell_to_world(p.cell);
            let Ok(ll) = geos.inverse(w) else { continue };
            let truth = model.true_ndvi(ll, 0);
            // The vis band was block-averaged; allow generous tolerance.
            assert!(
                (f64::from(p.value) - truth).abs() < 0.25,
                "cell {:?}: ndvi {} vs truth {}",
                p.cell,
                p.value,
                truth
            );
            checked += 1;
        }
    }
    assert!(checked > 100);
}

#[test]
fn three_instrument_presets_interoperate_with_operators() {
    // The same operator code runs over all three organizations.
    let streams: Vec<Box<dyn GeoStream<V = f32> + Send>> = vec![
        Box::new(goes_like(32, 16, 1).band_stream(0, 1)),
        Box::new(
            airborne_camera(Rect::new(-120.0, 35.0, -119.5, 35.4), 16, 16, 1).band_stream(0, 2),
        ),
        Box::new(
            lidar_profiler(Rect::new(-120.0, 38.0, -119.0, 38.05), 64, 2, 1).band_stream(0, 1),
        ),
    ];
    for mut stream in streams {
        let name = stream.schema().name.clone();
        let op = geostreams::core::ops::ValueRestrict::range(&mut stream, 0.0, 1.0);
        let mut op = op;
        let report = run_to_end(&mut op);
        assert!(report.points_delivered > 0, "{name}");
        assert_eq!(report.peak_buffered_points(), 0, "{name}: restrictions never buffer");
    }
}

#[test]
fn http_interface_parses_registers_and_delivers() {
    let s = server();
    let resp = s.handle_http(
        "GET /query?q=restrict_space(goes-sim.b4-ir,+bbox(-100,30,-90,40),+%22latlon%22)&format=thermal&sectors=1 HTTP/1.1",
    );
    let text = String::from_utf8_lossy(&resp[..32.min(resp.len())]).to_string();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
}

#[test]
fn geostationary_round_trip_through_the_whole_stack() {
    // A geographic point, through the geostationary projection, onto the
    // simulated lattice, through a reprojection operator, back to
    // geographic coordinates: total error below one output cell.
    let scanner = goes_like(128, 64, 55);
    let geos = Crs::geostationary(-75.0);
    let target = Coord::new(-95.0, 35.0);
    let native = geos.forward(target).unwrap();
    let lattice = scanner.sector_lattice(0, 0);
    let cell = lattice.world_to_cell(native).expect("inside the sector");
    let back = geos.inverse(lattice.cell_to_world(cell)).unwrap();
    let cell_deg_x = lattice.step_x.abs() / geos.meters_per_unit() * 2.0;
    let _ = cell_deg_x;
    assert!((back.x - target.x).abs() < 0.5, "{back}");
    assert!((back.y - target.y).abs() < 0.5, "{back}");
}
