//! Property tests of the geospatial substrate: every projection's
//! forward/inverse pair must round-trip on its domain, and region
//! mapping across CRSs must be conservative (no false negatives for the
//! spatial restriction that consumes the mapped region).

mod common;

use common::Rng;
use geostreams::geo::{map_region, Coord, Crs, LatticeGeoref, Rect, Region};

/// CRSs under test with their geographic domains (lon range, lat range).
fn crs_cases() -> Vec<(Crs, Rect)> {
    vec![
        (Crs::LatLon, Rect::new(-179.0, -89.0, 179.0, 89.0)),
        (Crs::Mercator { lon0: 0.0 }, Rect::new(-179.0, -84.0, 179.0, 84.0)),
        (Crs::utm(10, true), Rect::new(-129.0, -79.0, -117.0, 84.0)),
        (Crs::utm(33, false), Rect::new(9.0, -79.0, 21.0, 83.0)),
        (
            Crs::LambertConformal { lat1: 33.0, lat2: 45.0, lat0: 39.0, lon0: -96.0 },
            Rect::new(-130.0, 10.0, -60.0, 70.0),
        ),
        (Crs::Sinusoidal { lon0: 0.0 }, Rect::new(-179.0, -89.0, 179.0, 89.0)),
        // Geostationary: keep well inside the visible disk.
        (Crs::geostationary(-75.0), Rect::new(-135.0, -55.0, -15.0, 55.0)),
        (
            Crs::Albers { lat1: 29.5, lat2: 45.5, lat0: 23.0, lon0: -96.0 },
            Rect::new(-130.0, 10.0, -60.0, 70.0),
        ),
        (
            Crs::PolarStereographic { north: true, lon0: -45.0 },
            Rect::new(-179.0, -30.0, 179.0, 89.0),
        ),
        (
            Crs::PolarStereographic { north: false, lon0: 0.0 },
            Rect::new(-179.0, -89.0, 179.0, 30.0),
        ),
    ]
}

#[test]
fn all_projections_round_trip() {
    for case in 0..128u64 {
        let mut rng = Rng::new(case);
        let (crs, dom) = crs_cases()[rng.index(10)];
        let lon = dom.x_min + rng.uniform(0.0, 1.0) * dom.width();
        let lat = dom.y_min + rng.uniform(0.0, 1.0) * dom.height();
        let p = Coord::new(lon, lat);
        let xy = crs.forward(p).unwrap();
        assert!(xy.is_finite());
        let ll = crs.inverse(xy).unwrap();
        assert!((ll.x - lon).abs() < 1e-5, "{crs}: lon {lon} -> {}", ll.x);
        assert!((ll.y - lat).abs() < 1e-5, "{crs}: lat {lat} -> {}", ll.y);
    }
}

#[test]
fn conversion_through_any_pair_round_trips() {
    for case in 0..128u64 {
        let mut rng = Rng::new(1000 + case);
        let (a, dom_a) = crs_cases()[rng.index(10)];
        let (b, dom_b) = crs_cases()[rng.index(10)];
        // Pick a geographic point in both domains.
        let dom = dom_a.intersect(&dom_b);
        if dom.is_empty() {
            continue;
        }
        let lon = dom.x_min + rng.uniform(0.05, 0.95) * dom.width();
        let lat = dom.y_min + rng.uniform(0.05, 0.95) * dom.height();
        let pa = a.forward(Coord::new(lon, lat)).unwrap();
        let pb = a.convert_to(&b, pa).unwrap();
        let back = b.convert_to(&a, pb).unwrap();
        let tol = 1e-4 * a.meters_per_unit().max(1.0);
        assert!(pa.distance(back) < tol.max(1e-4), "{a} -> {b}: {pa} vs {back}");
    }
}

#[test]
fn region_mapping_is_conservative() {
    for case in 0..128u64 {
        let mut rng = Rng::new(2000 + case);
        let cx = rng.uniform(-120.0, -80.0);
        let cy = rng.uniform(15.0, 50.0);
        let w = rng.uniform(0.5, 8.0);
        let h = rng.uniform(0.5, 8.0);
        let (target, _) = crs_cases()[rng.index(10)];
        let region =
            Region::Rect(Rect::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0));
        let Ok(mapped) = map_region(&region, &Crs::LatLon, &target, 16) else {
            // Entirely invisible in the target; nothing to check.
            continue;
        };
        // Any interior point of the region that projects must land
        // inside the mapped rectangle.
        let p = Coord::new(
            cx - w / 2.0 + rng.uniform(0.0, 1.0) * w,
            cy - h / 2.0 + rng.uniform(0.0, 1.0) * h,
        );
        if let Ok(t) = target.forward(p) {
            assert!(
                mapped.contains(t),
                "point {p} -> {t} escaped mapped region {mapped:?} in {target}"
            );
        }
    }
}

#[test]
fn lattice_footprints_contain_exactly_their_cells() {
    for case in 0..48u64 {
        let mut rng = Rng::new(3000 + case);
        let w = rng.int(1, 64) as u32;
        let h = rng.int(1, 64) as u32;
        let x1 = rng.uniform(-124.0, -114.5);
        let y1 = rng.uniform(32.0, 41.5);
        let dx = rng.uniform(0.1, 6.0);
        let dy = rng.uniform(0.1, 6.0);
        let lattice =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 32.0, -114.0, 42.0), w, h);
        let rect = Rect::new(x1, y1, (x1 + dx).min(-114.0), (y1 + dy).min(42.0));
        let fp = lattice.footprint(&rect);
        for col in 0..w {
            for row in 0..h {
                let inside_fp =
                    fp.is_some_and(|b| b.contains(geostreams::geo::Cell::new(col, row)));
                let center = lattice.cell_to_world(geostreams::geo::Cell::new(col, row));
                // Allow boundary ties either way (floating rounding).
                let strictly_inside = center.x > rect.x_min + 1e-9
                    && center.x < rect.x_max - 1e-9
                    && center.y > rect.y_min + 1e-9
                    && center.y < rect.y_max - 1e-9;
                let strictly_outside = center.x < rect.x_min - 1e-9
                    || center.x > rect.x_max + 1e-9
                    || center.y < rect.y_min - 1e-9
                    || center.y > rect.y_max + 1e-9;
                if strictly_inside {
                    assert!(inside_fp, "cell ({col},{row}) center {center} missing");
                }
                if strictly_outside {
                    assert!(!inside_fp, "cell ({col},{row}) center {center} wrongly included");
                }
            }
        }
    }
}

#[test]
fn affine_inverse_round_trips() {
    use geostreams::geo::Affine;
    for case in 0..128u64 {
        let mut rng = Rng::new(4000 + case);
        let t = Affine::translation(rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0))
            .then(&Affine::rotation(rng.uniform(-180.0, 180.0)))
            .then(&Affine::scaling(rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0)));
        let inv = t.inverse().unwrap();
        let px = rng.uniform(-50.0, 50.0);
        let py = rng.uniform(-50.0, 50.0);
        let back = inv.apply(t.apply(Coord::new(px, py)));
        assert!((back.x - px).abs() < 1e-6 && (back.y - py).abs() < 1e-6, "case {case}");
    }
}
