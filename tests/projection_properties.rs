//! Property-based tests of the geospatial substrate: every projection's
//! forward/inverse pair must round-trip on its domain, and region
//! mapping across CRSs must be conservative (no false negatives for the
//! spatial restriction that consumes the mapped region).

use geostreams::geo::{map_region, Coord, Crs, LatticeGeoref, Rect, Region};
use proptest::prelude::*;

/// CRSs under test with their geographic domains (lon range, lat range).
fn crs_cases() -> Vec<(Crs, Rect)> {
    vec![
        (Crs::LatLon, Rect::new(-179.0, -89.0, 179.0, 89.0)),
        (Crs::Mercator { lon0: 0.0 }, Rect::new(-179.0, -84.0, 179.0, 84.0)),
        (Crs::utm(10, true), Rect::new(-129.0, -79.0, -117.0, 84.0)),
        (Crs::utm(33, false), Rect::new(9.0, -79.0, 21.0, 83.0)),
        (
            Crs::LambertConformal { lat1: 33.0, lat2: 45.0, lat0: 39.0, lon0: -96.0 },
            Rect::new(-130.0, 10.0, -60.0, 70.0),
        ),
        (Crs::Sinusoidal { lon0: 0.0 }, Rect::new(-179.0, -89.0, 179.0, 89.0)),
        // Geostationary: keep well inside the visible disk.
        (Crs::geostationary(-75.0), Rect::new(-135.0, -55.0, -15.0, 55.0)),
        (
            Crs::Albers { lat1: 29.5, lat2: 45.5, lat0: 23.0, lon0: -96.0 },
            Rect::new(-130.0, 10.0, -60.0, 70.0),
        ),
        (Crs::PolarStereographic { north: true, lon0: -45.0 }, Rect::new(-179.0, -30.0, 179.0, 89.0)),
        (Crs::PolarStereographic { north: false, lon0: 0.0 }, Rect::new(-179.0, -89.0, 179.0, 30.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_projections_round_trip(u in 0.0f64..1.0, v in 0.0f64..1.0, idx in 0usize..10) {
        let (crs, dom) = crs_cases()[idx];
        let lon = dom.x_min + u * dom.width();
        let lat = dom.y_min + v * dom.height();
        let p = Coord::new(lon, lat);
        let xy = crs.forward(p).unwrap();
        prop_assert!(xy.is_finite());
        let ll = crs.inverse(xy).unwrap();
        prop_assert!((ll.x - lon).abs() < 1e-5, "{crs}: lon {lon} -> {}", ll.x);
        prop_assert!((ll.y - lat).abs() < 1e-5, "{crs}: lat {lat} -> {}", ll.y);
    }

    #[test]
    fn conversion_through_any_pair_round_trips(
        u in 0.05f64..0.95, v in 0.05f64..0.95, i in 0usize..10, j in 0usize..10
    ) {
        let (a, dom_a) = crs_cases()[i];
        let (b, dom_b) = crs_cases()[j];
        // Pick a geographic point in both domains.
        let dom = dom_a.intersect(&dom_b);
        prop_assume!(!dom.is_empty());
        let lon = dom.x_min + u * dom.width();
        let lat = dom.y_min + v * dom.height();
        let pa = a.forward(Coord::new(lon, lat)).unwrap();
        let pb = a.convert_to(&b, pa).unwrap();
        let back = b.convert_to(&a, pb).unwrap();
        let tol = 1e-4 * a.meters_per_unit().max(1.0);
        prop_assert!(pa.distance(back) < tol.max(1e-4), "{a} -> {b}: {pa} vs {back}");
    }

    #[test]
    fn region_mapping_is_conservative(
        cx in -120.0f64..-80.0, cy in 15.0f64..50.0,
        w in 0.5f64..8.0, h in 0.5f64..8.0,
        u in 0.0f64..1.0, v in 0.0f64..1.0,
        target_idx in 0usize..10,
    ) {
        let (target, _) = crs_cases()[target_idx];
        let region = Region::Rect(Rect::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0));
        let Ok(mapped) = map_region(&region, &Crs::LatLon, &target, 16) else {
            // Entirely invisible in the target; nothing to check.
            return Ok(());
        };
        // Any interior point of the region that projects must land
        // inside the mapped rectangle.
        let p = Coord::new(cx - w / 2.0 + u * w, cy - h / 2.0 + v * h);
        if let Ok(t) = target.forward(p) {
            prop_assert!(
                mapped.contains(t),
                "point {p} -> {t} escaped mapped region {mapped:?} in {target}"
            );
        }
    }

    #[test]
    fn lattice_footprints_contain_exactly_their_cells(
        w in 1u32..64, h in 1u32..64,
        x1 in -124.0f64..-114.5, y1 in 32.0f64..41.5,
        dx in 0.1f64..6.0, dy in 0.1f64..6.0,
    ) {
        let lattice = LatticeGeoref::north_up(
            Crs::LatLon, Rect::new(-124.0, 32.0, -114.0, 42.0), w, h);
        let rect = Rect::new(x1, y1, (x1 + dx).min(-114.0), (y1 + dy).min(42.0));
        let fp = lattice.footprint(&rect);
        for col in 0..w {
            for row in 0..h {
                let inside_fp = fp.is_some_and(|b| b.contains(geostreams::geo::Cell::new(col, row)));
                let center = lattice.cell_to_world(geostreams::geo::Cell::new(col, row));
                // Allow boundary ties either way (floating rounding).
                let strictly_inside = center.x > rect.x_min + 1e-9
                    && center.x < rect.x_max - 1e-9
                    && center.y > rect.y_min + 1e-9
                    && center.y < rect.y_max - 1e-9;
                let strictly_outside = center.x < rect.x_min - 1e-9
                    || center.x > rect.x_max + 1e-9
                    || center.y < rect.y_min - 1e-9
                    || center.y > rect.y_max + 1e-9;
                if strictly_inside {
                    prop_assert!(inside_fp, "cell ({col},{row}) center {center} missing");
                }
                if strictly_outside {
                    prop_assert!(!inside_fp, "cell ({col},{row}) center {center} wrongly included");
                }
            }
        }
    }

    #[test]
    fn affine_inverse_round_trips(
        deg in -180.0f64..180.0, sx in 0.1f64..10.0, sy in 0.1f64..10.0,
        tx in -100.0f64..100.0, ty in -100.0f64..100.0,
        px in -50.0f64..50.0, py in -50.0f64..50.0,
    ) {
        use geostreams::geo::Affine;
        let t = Affine::translation(tx, ty)
            .then(&Affine::rotation(deg))
            .then(&Affine::scaling(sx, sy));
        let inv = t.inverse().unwrap();
        let p = Coord::new(px, py);
        let back = inv.apply(t.apply(p));
        prop_assert!((back.x - px).abs() < 1e-6 && (back.y - py).abs() < 1e-6);
    }
}
