//! Differential suite for chunked (vectorized) execution.
//!
//! Every operator in the algebra — plus the fault injector and the
//! observability decorator — is run twice from identical construction:
//! once through the scalar `next_element` oracle and once through
//! `next_chunk` at several pull budgets. The flattened chunked output
//! must be byte-identical to the scalar sequence (same elements, same
//! markers, same order), and `OpStats` totals must match exactly
//! (per-chunk batched accounting vs per-element accounting).

use geostreams::core::model::{drain_chunked, GeoStream, StreamRepair, TimeSet, VecStream};
use geostreams::core::obs::{PipelineObs, TracedStream};
use geostreams::core::ops::{
    CastTransform, ChunkProtocolChecker, Compose, GammaOp, JoinStrategy, MapTransform, Shed,
    ShedPolicy, SpatialRestrict, TemporalRestrict, ValueFunc, ValueRestrict,
};
use geostreams::geo::{Coord, Crs, LatticeGeoref, Polygon, Rect, Region};
use geostreams::satsim::airborne::airborne_camera;
use geostreams::satsim::lidar::lidar_profiler;
use geostreams::satsim::{goes_like, ChaosStream, FaultPlan, SyntheticStream};

/// Fixture width; the last budget equals one full row so chunk
/// boundaries land exactly on frame boundaries in row-by-row streams.
const W: u32 = 16;
const H: u32 = 8;

/// Pull budgets exercised by every differential case: pathological
/// (1 point per chunk), prime (misaligned with every row width),
/// larger than a whole sector, and exactly one row.
const BUDGETS: &[usize] = &[1, 7, 256, W as usize];

/// The differential oracle: scalar `drain_elements` output and final
/// `op_stats` must match `drain_chunked` output and stats at every
/// budget, for a fresh identically-constructed stream per run.
fn assert_scalar_chunked_identical<S, F>(label: &str, make: F)
where
    S: GeoStream,
    S::V: std::fmt::Debug + PartialEq,
    F: Fn() -> S,
{
    let mut scalar = make();
    let expected = scalar.drain_elements();
    let expected_stats = scalar.op_stats();
    assert!(!expected.is_empty(), "{label}: scalar oracle produced nothing");
    for &budget in BUDGETS {
        let mut chunked = make();
        let got = drain_chunked(&mut chunked, budget);
        assert_eq!(got, expected, "{label}: elements diverge at budget {budget}");
        assert_eq!(
            chunked.op_stats(),
            expected_stats,
            "{label}: OpStats diverge at budget {budget}"
        );
    }
}

fn lattice() -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, W as f64, H as f64), W, H)
}

/// A deterministic multi-sector in-memory source (exercises the
/// default `next_chunk` adapter, since `VecStream` has no override).
fn vec_fixture() -> VecStream<f32> {
    VecStream::sectors("vec-fixture", lattice(), 3, |s, x, y| {
        (s as f64) * 100.0 + (y as f64) * 10.0 + (x as f64) * 0.5
    })
}

/// Row-by-row synthetic scanner band (native `next_chunk`).
fn goes_fixture() -> SyntheticStream {
    goes_like(W, H, 7).band_stream(0, 2)
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

#[test]
fn vecstream_default_adapter_matches_scalar() {
    assert_scalar_chunked_identical("VecStream", vec_fixture);
}

#[test]
fn scanner_row_by_row_matches_scalar() {
    assert_scalar_chunked_identical("SyntheticStream/RowByRow", goes_fixture);
}

#[test]
fn scanner_image_by_image_matches_scalar() {
    assert_scalar_chunked_identical("SyntheticStream/ImageByImage", || {
        airborne_camera(Rect::new(-100.0, 30.0, -99.0, 31.0), W, H, 5).band_stream(0, 2)
    });
}

#[test]
fn scanner_point_by_point_matches_scalar() {
    assert_scalar_chunked_identical("SyntheticStream/PointByPoint", || {
        lidar_profiler(Rect::new(0.0, 0.0, 1.0, 1.0), W, H, 9).band_stream(0, 2)
    });
}

// ---------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------

#[test]
fn spatial_restrict_rect_matches_scalar() {
    assert_scalar_chunked_identical("SpatialRestrict/Rect", || {
        SpatialRestrict::new(vec_fixture(), Region::Rect(Rect::new(2.0, 1.0, 10.0, 6.0)))
    });
}

#[test]
fn spatial_restrict_polygon_matches_scalar() {
    let poly = || {
        Polygon::new(vec![Coord::new(1.0, 0.5), Coord::new(14.0, 1.0), Coord::new(8.0, 7.5)])
            .unwrap()
    };
    assert_scalar_chunked_identical("SpatialRestrict/Polygon", move || {
        SpatialRestrict::new(vec_fixture(), Region::Polygon(poly()))
    });
}

#[test]
fn temporal_restrict_matches_scalar() {
    assert_scalar_chunked_identical("TemporalRestrict/Interval", || {
        TemporalRestrict::new(vec_fixture(), TimeSet::Interval { lo: Some(1), hi: None })
    });
}

#[test]
fn value_restrict_matches_scalar() {
    assert_scalar_chunked_identical("ValueRestrict", || {
        ValueRestrict::range(vec_fixture(), 50.0, 250.0)
    });
}

#[test]
fn map_transform_matches_scalar() {
    assert_scalar_chunked_identical("MapTransform/Linear", || {
        MapTransform::<_, f32>::new(vec_fixture(), ValueFunc::Linear { scale: 0.25, offset: -3.0 })
    });
}

#[test]
fn cast_transform_matches_scalar() {
    assert_scalar_chunked_identical("CastTransform/f32→f64", || {
        CastTransform::<_, f64>::new(vec_fixture())
    });
}

#[test]
fn shed_rows_matches_scalar() {
    assert_scalar_chunked_identical("Shed/Rows", || Shed::new(vec_fixture(), ShedPolicy::Rows, 2));
}

#[test]
fn shed_points_matches_scalar() {
    assert_scalar_chunked_identical("Shed/Points", || {
        Shed::new(vec_fixture(), ShedPolicy::Points, 3)
    });
}

#[test]
fn compose_hash_matches_scalar() {
    assert_scalar_chunked_identical("Compose/Hash", || {
        let left = vec_fixture();
        let right =
            VecStream::sectors("rhs", lattice(), 3, |s, x, y| (s as f64) + (x as f64) - (y as f64));
        Compose::new(left, right, GammaOp::Add, JoinStrategy::Hash).unwrap()
    });
}

#[test]
fn compose_frame_merge_matches_scalar() {
    assert_scalar_chunked_identical("Compose/FrameMerge", || {
        let left = vec_fixture();
        let right =
            VecStream::sectors("rhs", lattice(), 3, |s, x, y| (s as f64) * 2.0 + (x * y) as f64);
        Compose::new(left, right, GammaOp::Sup, JoinStrategy::FrameMerge).unwrap()
    });
}

// ---------------------------------------------------------------------
// Fault injection and repair
// ---------------------------------------------------------------------

/// A fault plan touching every non-stalling fault class, so the chunked
/// path must reproduce the scalar RNG draw order exactly.
fn nasty_plan() -> FaultPlan {
    FaultPlan::seeded(0xBAD5EED)
        .with_dropped_points(0.05)
        .with_dropped_rows(0.02)
        .with_dropped_sectors(0.1)
        .with_dropped_end_markers(0.05)
        .with_duplicates(0.04)
        .with_reordering(0.03)
        .with_corruption(0.02, 5.0)
}

#[test]
fn chaos_stream_matches_scalar() {
    let run = |chunk_budget: Option<usize>| {
        let mut s = ChaosStream::new(goes_fixture(), nasty_plan(), 42);
        let els = match chunk_budget {
            None => s.drain_elements(),
            Some(b) => drain_chunked(&mut s, b),
        };
        (els, s.fault_stats())
    };
    let (expected, expected_faults) = run(None);
    assert!(!expected.is_empty());
    for &budget in BUDGETS {
        let (got, faults) = run(Some(budget));
        assert_eq!(got, expected, "ChaosStream elements diverge at budget {budget}");
        assert_eq!(faults, expected_faults, "FaultStats diverge at budget {budget}");
    }
}

#[test]
fn chaos_stream_death_matches_scalar() {
    // Death mid-stream: the chunked path must deliver exactly the
    // pre-death prefix and report identical FaultStats.
    let run = |chunk_budget: Option<usize>| {
        let plan = FaultPlan::seeded(77).with_duplicates(0.05).with_death_after(150);
        let mut s = ChaosStream::new(goes_fixture(), plan, 9);
        let els = match chunk_budget {
            None => s.drain_elements(),
            Some(b) => drain_chunked(&mut s, b),
        };
        (els, s.fault_stats())
    };
    let (expected, expected_faults) = run(None);
    assert!(!expected.is_empty());
    for &budget in BUDGETS {
        let (got, faults) = run(Some(budget));
        assert_eq!(got, expected, "death-case elements diverge at budget {budget}");
        assert_eq!(faults, expected_faults, "death-case FaultStats diverge at budget {budget}");
    }
}

#[test]
fn stream_repair_over_damage_matches_scalar() {
    let run = |chunk_budget: Option<usize>| {
        let chaos = ChaosStream::new(goes_fixture(), nasty_plan(), 1234);
        let mut repair = StreamRepair::new(chaos);
        let probe = repair.probe();
        let els = match chunk_budget {
            None => repair.drain_elements(),
            Some(b) => drain_chunked(&mut repair, b),
        };
        (els, probe.stats())
    };
    let (expected, expected_stats) = run(None);
    assert!(!expected.is_empty());
    for &budget in BUDGETS {
        let (got, stats) = run(Some(budget));
        assert_eq!(got, expected, "repair elements diverge at budget {budget}");
        assert_eq!(stats, expected_stats, "RepairStats diverge at budget {budget}");
    }
}

// ---------------------------------------------------------------------
// Observability decorator and stacked pipelines
// ---------------------------------------------------------------------

#[test]
fn traced_stream_is_transparent_in_chunked_mode() {
    // The decorator must not alter the element sequence, scalar or
    // chunked, and must count every element in its latency histogram.
    assert_scalar_chunked_identical("TracedStream", || {
        TracedStream::new(vec_fixture(), PipelineObs::for_query(1))
    });
    let raw = vec_fixture().drain_elements();
    let mut traced = TracedStream::new(vec_fixture(), PipelineObs::for_query(2));
    let got = drain_chunked(&mut traced, 7);
    assert_eq!(got, raw, "TracedStream altered the stream");
}

#[test]
fn stacked_pipeline_matches_scalar() {
    // A realistic multi-operator stack: repair over chaos over a
    // scanner, restricted, transformed, shed — every layer chunked.
    assert_scalar_chunked_identical("stacked-pipeline", || {
        let chaos = ChaosStream::new(goes_fixture(), nasty_plan(), 7);
        let repaired = StreamRepair::new(chaos);
        let restricted =
            SpatialRestrict::new(repaired, Region::Rect(Rect::new(-0.1, -0.1, 0.12, 0.12)));
        let transformed =
            MapTransform::<_, f32>::new(restricted, ValueFunc::Normalize { lo: 0.0, hi: 400.0 });
        Shed::new(transformed, ShedPolicy::Rows, 2)
    });
}

// ---------------------------------------------------------------------
// Runtime protocol validation (ISSUE 7)
// ---------------------------------------------------------------------

/// Drives every chunk of a pipeline through the debug-build protocol
/// checker at every pull budget and requires a clean run.
fn assert_protocol_clean<S, F>(label: &str, make: F)
where
    S: GeoStream<V = f32>,
    F: Fn() -> S,
{
    for &budget in BUDGETS {
        let mut s = make();
        let mut checker = ChunkProtocolChecker::new();
        while let Some(item) = s.next_chunk(budget) {
            checker.observe(&item);
        }
        assert_eq!(
            checker.violations(),
            0,
            "{label} violated the chunk protocol at budget {budget}"
        );
    }
}

#[test]
fn chunked_pipelines_are_protocol_clean() {
    // Sources, the repair layer over a damaged downlink, and the full
    // stacked pipeline must all satisfy the §12 bracketing/chunking
    // protocol as observed by the runtime validator.
    assert_protocol_clean("vec-fixture", vec_fixture);
    assert_protocol_clean("goes-scanner", goes_fixture);
    assert_protocol_clean("repair-over-chaos", || {
        StreamRepair::new(ChaosStream::new(goes_fixture(), nasty_plan(), 1234))
    });
    assert_protocol_clean("stacked-pipeline", || {
        let chaos = ChaosStream::new(goes_fixture(), nasty_plan(), 7);
        let repaired = StreamRepair::new(chaos);
        let restricted =
            SpatialRestrict::new(repaired, Region::Rect(Rect::new(-0.1, -0.1, 0.12, 0.12)));
        let transformed =
            MapTransform::<_, f32>::new(restricted, ValueFunc::Normalize { lo: 0.0, hi: 400.0 });
        Shed::new(transformed, ShedPolicy::Rows, 2)
    });
}

#[cfg(debug_assertions)]
#[test]
fn validator_catches_unrepaired_damage() {
    // Sanity check that the validator can actually fail: a downlink
    // that loses every end marker, pulled WITHOUT the repair layer,
    // must register bracketing violations in debug builds.
    let plan = FaultPlan::seeded(5).with_dropped_end_markers(1.0);
    let mut s = ChaosStream::new(goes_fixture(), plan, 3);
    let mut checker = ChunkProtocolChecker::new();
    while let Some(item) = s.next_chunk(64) {
        checker.observe(&item);
    }
    assert!(checker.violations() > 0, "dropping all end markers must trip the validator");
}
