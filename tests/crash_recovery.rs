//! Crash-recovery acceptance suite (crash-safe archive ISSUE): the
//! archive's durability contract under kill-point crashes, recovery
//! idempotence, and read-time corruption detection.
//!
//! The wide seeded sweep (and its run-twice determinism diff) lives in
//! `crates/bench/src/bin/crash_run.rs` behind `scripts/crash_gate.sh`;
//! this suite keeps a small always-on version in `cargo test`.

use geostreams::core::model::{Element, GeoStream};
use geostreams::core::obs::Registry;
use geostreams::satsim::goes_like;
use geostreams::store::segment::{scan_segment, segment_path, Record};
use geostreams::store::{Archive, ArchiveConfig, ChaosVfs, DiskFaultPlan, StdVfs, StoreMetrics};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SECTORS: u64 = 2;
const GROUP: u32 = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gs-crashtest-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> ArchiveConfig {
    let mut cfg = ArchiveConfig::new(dir);
    cfg.tile_width = 48;
    cfg.max_segment_bytes = 16 * 1024;
    cfg.group_commit_frames = GROUP;
    cfg
}

fn scanner() -> geostreams::satsim::Scanner {
    goes_like(96, 24, 3)
}

fn fnv1a_u32(v: u32, mut hash: u64) -> u64 {
    for b in v.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Feeds band 0 until the disk dies (or the run completes); returns
/// how many frames the archive accepted.
fn ingest_until_death(archive: &Archive) -> u64 {
    let scanner = scanner();
    let mut stream = scanner.band_stream(0, SECTORS);
    let band = stream.schema().band;
    if archive.bind_band(stream.schema()).is_err() {
        return 0;
    }
    let mut frames_ok = 0u64;
    while let Some(el) = stream.next_element() {
        let is_frame_end = matches!(el, Element::FrameEnd(_));
        match archive.ingest(band, &el) {
            Ok(()) => frames_ok += u64::from(is_frame_end),
            Err(_) => return frames_ok,
        }
    }
    let _ = archive.flush();
    frames_ok
}

/// Full replay of band 0: `(frames, prefix digests, failed)` where
/// `digests[k]` covers every point value of the first `k` frames.
fn replay_digests(archive: &Archive) -> (u64, Vec<u64>, bool) {
    let band = scanner().band_stream(0, 1).schema().band;
    let mut digests = vec![0xcbf2_9ce4_8422_2325u64];
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut frames = 0u64;
    let Ok(mut replay) = archive.replay(band, None, None, None) else {
        return (0, digests, false);
    };
    while let Some(el) = replay.next_element() {
        match el {
            Element::Point(p) => hash = fnv1a_u32(p.value.to_bits(), hash),
            Element::FrameEnd(_) => {
                frames += 1;
                digests.push(hash);
            }
            _ => {}
        }
    }
    (frames, digests, replay.failed())
}

/// Kill the disk at five spread byte offsets: every reopen must keep
/// all group-committed frames (loss bounded by one group), replay a
/// byte-identical prefix of the clean run, and never serve a corrupt
/// tile.
#[test]
fn kill_point_sweep_bounds_loss_to_one_group() {
    // Clean reference run: total byte budget + prefix digests.
    let clean_dir = tmp_dir("clean");
    let chaos = ChaosVfs::new(DiskFaultPlan::seeded(7));
    let probe = chaos.probe();
    let mut cfg = config(&clean_dir);
    cfg.vfs = Arc::new(chaos);
    let archive = Archive::create(cfg).unwrap();
    let fed_clean = ingest_until_death(&archive);
    let (clean_frames, clean_digests, clean_failed) = replay_digests(&archive);
    drop(archive);
    assert!(!clean_failed);
    assert_eq!(clean_frames, fed_clean);
    let total_bytes = probe.stats().bytes_written;
    let _ = std::fs::remove_dir_all(&clean_dir);

    for i in 1..=5u64 {
        let kill_at = (total_bytes * i / 6).max(1);
        let dir = tmp_dir(&format!("kill{i}"));
        let mut cfg = config(&dir);
        cfg.vfs = Arc::new(ChaosVfs::new(DiskFaultPlan::seeded(7).with_crash_at(kill_at)));
        let fed = match Archive::create(cfg) {
            Ok(archive) => ingest_until_death(&archive),
            Err(_) => 0,
        };

        let archive = Archive::open(config(&dir)).expect("recovery must succeed");
        let (recovered, digests, failed) = replay_digests(&archive);
        assert!(!failed, "kill@{kill_at}: corrupt tile served");
        assert!(
            recovered + u64::from(GROUP) >= fed,
            "kill@{kill_at}: lost more than one group ({recovered} of {fed})"
        );
        assert!(recovered <= fed, "kill@{kill_at}: phantom frames");
        assert_eq!(
            digests[recovered as usize], clean_digests[recovered as usize],
            "kill@{kill_at}: recovered replay diverges from the clean prefix"
        );
        drop(archive);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Recovery is idempotent: reopening the already-recovered directory
/// changes nothing — same frame count, same digest, and the second
/// open reports a clean recovery.
#[test]
fn recovery_is_idempotent() {
    let dir = tmp_dir("idem");
    let mut cfg = config(&dir);
    cfg.vfs = Arc::new(ChaosVfs::new(DiskFaultPlan::seeded(3).with_crash_at(9_000)));
    let fed = match Archive::create(cfg) {
        Ok(archive) => ingest_until_death(&archive),
        Err(_) => 0,
    };
    assert!(fed > 0, "the crash budget must admit some frames");

    let archive = Archive::open(config(&dir)).unwrap();
    let first_report = archive.recovery_report();
    let (first, first_digests, failed) = replay_digests(&archive);
    assert!(!failed);
    drop(archive);

    let archive = Archive::open(config(&dir)).unwrap();
    let second_report = archive.recovery_report();
    let (second, second_digests, failed) = replay_digests(&archive);
    assert!(!failed);
    assert_eq!(second, first, "second recovery changed the frame count");
    assert_eq!(
        second_digests[second as usize], first_digests[first as usize],
        "second recovery changed the replay digest"
    );
    assert!(second_report.clean(), "second open must find nothing to repair: {second_report:?}");
    assert!(!first_report.clean() || first_report.wal_commits_seen > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipping one byte inside a sealed tile payload is caught at read
/// time by the per-tile checksum: the replay ends in failure (never
/// yielding the rotted pixels) and the corruption counter fires.
#[test]
fn flipped_byte_in_sealed_segment_is_detected_at_read_time() {
    let dir = tmp_dir("rot");
    let archive = Archive::create(config(&dir)).unwrap();
    let registry = Registry::new();
    archive.attach_metrics(StoreMetrics::register(&registry));
    let fed = ingest_until_death(&archive);
    assert!(fed > 0);

    // Locate a tile payload in the first segment via the scanner the
    // recovery path uses, then flip one bit in the middle of it while
    // the archive (and its index) stays open.
    let seg_path = segment_path(&dir, 0);
    let scan = scan_segment(&StdVfs, &seg_path).unwrap();
    let (payload_offset, payload_len) = scan
        .records
        .iter()
        .find_map(|r| match r {
            Record::Tile { header, payload_offset } => {
                Some((*payload_offset, u64::from(header.payload_len)))
            }
            _ => None,
        })
        .expect("segment holds a tile");
    let mut bytes = std::fs::read(&seg_path).unwrap();
    let at = (payload_offset + payload_len / 2) as usize;
    bytes[at] ^= 0x20;
    std::fs::write(&seg_path, &bytes).unwrap();

    let band = scanner().band_stream(0, 1).schema().band;
    let mut replay = archive.replay(band, None, None, None).unwrap();
    let mut points = 0u64;
    while let Some(el) = replay.next_element() {
        points += u64::from(el.is_point());
    }
    assert!(replay.failed(), "replay must end in failure, not a clean EOS");
    let rendered = registry.render_prometheus();
    assert!(
        rendered.contains("geostreams_store_corruption_detected_total 1"),
        "corruption metric must fire exactly once: {rendered}"
    );
    // The flipped tile sits in the very first frame of the band, so
    // nothing before it was served either.
    assert_eq!(points, 0, "no pixel of the corrupt frame may be delivered");
    let _ = std::fs::remove_dir_all(&dir);
}
