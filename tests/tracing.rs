//! Causal tracing + freshness acceptance (ISSUE 6): per-query flight
//! recorders capture a complete, parent-linked span tree from scan to
//! delivery (splice/backfill included for hybrid queries), event-time
//! freshness reacts to injected stalls, the `/queries` and
//! `/trace/<id>` surfaces round-trip as JSON, and failure edges
//! (watchdog cancellation) leave recorder entries and frozen dumps.

use geostreams::core::obs::{RecorderSnapshot, Span, SpanOutcome};
use geostreams::dsms::protocol::{ClientRequest, OutputFormat};
use geostreams::dsms::{run_supervised, Dsms, QueryStatus, RuntimeConfig, ServerMetrics};
use geostreams::satsim::{goes_like, FaultPlan, Scanner};
use geostreams::store::{Archive, ArchiveConfig};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Index of `goes-sim.b4-ir` in the GOES-like instrument.
const B4: usize = 3;

fn req(q: &str, format: OutputFormat) -> ClientRequest {
    ClientRequest { query: q.to_string(), format, sectors: 0 }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gs-tracetest-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Persists sectors `[0, n_sectors)` of one band, as the live ingest
/// path would have.
fn seed_archive(dir: &PathBuf, scanner: &Scanner, band_idx: usize, n_sectors: u64) -> Archive {
    use geostreams::core::model::GeoStream;
    let archive = Archive::create(ArchiveConfig::new(dir)).unwrap();
    let mut stream = scanner.band_stream(band_idx, n_sectors);
    let band = stream.schema().band;
    archive.bind_band(stream.schema()).unwrap();
    while let Some(el) = stream.next_element() {
        archive.ingest(band, &el).unwrap();
    }
    archive.flush().unwrap();
    archive
}

/// Asserts the span set forms a forest: ids unique, every non-zero
/// parent resolves to a recorded span, and walking parents from any
/// span terminates at a root without revisiting (acyclic).
fn assert_parent_linked(spans: &[Span]) {
    let mut ids = HashSet::new();
    for s in spans {
        assert!(ids.insert(s.span_id), "duplicate span id {}", s.span_id);
    }
    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.span_id, s)).collect();
    for s in spans {
        let mut seen = HashSet::new();
        let mut cur = s;
        while cur.parent != 0 {
            assert!(seen.insert(cur.span_id), "cycle through span {} ({})", cur.span_id, cur.stage);
            cur = by_id.get(&cur.parent).unwrap_or_else(|| {
                panic!("span {} ({}) has unrecorded parent {}", s.span_id, s.stage, s.parent)
            });
        }
    }
}

/// Span ids on the path from `start` to its root, inclusive.
fn path_to_root(spans: &[Span], start: &Span) -> Vec<u64> {
    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.span_id, s)).collect();
    let mut path = vec![start.span_id];
    let mut cur = start;
    while cur.parent != 0 {
        cur = by_id[&cur.parent];
        path.push(cur.span_id);
        assert!(path.len() <= spans.len(), "parent walk did not terminate");
    }
    path
}

fn find_span<'a>(spans: &'a [Span], prefix: &str) -> &'a Span {
    spans.iter().find(|s| s.stage.starts_with(prefix)).unwrap_or_else(|| {
        let stages: Vec<&str> = spans.iter().map(|s| s.stage.as_str()).collect();
        panic!("no span with stage prefix {prefix:?}; have {stages:?}")
    })
}

fn body_of(resp: &[u8]) -> String {
    let text = String::from_utf8_lossy(resp).to_string();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    let start = text.find("\r\n\r\n").unwrap() + 4;
    text[start..].to_string()
}

/// A stacked pipeline under a chaotic downlink still produces a
/// complete, acyclic span tree rooted at the delivery span, and the
/// scan span links back to the ingest pump's trace.
#[test]
fn chaotic_pipeline_span_tree_is_complete_and_acyclic() {
    let scanner = goes_like(64, 32, 11);
    let metrics = Arc::new(ServerMetrics::new());
    let config = RuntimeConfig {
        fault_plan: Some(
            FaultPlan::seeded(42)
                .with_dropped_rows(0.08)
                .with_dropped_points(0.03)
                .with_dropped_end_markers(0.05)
                .with_duplicates(0.05),
        ),
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let requests = vec![
        req("focal(scale(goes-sim.b4-ir, 2, 0), \"mean\", 3)", OutputFormat::Stats),
        req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
    ];
    let (results, _) = run_supervised(&scanner, 3, &requests, &config).unwrap();
    assert!(results.iter().all(|r| r.is_ok()));

    let rec = metrics.try_recorder(0).expect("query 0 has a recorder");
    let snap = rec.to_snapshot();
    assert!(snap.spans.len() >= 5, "expected a stacked span tree, got {:?}", snap.spans);
    assert_parent_linked(&snap.spans);
    // Exactly one root: the delivery span; all spans closed Ok.
    let roots: Vec<&Span> = snap.spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "{roots:?}");
    assert_eq!(roots[0].stage, "deliver");
    assert!(snap.spans.iter().all(|s| s.end_ns >= s.start_ns && s.end_ns > 0));
    assert!(snap.spans.iter().all(|s| s.outcome == SpanOutcome::Ok));

    // Factory stages are present and chain scan -> repair -> ... ->
    // deliver.
    let scan = find_span(&snap.spans, "scan:goes-sim.b4-ir");
    let repair = find_span(&snap.spans, "repair:goes-sim.b4-ir");
    let path = path_to_root(&snap.spans, scan);
    assert!(path.contains(&repair.span_id), "scan does not chain through repair: {path:?}");
    assert_eq!(*path.last().unwrap(), roots[0].span_id);
    // Points flowed through the scan span.
    assert!(scan.points > 0);

    // Cross-trace link: chunk-carried contexts survive only on the
    // chunk-native pull path (element-wise operators like `focal`
    // flatten chunks), so the link is asserted on the sibling
    // chunk-native query.
    let chunked = metrics.try_recorder(1).expect("query 1 has a recorder").to_snapshot();
    assert_parent_linked(&chunked.spans);
    let chunked_scan = find_span(&chunked.spans, "scan:goes-sim.b4-ir");
    let ingest = metrics.try_recorder(u32::MAX).expect("ingest recorder exists");
    let link = chunked_scan.link.expect("scan span links the pump context");
    assert_eq!(link.trace_id, ingest.trace_id());
    assert_ne!(link.trace_id, chunked.trace_id);
    let ingest_snap = ingest.to_snapshot();
    find_span(&ingest_snap.spans, "pump:goes-sim.b4-ir#0");
    find_span(&ingest_snap.spans, "chaos:goes-sim.b4-ir#0");
    find_span(&ingest_snap.spans, "scan:goes-sim.b4-ir#0");
}

/// End-to-end synthesis→delivery lag is monotone with respect to an
/// injected per-element stall: the stalled query's p50 lag dominates
/// its healthy sibling's on the same band.
#[test]
fn e2e_lag_is_monotone_in_injected_stall() {
    let scanner = goes_like(32, 16, 5);
    let metrics = Arc::new(ServerMetrics::new());
    let config = RuntimeConfig {
        query_stall: vec![(1, Duration::from_millis(10))],
        channel_cap: 1 << 16,
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let requests = vec![
        req("goes-sim.b4-ir", OutputFormat::Stats),
        req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
    ];
    let (results, _) = run_supervised(&scanner, 2, &requests, &config).unwrap();
    assert!(results.iter().all(|r| r.is_ok()));

    let statuses = metrics.query_statuses();
    assert_eq!(statuses.len(), 2);
    let healthy = &statuses[0];
    let stalled = &statuses[1];
    assert!(healthy.frames_delivered > 0 && stalled.frames_delivered > 0);
    assert!(healthy.e2e_lag_p50_ns > 0, "{healthy:?}");
    assert!(
        stalled.e2e_lag_p50_ns > healthy.e2e_lag_p50_ns,
        "stalled lag {} must dominate healthy lag {}",
        stalled.e2e_lag_p50_ns,
        healthy.e2e_lag_p50_ns
    );
    // Both advanced their event-time watermark to the last sector.
    assert_eq!(healthy.watermark, 1);
    assert_eq!(stalled.watermark, 1);
}

/// The ISSUE acceptance path: a hybrid query under fault injection,
/// its trace served over HTTP — `GET /queries` and `GET /trace/<id>`
/// round-trip as JSON, and the span tree includes the backfill and
/// splice stages parent-linked from scan to delivery.
#[test]
fn http_surfaces_serve_hybrid_trace_with_splice_and_backfill() {
    let scanner = goes_like(64, 32, 11);
    let dir = tmp_dir("http");
    let archive = seed_archive(&dir, &scanner, B4, 3);
    let dsms = Arc::new(Dsms::over_scanner(&scanner, 2));
    let config = RuntimeConfig {
        archive: Some(Arc::new(archive)),
        start_sector: 3,
        fault_plan: Some(FaultPlan::seeded(5).with_dropped_rows(0.05).with_duplicates(0.05)),
        metrics: Some(Arc::clone(&dsms.metrics)),
        ..RuntimeConfig::default()
    };
    let requests = vec![req("restrict_time(goes-sim.b4-ir, interval(0, 5))", OutputFormat::Stats)];
    let (results, _) = run_supervised(&scanner, 2, &requests, &config).unwrap();
    assert!(results[0].is_ok());

    // Live directory over HTTP.
    let body = body_of(&dsms.handle_http("GET /queries HTTP/1.1"));
    let statuses: Vec<QueryStatus> = serde_json::from_str(&body).unwrap();
    let q = statuses.iter().find(|q| q.id == 0).expect("query 0 listed");
    assert_eq!(q.state, "done");
    assert_eq!(q.query, "restrict_time(goes-sim.b4-ir, interval(0, 5))");
    assert!(q.frames_delivered > 0);
    assert_eq!(q.watermark, 4, "watermark is the last delivered sector timestamp");
    assert!(q.completeness > 0.0 && q.completeness <= 1.0);
    assert!(q.points_delivered > 0);

    // Flight-recorder dump over HTTP.
    let body = body_of(&dsms.handle_http("GET /trace/0 HTTP/1.1"));
    let snap: RecorderSnapshot = serde_json::from_str(&body).unwrap();
    assert_eq!(snap.query_id, 0);
    assert_eq!(snap.trace_id, q.trace_id);
    assert_eq!(snap.dropped, 0, "span ring must not have evicted");
    assert_parent_linked(&snap.spans);

    let scan = find_span(&snap.spans, "scan:goes-sim.b4-ir");
    let splice = find_span(&snap.spans, "splice:goes-sim.b4-ir");
    let repair = find_span(&snap.spans, "repair:goes-sim.b4-ir");
    let backfill = find_span(&snap.spans, "backfill:goes-sim.b4-ir");
    let deliver = find_span(&snap.spans, "deliver");
    assert_eq!(deliver.parent, 0);
    // backfill hangs off the splice stage; scan chains through splice
    // and repair up to the delivery root.
    assert_eq!(backfill.parent, splice.span_id);
    let path = path_to_root(&snap.spans, scan);
    assert!(path.contains(&splice.span_id), "{path:?}");
    assert!(path.contains(&repair.span_id), "{path:?}");
    assert_eq!(*path.last().unwrap(), deliver.span_id);
    // Both the replayed (backfill) and live (scan) phases moved points.
    assert!(splice.points > 0);
    assert!(scan.points > 0);

    // Unknown query ids are a clean 404.
    let resp = dsms.handle_http("GET /trace/999 HTTP/1.1");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));
}

/// Watchdog cancellation is observable end to end: the cancelled
/// query's recorder holds a `watchdog` span and a frozen dump, its
/// directory state is `cancelled`, and the `/metrics` exposition
/// carries the trace-drop counter with HELP/TYPE metadata.
#[test]
fn watchdog_cancellation_freezes_the_flight_recorder() {
    let scanner = goes_like(32, 16, 5);
    // Tiny trace ring (smaller than the four sector-boundary events of
    // a single traced node) so the drop counter provably syncs into
    // the exposition.
    let metrics = Arc::new(ServerMetrics::with_trace_capacity(2));
    let config = RuntimeConfig {
        watchdog: Some(Duration::from_millis(300)),
        query_stall: vec![(1, Duration::from_secs(10))],
        marker_patience: Duration::from_millis(50),
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let requests = vec![
        req("goes-sim.b4-ir", OutputFormat::Stats),
        req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
    ];
    let (results, stats) = run_supervised(&scanner, 2, &requests, &config).unwrap();
    assert!(results[1].as_ref().unwrap().cancelled);
    assert_eq!(stats.watchdog_cancellations, 1);

    let statuses = metrics.query_statuses();
    assert_eq!(statuses[0].state, "done");
    assert_eq!(statuses[1].state, "cancelled");

    let rec = metrics.try_recorder(1).expect("cancelled query has a recorder");
    let snap = rec.to_snapshot();
    let wd = find_span(&snap.spans, "watchdog");
    assert_eq!(wd.outcome, SpanOutcome::Cancelled);
    assert!(!snap.dumps.is_empty(), "cancellation must freeze a dump");
    assert_eq!(snap.dumps[0].reason, "watchdog");

    let prom = metrics.render_prometheus();
    assert!(prom.contains("geostreams_watchdog_cancellations_total 1"), "{prom}");
    assert!(prom.contains("# TYPE geostreams_trace_dropped_total counter"), "{prom}");
    assert!(prom.contains("# HELP geostreams_trace_dropped_total"), "{prom}");
    let dropped: u64 = prom
        .lines()
        .find_map(|l| l.strip_prefix("geostreams_trace_dropped_total "))
        .expect("trace_dropped series rendered")
        .trim()
        .parse()
        .unwrap();
    assert!(dropped > 0, "tiny trace ring must have dropped events:\n{prom}");
    assert!(prom.contains("# TYPE geostreams_e2e_lag_ns histogram"), "{prom}");
}
