//! Observability integration: operator tracing through the DSMS, the
//! Prometheus `/metrics` endpoint, and the `/healthz` probe.
//!
//! The unified observability layer claims that (1) every operator in a
//! planned query pipeline reports real pull-latency percentiles, (2)
//! query boundaries land in the structured trace ring, and (3) the TCP
//! front end exposes the whole registry as parseable Prometheus text
//! exposition with self-consistent histogram bucket counts.

use geostreams::core::obs::TraceKind;
use geostreams::dsms::{Dsms, HttpServer, OutputFormat};
use geostreams::satsim::goes_like;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

#[test]
fn traced_query_reports_per_op_latency_percentiles() {
    let server = Dsms::over_scanner(&goes_like(64, 32, 7), 2);
    let h = server
        .register_text(
            "focal(restrict_value(goes-sim.b4-ir, 0.1, 0.95), \"mean\", 3)",
            OutputFormat::Stats,
            2,
        )
        .unwrap();
    let report = server.run_query(&h).unwrap().report.unwrap();

    // The root pull histogram always records.
    assert!(report.pull_latency.count > 0);
    assert!(report.pull_p50_ns() > 0 && report.pull_p95_ns() >= report.pull_p50_ns());

    // Every operator in the traced pipeline carries its own non-zero
    // pull-latency percentiles.
    assert!(!report.per_op.is_empty());
    for op in &report.per_op {
        let hist = op.pull_latency.as_ref().unwrap_or_else(|| panic!("{} untraced", op.name));
        assert!(hist.count > 0, "{} recorded no pulls", op.name);
        assert!(op.pull_p50_ns() > 0, "{} has zero p50", op.name);
        assert!(op.pull_p99_ns() >= op.pull_p95_ns(), "{} percentiles out of order", op.name);
    }

    // Query wall time landed in the server histogram, and the trace ring
    // saw the query boundaries.
    let prom = server.metrics.render_prometheus();
    assert!(prom.contains("geostreams_query_wall_ns_count 1"), "{prom}");
    let events = server.metrics.trace.snapshot();
    assert!(events.iter().any(|e| e.kind == TraceKind::QueryStart && e.query_id == h.id));
    assert!(events.iter().any(|e| e.kind == TraceKind::QueryEnd && e.query_id == h.id));
}

fn fetch(addr: std::net::SocketAddr, target: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    conn.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut buf = Vec::new();
    conn.read_to_end(&mut buf).expect("read");
    String::from_utf8_lossy(&buf).to_string()
}

/// Minimal Prometheus text-exposition parser: `name{labels} value`
/// lines into a map, keeping the full labeled series name as the key.
fn parse_prometheus(body: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in: {line}"));
        out.insert(series.to_string(), v);
    }
    out
}

#[test]
fn metrics_endpoint_serves_parseable_prometheus_exposition() {
    let dsms = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 3), 1));
    let http = HttpServer::spawn(Arc::clone(&dsms), "127.0.0.1:0").expect("bind");
    let addr = http.addr();

    // Health probe.
    let health = fetch(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("ok"));

    // Run two queries through the front end so counters and the query
    // wall-time histogram are non-trivial.
    for q in ["goes-sim.b3-wv", "scale(goes-sim.b1-vis,+2,+0)"] {
        let resp = fetch(addr, &format!("/query?q={q}&format=json&sectors=1"));
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    }

    let scrape = fetch(addr, "/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200"), "{scrape}");
    assert!(scrape.contains("text/plain; version=0.0.4"), "{scrape}");
    let body = &scrape[scrape.find("\r\n\r\n").unwrap() + 4..];
    assert!(body.contains("# TYPE geostreams_query_wall_ns histogram"));
    assert!(body.contains("# HELP geostreams_queries_registered_total"));

    let series = parse_prometheus(body);
    assert_eq!(series["geostreams_queries_registered_total"], 2.0);
    assert_eq!(series["geostreams_queries_rejected_total"], 0.0);
    assert!(series["geostreams_points_ingested_total"] > 0.0);
    // Request counters increment after each response is written, so at
    // scrape time they lag; exact values are checked after stop() joins.
    assert!(series.contains_key("geostreams_requests_handled_total"));
    assert_eq!(series["geostreams_requests_errored_total"], 0.0);

    // Histogram self-consistency: cumulative buckets are monotone, the
    // +Inf bucket equals _count, and two queries were recorded.
    assert_eq!(series["geostreams_query_wall_ns_count"], 2.0);
    assert!(series["geostreams_query_wall_ns_sum"] > 0.0);
    let mut buckets: Vec<(f64, f64)> = series
        .iter()
        .filter_map(|(k, &v)| {
            let le = k.strip_prefix("geostreams_query_wall_ns_bucket{le=\"")?;
            let le = le.strip_suffix("\"}")?;
            let bound = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            Some((bound, v))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    assert!(!buckets.is_empty(), "no le buckets rendered:\n{body}");
    let mut prev = 0.0;
    for &(bound, cumulative) in &buckets {
        assert!(cumulative >= prev, "bucket le={bound} not cumulative");
        prev = cumulative;
    }
    assert_eq!(buckets.last().unwrap().0, f64::INFINITY, "missing +Inf bucket");
    assert_eq!(buckets.last().unwrap().1, 2.0, "+Inf bucket must equal _count");

    // The per-connection latency series is exposed (its count lags the
    // in-flight scrape, so the exact value is only checked post-join).
    assert!(series.contains_key("geostreams_request_ns_count"));

    // stop() joins every connection thread, so afterwards the request
    // histogram deterministically holds all four connections.
    http.stop();
    let settled = parse_prometheus(&dsms.metrics.render_prometheus());
    assert_eq!(settled["geostreams_request_ns_count"], 4.0);
    assert_eq!(settled["geostreams_requests_handled_total"], 4.0);
    assert_eq!(dsms.metrics.requests_errored.get(), 0);
    assert!(dsms.metrics.summary().contains("errored=0"));
}
