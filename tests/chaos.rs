//! Seeded chaos acceptance suite: the supervised DSMS runtime over a
//! deliberately degraded GOES-like downlink.
//!
//! The scenarios of ISSUE 3: ≥5% dropped rows plus duplicates and
//! disorder must leave every registered query *completing* (within its
//! watchdog deadline, with partial frames and honest completeness
//! ratios) instead of blocking forever; an injected ingest crash must
//! surface as a supervised restart; and everything must be
//! byte-identical across two runs with the same seed.

use geostreams::dsms::protocol::{ClientRequest, OutputFormat};
use geostreams::dsms::{run_supervised, FanoutPolicy, RuntimeConfig, ServerMetrics};
use geostreams::satsim::{goes_like, FaultPlan};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn req(q: &str, format: OutputFormat) -> ClientRequest {
    ClientRequest { query: q.to_string(), format, sectors: 0 }
}

/// The canonical degraded downlink of the acceptance criteria: ≥5%
/// dropped rows, duplicated elements, out-of-order elements, plus a
/// sprinkle of dropped points and lost end markers.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_dropped_rows(0.08)
        .with_dropped_points(0.03)
        .with_dropped_end_markers(0.05)
        .with_duplicates(0.05)
        .with_reordering(0.05)
}

/// Threads of this process (Linux); used to prove the runtime joins
/// everything it spawns.
fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find(|l| l.starts_with("Threads:"))?.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn degraded_downlink_completes_with_partial_frames() {
    let scanner = goes_like(64, 32, 11);
    let metrics = Arc::new(ServerMetrics::new());
    let config = RuntimeConfig {
        fault_plan: Some(chaos_plan(1234)),
        watchdog: Some(Duration::from_secs(30)),
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let requests = vec![
        req("goes-sim.b4-ir", OutputFormat::Stats),
        req("stretch(goes-sim.b4-ir, \"linear\")", OutputFormat::Stats),
        req("goes-sim.b1-vis", OutputFormat::PngGray),
    ];
    let threads_before = thread_count();
    let started = Instant::now();
    let (results, stats) = run_supervised(&scanner, 4, &requests, &config).unwrap();
    let elapsed = started.elapsed();

    // Every query completed, well inside the watchdog deadline and
    // without being cancelled.
    assert_eq!(results.len(), 3);
    assert!(elapsed < Duration::from_secs(30), "queries must not run into the watchdog");
    assert_eq!(stats.watchdog_cancellations, 0);
    for r in &results {
        let r = r.as_ref().unwrap();
        assert!(!r.cancelled);
        // Even over a damaged downlink, the repaired streams the
        // operators actually saw obeyed the §12 bracketing protocol:
        // the debug-build runtime validator observed zero violations.
        if let Some(report) = &r.report {
            assert_eq!(report.protocol_violations, 0, "query {} violated the protocol", r.id);
        }
        // The repair stage quantified the damage instead of hiding it.
        let repair = &r.repair[0];
        assert!(repair.stats.completeness() < 1.0, "8% row drops must show");
        assert!(repair.stats.completeness() > 0.5, "most data still arrives");
        assert!(repair.stats.gaps > 0);
        // Completeness ratios are internally consistent: per-sector
        // received sums to the stream total, and each ratio is sane.
        let sum: u64 = repair.sectors.iter().map(|s| s.received_points).sum();
        assert_eq!(sum, repair.stats.received_points);
        for s in &repair.sectors {
            assert!(s.received_points <= s.expected_points);
            assert!(s.ratio() > 0.0 && s.ratio() <= 1.0);
        }
        assert_eq!(repair.sectors.len(), 4, "all announced sectors accounted for");
    }
    // The frame-scoped stretch (query 1) terminated over lost rows and
    // markers — the exact failure mode that used to block forever.
    let stretched = results[1].as_ref().unwrap();
    assert!(stretched.report.as_ref().unwrap().points_delivered > 0);
    // PNG delivery produced one (partial) image per surviving sector.
    let png = results[2].as_ref().unwrap();
    assert!(!png.frames.is_empty());
    // Recovery metrics surfaced through the PR 1 registry.
    assert!(metrics.gaps_detected.get() > 0);
    assert!(metrics.partial_frames.get() > 0);
    assert!(metrics.duplicates_dropped.get() > 0);
    let rendered = metrics.render_prometheus();
    assert!(rendered.contains("geostreams_gaps_detected_total"));
    // The protocol-violation counter is exposed and stayed at zero.
    assert!(rendered.contains("geostreams_protocol_violation_total"));
    assert_eq!(metrics.protocol_violations.get(), 0);
    assert!(rendered.contains("geostreams_partial_frames_total"));

    // No thread leaks: everything the runtime spawned was joined.
    if let (Some(before), Some(after)) = (threads_before, thread_count()) {
        assert!(after <= before, "thread leak: {before} -> {after}");
    }
}

#[test]
fn same_seed_is_byte_identical() {
    let run = || {
        let scanner = goes_like(64, 32, 11);
        let config = RuntimeConfig {
            fault_plan: Some(chaos_plan(77)),
            // Generous so timing-dependent shedding can never differ.
            channel_cap: 1 << 16,
            watchdog: Some(Duration::from_secs(60)),
            ..RuntimeConfig::default()
        };
        let requests = vec![
            req("goes-sim.b1-vis", OutputFormat::PngGray),
            req("goes-sim.b4-ir", OutputFormat::Stats),
        ];
        run_supervised(&scanner, 3, &requests, &config).unwrap()
    };
    let (a, astats) = run();
    let (b, bstats) = run();

    // Frame payloads byte-for-byte.
    let fa = &a[0].as_ref().unwrap().frames;
    let fb = &b[0].as_ref().unwrap().frames;
    assert_eq!(fa.len(), fb.len());
    assert!(!fa.is_empty());
    for (x, y) in fa.iter().zip(fb.iter()) {
        assert_eq!(x.png, y.png);
    }
    // Stats, repair outcomes and fault injections identical.
    for (ra, rb) in a.iter().zip(&b) {
        let (ra, rb) = (ra.as_ref().unwrap(), rb.as_ref().unwrap());
        assert_eq!(ra.points, rb.points);
        assert_eq!(ra.repair.len(), rb.repair.len());
        for (xa, xb) in ra.repair.iter().zip(&rb.repair) {
            assert_eq!(xa.stats, xb.stats);
            assert_eq!(xa.sectors, xb.sectors);
        }
    }
    assert_eq!(astats.elements_per_band, bstats.elements_per_band);
    assert_eq!(astats.faults_per_band, bstats.faults_per_band);
}

#[test]
fn ingest_crash_restarts_and_feed_resumes() {
    let scanner = goes_like(64, 32, 11);
    let metrics = Arc::new(ServerMetrics::new());
    let config = RuntimeConfig {
        // Crash the decoder partway through sector 1 of 4; keep a mild
        // degradation active so the restarted feed is still chaotic.
        fault_plan: Some(chaos_plan(5).with_death_after(500)),
        backoff_base: Duration::from_millis(1),
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let (results, stats) =
        run_supervised(&scanner, 4, &[req("goes-sim.b1-vis", OutputFormat::Stats)], &config)
            .unwrap();
    assert!(stats.restarts >= 1, "{stats:?}");
    assert_eq!(metrics.ingest_restarts.get(), stats.restarts);
    assert!(stats.faults_per_band.iter().any(|(_, f)| f.died));
    // The query saw sectors from both sides of the crash.
    let r = results[0].as_ref().unwrap();
    let repair = &r.repair[0];
    assert!(repair.sectors.len() >= 2, "{:?}", repair.sectors);
    let max_sector = repair.sectors.iter().map(|s| s.sector_id).max().unwrap();
    assert!(max_sector >= 2, "feed did not resume past the crash: {:?}", repair.sectors);
}

#[test]
fn hung_query_is_cancelled_without_stalling_siblings() {
    let scanner = goes_like(64, 32, 11);
    let metrics = Arc::new(ServerMetrics::new());
    let config = RuntimeConfig {
        fanout: FanoutPolicy::Shed,
        watchdog: Some(Duration::from_millis(400)),
        // Query 1 stalls 30s per element: hopelessly wedged.
        query_stall: vec![(1, Duration::from_secs(30))],
        marker_patience: Duration::from_millis(100),
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let requests = vec![
        req("goes-sim.b4-ir", OutputFormat::Stats),
        req("goes-sim.b4-ir", OutputFormat::Stats),
    ];
    let started = Instant::now();
    let (results, stats) = run_supervised(&scanner, 2, &requests, &config).unwrap();
    assert!(started.elapsed() < Duration::from_secs(20), "cancellation must not hang");
    let healthy = results[0].as_ref().unwrap();
    let wedged = results[1].as_ref().unwrap();
    assert!(!healthy.cancelled);
    assert_eq!(healthy.report.as_ref().unwrap().points_delivered, 2 * 16 * 8);
    assert!(wedged.cancelled);
    assert_eq!(stats.watchdog_cancellations, 1);
    assert_eq!(metrics.watchdog_cancellations.get(), 1);
}
