//! Acceptance suite for the tiled raster archive (ISSUE 4): a seeded
//! GOES-like run is persisted, then continuous queries whose temporal
//! restriction starts in the past are served by replaying the archive
//! and splicing into the live downlink at a recorded watermark — no
//! gap, no duplicate frame, honest completeness accounting throughout.

use geostreams::core::model::{Element, GeoStream, RepairProbe, StreamRepair};
use geostreams::core::CoreError;
use geostreams::dsms::protocol::{ClientRequest, OutputFormat};
use geostreams::dsms::{run_supervised, RuntimeConfig, ServerMetrics};
use geostreams::satsim::{goes_like, ChaosStream, FaultPlan, Scanner};
use geostreams::store::{Archive, ArchiveConfig, SpliceStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index of `goes-sim.b4-ir` in the GOES-like instrument (reduction 4:
/// a 64x32 full-res field yields 16x8 sectors of 8 one-row frames).
const B4: usize = 3;

fn req(q: &str, format: OutputFormat) -> ClientRequest {
    ClientRequest { query: q.to_string(), format, sectors: 0 }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gs-storetest-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Persists sectors `[0, n_sectors)` of one band, as the live ingest
/// path would have, and returns the archive plus the band id.
fn seed_archive(
    dir: &PathBuf,
    scanner: &Scanner,
    band_idx: usize,
    n_sectors: u64,
) -> (Archive, u16) {
    let archive = Archive::create(ArchiveConfig::new(dir)).unwrap();
    let mut stream = scanner.band_stream(band_idx, n_sectors);
    let band = stream.schema().band;
    archive.bind_band(stream.schema()).unwrap();
    while let Some(el) = stream.next_element() {
        archive.ingest(band, &el).unwrap();
    }
    archive.flush().unwrap();
    (archive, band)
}

/// The ISSUE acceptance test: a query whose interval starts before
/// "now" replays sectors [0,3) from the archive, then hands off to the
/// live downlink (sectors [3,5)) exactly once — every sector complete,
/// no duplicate frames, no gaps at the seam.
#[test]
fn hybrid_query_backfills_then_goes_live_without_gap() {
    let scanner = goes_like(64, 32, 11);
    let dir = tmp_dir("hybrid");
    let (archive, band) = seed_archive(&dir, &scanner, B4, 3);
    let metrics = Arc::new(ServerMetrics::new());
    let config = RuntimeConfig {
        archive: Some(Arc::new(archive)),
        start_sector: 3,
        metrics: Some(Arc::clone(&metrics)),
        ..RuntimeConfig::default()
    };
    let requests = vec![req("restrict_time(goes-sim.b4-ir, interval(0, 5))", OutputFormat::Stats)];
    let (results, _stats) = run_supervised(&scanner, 2, &requests, &config).unwrap();

    let r = results[0].as_ref().unwrap();
    assert!(!r.cancelled);
    // 5 sectors x (16x8) points: 3 archived + 2 live, nothing missing.
    assert_eq!(r.report.as_ref().unwrap().points_delivered, 5 * 16 * 8);
    let repair = &r.repair[0];
    assert_eq!(repair.stats.completeness(), 1.0, "{:?}", repair.stats);
    assert_eq!(repair.stats.duplicate_frames, 0);
    assert_eq!(repair.stats.gaps, 0);
    // Every sector [0,5) accounted for, each fully received — the
    // splice seam between sector 2 (archived) and 3 (live) is seamless.
    let mut ids: Vec<u64> = repair.sectors.iter().map(|s| s.sector_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    for s in &repair.sectors {
        assert_eq!(s.received_points, s.expected_points, "sector {}", s.sector_id);
    }
    // The live tail was persisted too: the archive now covers [0,5).
    let archive = config.archive.as_ref().unwrap();
    assert_eq!(archive.watermark(band).map(|(s, _)| s), Some(4));
    assert_eq!(archive.stats().frames, 5 * 8);
    // Store metrics surfaced on the shared registry, including the
    // backfill handoff latency observed by the splice.
    let rendered = metrics.render_prometheus();
    assert!(rendered.contains("geostreams_store_frames_persisted_total"));
    assert!(rendered.contains("geostreams_store_backfill_ns"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A wholly-past interval over archived coverage is served from the
/// archive alone: correct points, full completeness, and no live
/// ingest threads at all.
#[test]
fn wholly_past_query_is_served_from_archive_alone() {
    let scanner = goes_like(64, 32, 11);
    let dir = tmp_dir("past");
    let (archive, _band) = seed_archive(&dir, &scanner, B4, 3);
    let config = RuntimeConfig {
        archive: Some(Arc::new(archive)),
        start_sector: 3,
        ..RuntimeConfig::default()
    };
    let requests = vec![req("restrict_time(goes-sim.b4-ir, interval(1, 3))", OutputFormat::Stats)];
    let (results, stats) = run_supervised(&scanner, 2, &requests, &config).unwrap();

    let r = results[0].as_ref().unwrap();
    assert!(!r.cancelled);
    assert_eq!(r.report.as_ref().unwrap().points_delivered, 2 * 16 * 8);
    let repair = &r.repair[0];
    assert_eq!(repair.stats.completeness(), 1.0, "{:?}", repair.stats);
    assert_eq!(repair.stats.duplicate_frames, 0);
    // No band needed a live subscription, so nothing was ingested.
    assert!(stats.elements_per_band.is_empty(), "{:?}", stats.elements_per_band);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the silent-empty-result bug: without an archive, a
/// query whose interval lies wholly in the past used to register and
/// deliver nothing. It must now be rejected at admission with a
/// diagnostic, while sibling queries keep running.
#[test]
fn wholly_past_query_without_archive_is_rejected() {
    let scanner = goes_like(64, 32, 11);
    let config = RuntimeConfig { start_sector: 3, ..RuntimeConfig::default() };
    let requests = vec![
        req("restrict_time(goes-sim.b4-ir, interval(0, 3))", OutputFormat::Stats),
        req("goes-sim.b4-ir", OutputFormat::Stats),
    ];
    let (results, _stats) = run_supervised(&scanner, 2, &requests, &config).unwrap();

    match &results[0] {
        Err(CoreError::PlanRejected(msg)) => {
            assert!(msg.contains("past-interval-unservable"), "{msg}");
        }
        other => panic!("expected PlanRejected, got {other:?}"),
    }
    // The live sibling was unaffected by the rejection.
    let live = results[1].as_ref().unwrap();
    assert_eq!(live.report.as_ref().unwrap().points_delivered, 2 * 16 * 8);
}

/// Satellite (c): the splice seam under a degraded live downlink.
/// Duplicated elements and dropped rows right after the watermark must
/// not produce duplicate frame ids downstream of repair, and the
/// repair stats must stay honest (completeness < 1 reflects the real
/// damage; the archived prefix stays complete).
#[test]
fn splice_seam_survives_chaos_duplicates_and_drops() {
    let scanner = goes_like(64, 32, 11);
    let dir = tmp_dir("seam");
    let (archive, band) = seed_archive(&dir, &scanner, B4, 2);

    let replay = archive.replay(band, Some(0), Some(2), None).unwrap();
    let watermark = archive.watermark(band).map(|(s, _)| s);
    assert_eq!(watermark, Some(1));
    let plan = FaultPlan::seeded(9).with_duplicates(0.25).with_dropped_rows(0.30);
    let live = ChaosStream::new(scanner.band_stream_from(B4, 2, 2), plan, 0);
    let splice = SpliceStream::new(replay, Box::new(live), watermark, None);
    let probe = Arc::new(RepairProbe::default());
    let mut repaired = StreamRepair::with_probe(splice, Arc::clone(&probe));

    let mut frame_ids = Vec::new();
    while let Some(el) = repaired.next_element() {
        if let Element::FrameStart(info) = el {
            frame_ids.push(info.frame_id);
        }
    }
    // No duplicate frame ids past the repair stage, despite injected
    // duplicates at and after the seam.
    let mut unique = frame_ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), frame_ids.len(), "duplicate frames leaked: {frame_ids:?}");
    // The archived prefix (sectors 0-1 = frames 0..16) is complete.
    for id in 0..16 {
        assert!(frame_ids.contains(&id), "archived frame {id} missing");
    }
    // All ids belong to the 4-sector run.
    assert!(frame_ids.iter().all(|&id| id < 32), "{frame_ids:?}");
    // Honest accounting: the chaos showed up in the stats instead of
    // being papered over.
    let stats = probe.stats();
    assert!(
        stats.duplicate_frames + stats.duplicate_points > 0,
        "injected duplicates must be counted: {stats:?}"
    );
    let completeness = stats.completeness();
    assert!(completeness < 1.0, "30% dropped live rows must show: {stats:?}");
    assert!(completeness > 0.5, "archive half is intact: {stats:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The server surface: an attached archive answers `GET /archive`
/// with its stats as JSON, `/metrics` carries the
/// `geostreams_store_*` series, and `explain` reports that a
/// past-starting query will be served by archive replay.
#[test]
fn archive_endpoint_and_explain_see_the_attachment() {
    use geostreams::dsms::Dsms;

    let scanner = goes_like(64, 32, 11);
    let dir = tmp_dir("http");
    let (archive, _band) = seed_archive(&dir, &scanner, B4, 3);

    let server = Dsms::over_scanner(&scanner, 2);
    let before = server.handle_http("GET /archive HTTP/1.1");
    assert!(String::from_utf8_lossy(&before).starts_with("HTTP/1.1 404"));

    server.attach_archive(Arc::new(archive), 3);
    let resp = String::from_utf8_lossy(&server.handle_http("GET /archive HTTP/1.1")).into_owned();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("\"segments\""), "{resp}");
    assert!(resp.contains("\"frames\":24"), "{resp}");

    let metrics =
        String::from_utf8_lossy(&server.handle_http("GET /metrics HTTP/1.1")).into_owned();
    assert!(metrics.contains("geostreams_store_frames_persisted_total"), "{metrics}");

    // The analyzer sees the attached coverage: a wholly-past window is
    // admitted (replay-from-archive) instead of rejected.
    let exp = server
        .explain(&req("restrict_time(goes-sim.b4-ir, interval(0, 3))", OutputFormat::Stats))
        .unwrap();
    let report = format!("{exp:?}");
    assert!(report.contains("replay-from-archive"), "{report}");

    let _ = std::fs::remove_dir_all(&dir);
}
