//! Static plan analysis end-to-end: per-variant blocking classes and
//! buffer bounds, the reproject-without-metadata rejection, the
//! optimizer's never-worsen property, DSMS admission control against a
//! memory budget, and the EXPLAIN surface (protocol + HTTP).

use geostreams::core::model::{StreamSchema, VecStream};
use geostreams::core::ops::BlockingClass;
use geostreams::core::query::{analyze, optimize, parse_query, Catalog, PlanReport, Severity};
use geostreams::core::CoreError;
use geostreams::dsms::{Dsms, OutputFormat, DEFAULT_MEMORY_BUDGET_BYTES};
use geostreams::geo::{Crs, LatticeGeoref, Rect};
use geostreams::satsim::goes_like;
use std::sync::Arc;

const W: u64 = 64;
const H: u64 = 64;
const PX: u64 = 4; // bytes per f32 point

/// A catalog with two 64x64 lat/lon scan-sector sources and one source
/// registered without sector metadata.
fn catalog() -> Catalog {
    let lattice =
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 64, 64);
    let mut cat = Catalog::new();
    for name in ["g1", "g2"] {
        let mut schema = StreamSchema::new(name, Crs::LatLon);
        schema.sector_lattice = Some(lattice);
        let name = name.to_string();
        cat.register(schema, move || {
            Box::new(VecStream::<f32>::single_sector(&name, lattice, 0, |_, _| 0.0))
        });
    }
    cat.register(StreamSchema::new("nolat", Crs::LatLon), move || {
        Box::new(VecStream::<f32>::single_sector("nolat", lattice, 0, |_, _| 0.0))
    });
    cat
}

fn report(q: &str) -> PlanReport {
    analyze(&parse_query(q).unwrap(), &catalog())
}

/// The analysis entry for the plan root (last recorded operator).
fn root_op(r: &PlanReport) -> &geostreams::core::query::OpAnalysis {
    r.per_op.last().unwrap()
}

#[test]
fn every_variant_gets_a_blocking_class_and_bound() {
    // (query, root operator name, expected class, expected root bytes)
    let row = W * PX;
    let image = W * H * PX;
    let cases: &[(&str, &str, BlockingClass, u64)] = &[
        ("g1", "source", BlockingClass::NonBlocking, 0),
        (
            "restrict_space(g1, bbox(-123, 37, -122, 38), \"latlon\")",
            "restrict_space",
            BlockingClass::NonBlocking,
            0,
        ),
        ("restrict_time(g1, interval(0, 5))", "restrict_time", BlockingClass::NonBlocking, 0),
        ("restrict_value(g1, 0, 1)", "restrict_value", BlockingClass::NonBlocking, 0),
        ("scale(g1, 2, 1)", "map_value", BlockingClass::NonBlocking, 0),
        ("stretch(g1, \"linear\", \"frame\")", "stretch", BlockingClass::BoundedRows(1), row),
        ("stretch(g1, \"linear\", \"image\")", "stretch", BlockingClass::BoundedFrame, image),
        ("focal(g1, \"mean\", 5)", "focal", BlockingClass::BoundedRows(5), 5 * row),
        ("orient(g1, \"rot90\")", "orient", BlockingClass::NonBlocking, 0),
        ("magnify(g1, 2)", "magnify", BlockingClass::NonBlocking, 0),
        ("downsample(g1, 4)", "downsample", BlockingClass::BoundedRows(4), (W / 4) * 24),
        // Bilinear support 1 + 2 safety rows each side, plus the center.
        ("reproject(g1, \"utm:10N\")", "reproject", BlockingClass::BoundedRows(7), 7 * row),
        ("add(g1, g2)", "compose", BlockingClass::BoundedRows(1), 2 * row),
        ("ndvi(g1, g2)", "ndvi", BlockingClass::BoundedRows(1), 2 * row),
        ("shed(g1, \"points\", 2)", "shed", BlockingClass::NonBlocking, 0),
        ("delay(g1, 2)", "delay", BlockingClass::BoundedFrame, 3 * image),
        ("agg_time(g1, \"mean\", 4)", "agg_time", BlockingClass::BoundedFrame, 4 * W * H * 8),
        (
            "agg_space(g1, \"mean\", bbox(-124, 36, -120, 40))",
            "agg_space",
            BlockingClass::NonBlocking,
            0,
        ),
    ];
    for (q, op, class, bytes) in cases {
        let r = report(q);
        let root = root_op(&r);
        assert_eq!(&root.operator, op, "{q}");
        assert_eq!(root.blocking, *class, "{q}");
        assert_eq!(root.buffer_bytes, *bytes, "{q}");
        assert!(r.peak_buffer_bytes.is_some(), "{q}");
        assert!(!r.has_errors(), "{q}: {:?}", r.diagnostics);
    }
}

#[test]
fn reproject_without_scan_sector_metadata_is_rejected() {
    let r = report("reproject(nolat, \"utm:10N\")");
    assert_eq!(r.blocking, BlockingClass::Unbounded);
    assert_eq!(r.peak_buffer_bytes, None);
    let diag = r
        .diagnostics
        .iter()
        .find(|d| d.code == "reproject-unbounded")
        .expect("flagship diagnostic");
    assert_eq!(diag.severity, Severity::Error);
    assert_eq!(diag.section, "§3.2");
    assert!(diag.path.contains("reproject"), "{}", diag.path);
    // The identical plan over a scan-sector source is statically bounded.
    let ok = report("reproject(g1, \"utm:10N\")");
    assert_eq!(ok.blocking, BlockingClass::BoundedRows(7));
    assert!(!ok.has_errors());
}

#[test]
fn nested_reprojection_stays_bounded_over_metadata_sources() {
    // The analyzer derives the output lattice of a re-projection, so a
    // second re-projection above it is still bounded.
    let r = report("reproject(reproject(g1, \"utm:10N\"), \"latlon\")");
    assert!(r.blocking < BlockingClass::Unbounded, "{:?}", r.blocking);
    assert!(!r.has_errors(), "{:?}", r.diagnostics);
}

#[test]
fn compose_checks_crs_and_time_semantics() {
    let cat = catalog();
    // CRS mismatch is an error: one side re-projected, the other not.
    let e = parse_query("add(reproject(g1, \"utm:10N\"), g2)").unwrap();
    let r = analyze(&e, &cat);
    assert!(r
        .diagnostics
        .iter()
        .any(|d| d.code == "compose-crs-mismatch" && d.severity == Severity::Error));

    // Measurement-time semantics warns (§3.3: timestamps never match).
    let lattice =
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 36.0, -120.0, 40.0), 64, 64);
    let mut cat2 = catalog();
    let mut schema = StreamSchema::new("mt", Crs::LatLon);
    schema.sector_lattice = Some(lattice);
    schema.time_semantics = geostreams::core::model::TimeSemantics::MeasurementTime;
    cat2.register(schema, move || {
        Box::new(VecStream::<f32>::single_sector("mt", lattice, 0, |_, _| 0.0))
    });
    let e = parse_query("add(mt, g1)").unwrap();
    let r = analyze(&e, &cat2);
    assert!(r
        .diagnostics
        .iter()
        .any(|d| d.code == "compose-measurement-time" && d.severity == Severity::Warn));
}

#[test]
fn optimizer_never_worsens_blocking_class() {
    let cat = catalog();
    let queries = [
        "restrict_space(reproject(ndvi(g1, g2), \"utm:10N\"), \
         bbox(430000, 4200000, 480000, 4250000), \"utm:10N\")",
        "restrict_value(stretch(add(g1, g2), \"linear\", \"image\"), 0, 1)",
        "scale(scale(delay(g1, 1), 2, 0), 3, 1)",
        "restrict_time(agg_time(focal(g1, \"mean\", 3), \"max\", 2), interval(0, 4))",
        "magnify(downsample(reproject(g1, \"utm:10N\"), 2), 2)",
    ];
    for q in queries {
        let e = parse_query(q).unwrap();
        let before = analyze(&e, &cat).blocking;
        let after = analyze(&optimize(&e, &cat), &cat).blocking;
        assert!(after <= before, "{q}: {before:?} -> {after:?}");
    }
}

#[test]
fn restriction_pushdown_shrinks_the_static_bound() {
    let cat = catalog();
    let q = "restrict_space(focal(g1, \"mean\", 3), bbox(-124, 38, -123, 39), \"latlon\")";
    let e = parse_query(q).unwrap();
    let base = analyze(&e, &cat).peak_buffer_bytes.unwrap();
    let opt = analyze(&optimize(&e, &cat), &cat).peak_buffer_bytes.unwrap();
    assert!(opt < base, "pushdown should shrink the bound: {opt} vs {base}");
}

#[test]
fn dsms_refuses_over_budget_plans_and_admits_within_budget() {
    let server = Dsms::over_scanner(&goes_like(32, 16, 7), 1);
    assert_eq!(server.memory_budget(), DEFAULT_MEMORY_BUDGET_BYTES);
    let q = "stretch(goes-sim.b1-vis, \"linear\", \"image\")";

    // 32x16 f32 image = 2048 bytes > 1000-byte budget: refused, with the
    // diagnostic text carried in the typed error.
    server.set_memory_budget(1000);
    let err = server.register_text(q, OutputFormat::Stats, 1);
    match err {
        Err(CoreError::PlanRejected(msg)) => {
            assert!(msg.contains("budget"), "{msg}");
        }
        other => panic!("expected PlanRejected, got {other:?}"),
    }
    assert_eq!(server.metrics.queries_rejected.get(), 1);

    // Restored budget: the same query is admitted and runs.
    server.set_memory_budget(DEFAULT_MEMORY_BUDGET_BYTES);
    let h = server.register_text(q, OutputFormat::Stats, 1).unwrap();
    assert!(h.plan.peak_buffer_bytes.unwrap() >= 32 * 16 * 4);
    let result = server.run_query(&h).unwrap();
    assert!(result.points > 0);
}

#[test]
fn dsms_rejects_unbounded_reprojection_at_registration() {
    let server = Dsms::over_catalog(catalog());
    let err = server.register_text("reproject(nolat, \"utm:10N\")", OutputFormat::Stats, 0);
    match err {
        Err(CoreError::PlanRejected(msg)) => {
            assert!(msg.contains("reproject-unbounded"), "{msg}");
            assert!(msg.contains("§3.2"), "{msg}");
        }
        other => panic!("expected PlanRejected, got {other:?}"),
    }
    // The same shape over a metadata-carrying source registers fine.
    server.register_text("reproject(g1, \"utm:10N\")", OutputFormat::Stats, 0).unwrap();
}

#[test]
fn explain_reports_without_executing() {
    let server = Dsms::over_catalog(catalog());
    let req = geostreams::dsms::ClientRequest {
        query: "reproject(nolat, \"utm:10N\")".into(),
        format: OutputFormat::Stats,
        sectors: 0,
    };
    let ex = server.explain(&req).unwrap();
    assert!(!ex.admitted);
    assert!(ex.report.has_errors());
    assert_eq!(ex.budget_bytes, DEFAULT_MEMORY_BUDGET_BYTES);

    let req_ok = geostreams::dsms::ClientRequest {
        query: "focal(g1, \"mean\", 3)".into(),
        format: OutputFormat::Stats,
        sectors: 0,
    };
    let ex = server.explain(&req_ok).unwrap();
    assert!(ex.admitted);
    // The optimized text round-trips through the parser.
    parse_query(&ex.optimized).unwrap();
    // Nothing ran: no query was registered, no frames delivered.
    assert!(server.registered().is_empty());
    assert_eq!(server.frames_delivered(), 0);
}

#[test]
fn explain_http_endpoint_returns_json() {
    let server = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 7), 1));
    let resp = server
        .handle_http("GET /explain?q=stretch(goes-sim.b1-vis,+%22linear%22)&format=stats HTTP/1.1");
    let text = String::from_utf8_lossy(&resp).to_string();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.contains("application/json"), "{text}");
    let body_start = text.find("\r\n\r\n").unwrap() + 4;
    let body: serde_json::Value = serde_json::from_str(&text[body_start..]).unwrap();
    assert_eq!(body.get("admitted"), Some(&serde_json::Value::Bool(true)));
    let peak = body
        .get("report")
        .and_then(|r| r.get("peak_buffer_bytes"))
        .expect("report.peak_buffer_bytes present");
    assert!(matches!(peak, serde_json::Value::U64(_) | serde_json::Value::I64(_)), "{peak:?}");

    // A malformed query is a 400, not a crash.
    let resp = server.handle_http("GET /explain?q=magnify(goes-sim.b1-vis) HTTP/1.1");
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 400"));
}

#[test]
fn overrun_counter_stays_zero_when_bounds_hold() {
    // Run a frame-buffering query and check observed peaks against the
    // static bound: the conservative sum must cover the runtime max.
    let server = Dsms::over_scanner(&goes_like(32, 16, 7), 2);
    let h = server
        .register_text("stretch(goes-sim.b1-vis, \"linear\", \"image\")", OutputFormat::Stats, 2)
        .unwrap();
    let result = server.run_query(&h).unwrap();
    let observed = result.report.unwrap().peak_buffered_bytes();
    assert!(observed > 0, "stretch must buffer");
    assert!(
        !h.plan.buffer_overrun(observed),
        "static bound {:?} must cover observed {observed}",
        h.plan.peak_buffer_bytes
    );
    assert_eq!(server.metrics.plan_buffer_overruns.get(), 0);
    // The counter is exposed on /metrics.
    let text = server.metrics.render_prometheus();
    assert!(text.contains("geostreams_plan_buffer_overrun_total 0"), "{text}");
}

#[test]
fn buffer_overrun_flags_excess_only_for_bounded_plans() {
    let bounded = report("delay(g1, 1)");
    let bound = bounded.peak_buffer_bytes.unwrap();
    assert!(!bounded.buffer_overrun(bound));
    assert!(bounded.buffer_overrun(bound + 1));
    let unbounded = report("reproject(nolat, \"utm:10N\")");
    assert!(!unbounded.buffer_overrun(u64::MAX));
}

#[test]
fn every_admissible_plan_carries_a_protocol_certificate() {
    // ISSUE 7: admission is gated on a composed ProtocolCertificate.
    // Every variant exercised by this suite must certify, with one
    // stage recorded per operator on the path.
    let queries = [
        "g1",
        "restrict_space(g1, bbox(-123, 37, -122, 38), \"latlon\")",
        "stretch(g1, \"linear\")",
        "stretch(g1, \"linear\", \"image\")",
        "focal(g1, \"mean\", 3)",
        "delay(g1, 1)",
        "compose(g1, \"+\", g2)",
        "agg_time(g1, \"mean\", 2)",
    ];
    for q in queries {
        let r = report(q);
        assert!(!r.has_errors(), "{q} unexpectedly has errors");
        assert!(r.certificate.certified, "{q} must certify: {:?}", r.certificate.violations);
        assert!(r.certificate.violations.is_empty(), "{q}: {:?}", r.certificate.violations);
        assert!(
            r.certificate.stages.len() >= r.per_op.len(),
            "{q}: every operator contributes a certificate stage"
        );
    }
    // Registration against a live DSMS attaches the same certificate
    // to the handle the runtime keeps.
    let server = Dsms::over_catalog(catalog());
    let h = server.register_text("stretch(g1, \"linear\")", OutputFormat::Stats, 1).unwrap();
    assert!(h.plan.certificate.certified);
}

#[test]
fn explain_exposes_the_protocol_certificate() {
    let server = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 7), 1));
    let resp = server
        .handle_http("GET /explain?q=stretch(goes-sim.b1-vis,+%22linear%22)&format=stats HTTP/1.1");
    let text = String::from_utf8_lossy(&resp).to_string();
    let body_start = text.find("\r\n\r\n").unwrap() + 4;
    let body: serde_json::Value = serde_json::from_str(&text[body_start..]).unwrap();
    let cert = body
        .get("report")
        .and_then(|r| r.get("certificate"))
        .expect("report.certificate present in /explain JSON");
    assert_eq!(cert.get("certified"), Some(&serde_json::Value::Bool(true)), "{cert:?}");
    match cert.get("stages").expect("certificate.stages") {
        serde_json::Value::Array(stages) => {
            assert!(stages.len() >= 2, "source + stretch at minimum: {stages:?}");
        }
        other => panic!("certificate.stages should be an array: {other:?}"),
    }
}
