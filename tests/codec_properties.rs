//! Property tests of the delivery codec stack: zlib and PNG must
//! round-trip arbitrary data, and the trace serializer must replay
//! streams byte-identically.

mod common;

use common::Rng;
use geostreams::raster::png::{self, zlib, Filter, PngOptions, Strategy};
use geostreams::raster::{Grid2D, Rgb8};
use geostreams::satsim::goes_like;
use geostreams::satsim::trace::Trace;

#[test]
fn zlib_round_trips_arbitrary_bytes() {
    for case in 0..64u64 {
        let mut rng = Rng::new(case);
        let len = rng.index(4096);
        let data = rng.bytes(len);
        for strategy in [Strategy::Stored, Strategy::FixedHuffman] {
            let z = zlib::compress(&data, strategy);
            assert_eq!(zlib::inflate(&z).unwrap(), data, "case {case}");
        }
    }
}

#[test]
fn zlib_round_trips_repetitive_bytes() {
    for case in 0..64u64 {
        let mut rng = Rng::new(1000 + case);
        let len = rng.int(1, 32) as usize;
        let pattern = rng.bytes(len);
        let reps = rng.int(1, 256) as usize;
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * reps).copied().collect();
        let z = zlib::compress(&data, Strategy::FixedHuffman);
        assert_eq!(zlib::inflate(&z).unwrap(), data, "case {case}");
    }
}

#[test]
fn png_gray_round_trips() {
    for case in 0..64u64 {
        let mut rng = Rng::new(2000 + case);
        let w = rng.int(1, 48) as u32;
        let h = rng.int(1, 48) as u32;
        let mut s = rng.next_u64();
        let grid = Grid2D::from_fn(w, h, |c, r| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(u64::from(c * 31 + r));
            (s >> 56) as u8
        });
        let opts = PngOptions {
            filter: if rng.chance() { Filter::Sub } else { Filter::None },
            strategy: if rng.chance() { Strategy::FixedHuffman } else { Strategy::Stored },
        };
        let bytes = png::encode_gray(&grid, opts);
        match png::decode(&bytes).unwrap() {
            png::Decoded::Gray(g) => assert_eq!(g, grid, "case {case}"),
            _ => panic!("case {case}: wrong color type"),
        }
    }
}

#[test]
fn png_rgb_round_trips() {
    for case in 0..64u64 {
        let mut rng = Rng::new(3000 + case);
        let w = rng.int(1, 32) as u32;
        let h = rng.int(1, 32) as u32;
        let mut s = rng.next_u64();
        let grid = Grid2D::from_fn(w, h, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Rgb8::new((s >> 40) as u8, (s >> 48) as u8, (s >> 56) as u8)
        });
        let bytes = png::encode_rgb(&grid, PngOptions::default());
        match png::decode(&bytes).unwrap() {
            png::Decoded::Rgb(g) => assert_eq!(g, grid, "case {case}"),
            _ => panic!("case {case}: wrong color type"),
        }
    }
}

#[test]
fn trace_replay_is_byte_identical_for_goes_streams() {
    let scanner = goes_like(24, 12, 77);
    for band in 0..scanner.instrument.bands.len() {
        let mut live = scanner.band_stream(band, 2);
        let trace = Trace::record(&mut live);
        let json = trace.to_json();
        let restored = Trace::from_json(&json).unwrap();
        assert_eq!(restored, trace, "band {band}");
    }
}
