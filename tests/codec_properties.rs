//! Property-based tests of the delivery codec stack: zlib and PNG must
//! round-trip arbitrary data, and the trace serializer must replay
//! streams byte-identically.

use geostreams::raster::png::{self, zlib, Filter, PngOptions, Strategy};
use geostreams::raster::{Grid2D, Rgb8};
use geostreams::satsim::trace::Trace;
use geostreams::satsim::goes_like;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zlib_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for strategy in [Strategy::Stored, Strategy::FixedHuffman] {
            let z = zlib::compress(&data, strategy);
            prop_assert_eq!(&zlib::inflate(&z).unwrap(), &data);
        }
    }

    #[test]
    fn zlib_round_trips_repetitive_bytes(
        pattern in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..256,
    ) {
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * reps).copied().collect();
        let z = zlib::compress(&data, Strategy::FixedHuffman);
        prop_assert_eq!(&zlib::inflate(&z).unwrap(), &data);
    }

    #[test]
    fn png_gray_round_trips(
        w in 1u32..48, h in 1u32..48,
        seed in any::<u64>(),
        filter_sub in any::<bool>(),
        huffman in any::<bool>(),
    ) {
        let mut s = seed;
        let grid = Grid2D::from_fn(w, h, |c, r| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(u64::from(c * 31 + r));
            (s >> 56) as u8
        });
        let opts = PngOptions {
            filter: if filter_sub { Filter::Sub } else { Filter::None },
            strategy: if huffman { Strategy::FixedHuffman } else { Strategy::Stored },
        };
        let bytes = png::encode_gray(&grid, opts);
        match png::decode(&bytes).unwrap() {
            png::Decoded::Gray(g) => prop_assert_eq!(g, grid),
            _ => prop_assert!(false, "wrong color type"),
        }
    }

    #[test]
    fn png_rgb_round_trips(w in 1u32..32, h in 1u32..32, seed in any::<u64>()) {
        let mut s = seed;
        let grid = Grid2D::from_fn(w, h, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Rgb8::new((s >> 40) as u8, (s >> 48) as u8, (s >> 56) as u8)
        });
        let bytes = png::encode_rgb(&grid, PngOptions::default());
        match png::decode(&bytes).unwrap() {
            png::Decoded::Rgb(g) => prop_assert_eq!(g, grid),
            _ => prop_assert!(false, "wrong color type"),
        }
    }
}

#[test]
fn trace_replay_is_byte_identical_for_goes_streams() {
    let scanner = goes_like(24, 12, 77);
    for band in 0..scanner.instrument.bands.len() {
        let mut live = scanner.band_stream(band, 2);
        let trace = Trace::record(&mut live);
        let json = trace.to_json();
        let restored = Trace::from_json(&json).unwrap();
        assert_eq!(restored, trace, "band {band}");
    }
}
