//! Direct tests of the paper's evaluation claims, one per claim.
//! EXPERIMENTS.md reports the quantitative versions; these tests pin the
//! qualitative *shape* so regressions fail CI.

use geostreams::core::exec::run_to_end;
use geostreams::core::model::{
    drain_points_of, split2, Element, GeoStream, StreamSchema, TimeSemantics, Timestamp, VecStream,
};
use geostreams::core::ops::{
    AggFunc, Compose, Downsample, GammaOp, JoinStrategy, Magnify, Reproject, ReprojectConfig,
    SpatialRestrict, StretchMode, StretchScope, StretchTransform, TemporalAggregate,
};
use geostreams::core::stats::OpReport;
use geostreams::geo::{Crs, LatticeGeoref, Rect, Region};
use geostreams::satsim::goes_like;

fn lattice(w: u32, h: u32) -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 16.0, 16.0), w, h)
}

fn ramp(w: u32, h: u32, sectors: u64) -> VecStream<f32> {
    VecStream::sectors("ramp", lattice(w, h), sectors, |s, c, r| {
        f64::from(c) + f64::from(r) + s as f64
    })
    .with_value_range(0.0, 300.0)
}

fn peak_of<S: GeoStream>(mut op: S) -> (u64, u64) {
    let report = run_to_end(&mut op);
    let mut ops: Vec<OpReport> = Vec::new();
    op.collect_stats(&mut ops);
    let peak = ops.iter().map(|o| o.stats.buffered_points_peak).max().unwrap_or(0);
    (peak, report.points_delivered)
}

/// §3.1: "all restriction operators are non-blocking and have constant
/// cost per point, independent of the size of the input stream" — zero
/// buffering at any stream size.
#[test]
fn claim_restrictions_never_buffer() {
    for (w, h) in [(16u32, 16u32), (64, 64), (128, 128)] {
        let region = Region::Rect(Rect::new(2.0, 2.0, 9.0, 9.0));
        let (peak, out) = peak_of(SpatialRestrict::new(ramp(w, h, 2), region));
        assert_eq!(peak, 0, "{w}x{h}");
        assert!(out > 0);
    }
}

/// §3.2: "the cost of a stretch transform operator is determined by the
/// size of the largest frame" — image-scoped stretch buffers exactly the
/// image; the buffer grows linearly with frame area.
#[test]
fn claim_stretch_buffers_the_image() {
    let mut peaks = Vec::new();
    for n in [16u32, 32, 64] {
        let op = StretchTransform::new(
            ramp(n, n, 1),
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Image,
        );
        let (peak, _) = peak_of(op);
        assert_eq!(peak, u64::from(n) * u64::from(n), "image buffer is the whole image");
        peaks.push(peak);
    }
    assert_eq!(peaks[1], peaks[0] * 4);
    assert_eq!(peaks[2], peaks[0] * 16);
}

/// §3.2: magnification needs no neighbors; downsampling buffers rows,
/// never the frame.
#[test]
fn claim_resolution_change_buffering() {
    let (peak_mag, out_mag) = peak_of(Magnify::new(ramp(32, 32, 1), 3));
    assert_eq!(peak_mag, 0);
    assert_eq!(out_mag, 32 * 32 * 9);

    let (peak_short, _) = peak_of(Downsample::new(ramp(64, 16, 1), 4));
    let (peak_tall, _) = peak_of(Downsample::new(ramp(64, 128, 1), 4));
    assert_eq!(peak_short, peak_tall, "downsample buffer independent of frame height");
    assert!(peak_tall < 64 * 16, "far below even the short frame");
}

/// §3.2: re-projection with sector metadata buffers a narrow band;
/// without it, the whole sector ("could potentially block forever").
#[test]
fn claim_reprojection_metadata_bounds_buffering() {
    let scanner = goes_like(96, 48, 4);
    let streaming = {
        let op =
            Reproject::new(scanner.band_stream(0, 1), ReprojectConfig::new(Crs::LatLon)).unwrap();
        peak_of(op).0
    };
    let blocking = {
        let op =
            Reproject::new(scanner.band_stream(0, 1), ReprojectConfig::new(Crs::LatLon).blocking())
                .unwrap();
        peak_of(op).0
    };
    assert_eq!(blocking, 96 * 48, "blocking variant holds the whole sector");
    assert!(
        streaming * 2 < blocking,
        "metadata-assisted ({streaming}) well below blocking ({blocking})"
    );
}

/// §3.3: composition buffering is ~one image for image-by-image
/// transmission vs ~one row for row-by-row.
#[test]
fn claim_composition_buffer_depends_on_organization() {
    let w = 48u32;
    let h = 48u32;
    let image = u64::from(w) * u64::from(h);
    let schema = StreamSchema::new("x", Crs::LatLon);

    let elements = |seed: u64| {
        let mut s = VecStream::<f32>::single_sector("x", lattice(w, h), 0, move |c, r| {
            f64::from(c * r) + seed as f64
        });
        s.drain_elements()
    };

    // Band-sequential (image-by-image downlink).
    let a = elements(1);
    let b = elements(2);
    let transport: Vec<(u8, Element<f32>)> =
        a.into_iter().map(|e| (0u8, e)).chain(b.into_iter().map(|e| (1u8, e))).collect();
    let (s0, s1) = split2(transport.into_iter(), schema.renamed("a"), schema.renamed("b"));
    let op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).unwrap();
    let (peak_image, out) = peak_of(op);
    assert_eq!(out, image);
    assert!(peak_image >= image - w as u64, "≈ whole image: {peak_image}");

    // Line-interleaved (row-by-row downlink).
    let a = elements(1);
    let b = elements(2);
    let mut transport = Vec::new();
    let rows = |els: Vec<Element<f32>>| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::FrameEnd(_));
            out.last_mut().unwrap().push(el);
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    for (x, y) in rows(a).into_iter().zip(rows(b)) {
        transport.extend(x.into_iter().map(|e| (0u8, e)));
        transport.extend(y.into_iter().map(|e| (1u8, e)));
    }
    let (s0, s1) = split2(transport.into_iter(), schema.renamed("a"), schema.renamed("b"));
    let op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).unwrap();
    let (peak_row, out) = peak_of(op);
    assert_eq!(out, image);
    assert!(peak_row <= 2 * u64::from(w), "row-by-row composition buffers ~a row: {peak_row}");
    assert!(peak_row * 8 < peak_image, "row ≪ image");
}

/// §3.3: "If incoming points are timestamped based on when the points
/// were measured, a stream composition operator would never produce new
/// image data."
#[test]
fn claim_measurement_timestamps_never_join() {
    let mk = |offset: i64| {
        let mut schema = StreamSchema::new("m", Crs::LatLon);
        schema.time_semantics = TimeSemantics::MeasurementTime;
        let els: Vec<Element<f32>> = {
            let mut s = VecStream::<f32>::single_sector("m", lattice(8, 8), 0, |c, _| f64::from(c));
            s.drain_elements()
                .into_iter()
                .map(|el| match el {
                    Element::FrameStart(mut fi) => {
                        fi.timestamp = Timestamp::new(fi.frame_id as i64 * 2 + offset);
                        Element::FrameStart(fi)
                    }
                    other => other,
                })
                .collect()
        };
        VecStream::new(schema, els)
    };
    let mut op = Compose::new(mk(0), mk(1), GammaOp::Add, JoinStrategy::Hash).unwrap();
    assert!(drain_points_of(&mut op).is_empty());
    // Sector-id stamping (the practical fix the paper describes) joins.
    let mut op = Compose::new(
        VecStream::<f32>::single_sector("a", lattice(8, 8), 0, |c, _| f64::from(c)),
        VecStream::<f32>::single_sector("b", lattice(8, 8), 0, |c, _| f64::from(c)),
        GammaOp::Add,
        JoinStrategy::Hash,
    )
    .unwrap();
    assert_eq!(drain_points_of(&mut op).len(), 64);
}

/// §6/[27]: the temporal aggregate's buffer is exactly W images.
#[test]
fn claim_temporal_aggregate_buffer_is_window() {
    for window in [2usize, 4, 8] {
        let op = TemporalAggregate::new(ramp(16, 16, 12), AggFunc::Mean, window);
        let (peak, _) = peak_of(op);
        assert_eq!(peak, (window as u64) * 256);
    }
}

/// The closure property (§3): any operator output feeds any operator.
#[test]
fn claim_algebra_is_closed() {
    // A deliberately deep chain mixing all operator classes.
    let s = ramp(32, 32, 2);
    let s = SpatialRestrict::new(s, Region::Rect(Rect::new(1.0, 1.0, 15.0, 15.0)));
    let s = Magnify::new(s, 2);
    let s = Downsample::new(s, 2);
    let s = StretchTransform::new(
        s,
        StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
        StretchScope::Image,
    );
    let t = ramp(32, 32, 2);
    let t = SpatialRestrict::new(t, Region::Rect(Rect::new(1.0, 1.0, 15.0, 15.0)));
    let t = Magnify::new(t, 2);
    let t = Downsample::new(t, 2);
    let t = StretchTransform::new(
        t,
        StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
        StretchScope::Image,
    );
    let mut s = Compose::new(s, t, GammaOp::Sub, JoinStrategy::Hash).unwrap();
    let pts = drain_points_of(&mut s);
    assert!(!pts.is_empty());
    // Identical inputs: every difference is exactly zero.
    assert!(pts.iter().all(|p| p.value == 0.0));
}
