//! DSMS-level integration: continuous shared ingest, the TCP front end,
//! JSON stats delivery, and plan explanation — the full §4 surface.

use geostreams::dsms::protocol::ClientRequest;
use geostreams::dsms::{run_continuous, Dsms, HttpServer, OutputFormat};
use geostreams::satsim::{goes_like, modis_like};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

#[test]
fn continuous_mode_matches_per_query_mode() {
    // The same query must produce the same point count whether each
    // query pulls its own source or shares the ingest.
    let scanner = goes_like(48, 24, 5);
    let q = "restrict_value(goes-sim.b4-ir, 0.3, 0.9)";

    let server = Dsms::over_scanner(&scanner, 2);
    let h = server.register_text(q, OutputFormat::Stats, 2).unwrap();
    let solo = server.run_query(&h).unwrap().report.unwrap().points_delivered;

    let (results, _) = run_continuous(
        &scanner,
        2,
        &[ClientRequest { query: q.into(), format: OutputFormat::Stats, sectors: 0 }],
    )
    .unwrap();
    let shared = results[0].as_ref().unwrap().report.as_ref().unwrap().points_delivered;
    assert_eq!(solo, shared);
    assert!(solo > 0);
}

#[test]
fn json_format_returns_machine_readable_stats() {
    let server = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 9), 1));
    let resp = server.handle_http(
        "GET /query?q=focal(goes-sim.b4-ir,+%22mean%22,+3)&format=json&sectors=1 HTTP/1.1",
    );
    let text = String::from_utf8_lossy(&resp).to_string();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.contains("application/json"));
    let body_start = text.find("\r\n\r\n").unwrap() + 4;
    let summary: geostreams::core::exec::RunSummary =
        serde_json::from_str(&text[body_start..]).unwrap();
    assert_eq!(summary.points_delivered, 8 * 4);
    assert!(summary.per_op.iter().any(|o| o.name.contains("focal")));
    // The focal buffer shows up in the summary.
    assert!(summary.peak_buffered_points > 0);
}

#[test]
fn tcp_front_end_serves_json_and_png() {
    let dsms = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 3), 1));
    let http = HttpServer::spawn(dsms, "127.0.0.1:0").expect("bind");
    let addr = http.addr();
    let fetch = |target: &str| -> Vec<u8> {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        conn.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut buf = Vec::new();
        conn.read_to_end(&mut buf).expect("read");
        buf
    };
    let png = fetch("/query?q=goes-sim.b3-wv&format=png&sectors=1");
    assert!(String::from_utf8_lossy(&png[..16]).starts_with("HTTP/1.1 200"));
    let json = fetch("/query?q=goes-sim.b3-wv&format=json&sectors=1");
    assert!(String::from_utf8_lossy(&json).contains("application/json"));
    http.stop();
}

#[test]
fn explain_runs_against_the_live_catalog() {
    let server = Dsms::over_scanner(&goes_like(64, 32, 9), 1);
    let planner = geostreams::core::query::Planner::new(server.catalog());
    let h = server
        .register_text(
            "restrict_space(reproject(ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4)),
                 \"utm:14N\"), bbox(300000, 4000000, 700000, 4400000), \"utm:14N\")",
            OutputFormat::Stats,
            1,
        )
        .unwrap();
    let text = planner.explain(&h.optimized).unwrap();
    assert!(text.contains("reproject -> utm:14N"));
    assert!(text.contains("ndvi (fused macro)"));
    // The optimized plan pushed restrictions onto the sources.
    let inner_restricts =
        text.lines().filter(|l| l.contains("restrict_space") && l.contains("geos")).count();
    assert!(inner_restricts >= 2, "pushed to both bands:\n{text}");
}

#[test]
fn multiple_instruments_can_share_one_server() {
    let mut catalog = geostreams::core::query::Catalog::new();
    for scanner in [goes_like(32, 16, 1), modis_like(32, 16, -100.0, 45.0, 1)] {
        for band_idx in 0..scanner.instrument.bands.len() {
            use geostreams::core::model::GeoStream;
            let template = scanner.band_stream(band_idx, 1);
            let schema = template.schema().clone();
            let scanner = scanner.clone();
            catalog.register(schema, move || Box::new(scanner.band_stream(band_idx, 1)));
        }
    }
    let server = Dsms::over_catalog(catalog);
    assert!(server.catalog().names().iter().any(|n| n.starts_with("goes-sim")));
    assert!(server.catalog().names().iter().any(|n| n.starts_with("modis-sim")));
    // Cross-instrument composition is refused at registration: the
    // static analyzer flags the CRS mismatch before anything runs.
    let err = server.register_text("add(goes-sim.b1-vis, modis-sim.red)", OutputFormat::Stats, 1);
    match err {
        Err(geostreams::core::CoreError::PlanRejected(msg)) => {
            assert!(msg.contains("compose-crs-mismatch"), "{msg}");
        }
        other => panic!("geos vs sinusoidal composition must be rejected, got {other:?}"),
    }
    // Same-instrument queries run.
    let h = server.register_text("modis-sim.red", OutputFormat::PngGray, 1).unwrap();
    assert_eq!(server.run_query(&h).unwrap().frames.len(), 1);
}
