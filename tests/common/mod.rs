//! Shared deterministic PRNG for the property-test suites.
//!
//! The build environment has no crates.io access, so the former
//! proptest suites run as fixed-case loops over this SplitMix64
//! generator: same properties, reproducible inputs, zero dependencies.
#![allow(dead_code)]

pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234_5678))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// Uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `lo..hi`.
    pub fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    pub fn chance(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}
