//! # GeoStreams
//!
//! A from-scratch Rust implementation of *"A Data and Query Model for
//! Streaming Geospatial Image Data"* (Gertz, Hart, Rueda, Singhal,
//! Zhang — EDBT 2006): a streaming image algebra over remotely-sensed
//! raster data, with a query language, a rewriting optimizer, a
//! multi-query spatial index, a prototype stream-management server, and
//! a satellite-instrument simulator.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`geo`] — coordinate systems, projections, regions, lattices;
//! * [`raster`] — grids, pixels, statistics, resampling, PNG;
//! * [`satsim`] — the instrument simulator (GOES-like, airborne, LIDAR);
//! * [`core`] — the paper's data & query model: operators, query
//!   language, optimizer, executor, cascade tree;
//! * [`store`] — the tiled raster archive: persistence, replay, and
//!   hybrid replay+live splicing for continuous queries;
//! * [`dsms`] — the §4 prototype server.
//!
//! See `examples/quickstart.rs` for a guided tour and `EXPERIMENTS.md`
//! for the reproduction of the paper's evaluation claims.

#![warn(missing_docs)]

pub use geostreams_core as core;
pub use geostreams_dsms as dsms;
pub use geostreams_geo as geo;
pub use geostreams_raster as raster;
pub use geostreams_satsim as satsim;
pub use geostreams_store as store;
