#!/usr/bin/env bash
# Shared-plan multicast gate.
#
# Runs the sharing acceptance suite (tests/sharing.rs: identical
# queries collapse onto one pipeline, partial overlap shares the common
# prefix, unsubscribe tears down only unreferenced plans, per-tenant
# shed, chaos determinism, zero payload copies), then the swarm
# benchmark (`swarm_bench`) twice in digest mode and diffs the outputs
# — the digest carries per-subscriber delivery counts, the distinct
# evaluated-plan count, the payload-copy count, and the
# shared-vs-unshared equality bit, so any nondeterminism or result
# divergence in the subscription tree fails the gate. Finally enforces
# the ISSUE 9 acceptance bar: at 1000 identical subscribers the shared
# path is >= 5x cheaper per subscriber than the unshared oracle (one
# retry, since the box is a single shared vCPU).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline --test sharing

cargo build --release --offline -p geostreams-bench --bin swarm_bench
out_a=$(mktemp)
out_b=$(mktemp)
report=$(mktemp)
trap 'rm -f "$out_a" "$out_b" "$report"' EXIT
./target/release/swarm_bench --digest > "$out_a"
./target/release/swarm_bench --digest > "$out_b"
if ! diff -u "$out_a" "$out_b"; then
  echo "shared multicast is nondeterministic: same swarm produced different digests" >&2
  exit 1
fi
for field in '"distinct_plans":1' '"payload_copies":0' '"identical":true'; do
  if ! grep -q "$field" "$out_a"; then
    echo "swarm digest missing invariant ${field}: $(cat "$out_a")" >&2
    exit 1
  fi
done

check_collapse() {
  ./target/release/swarm_bench "$report" > /dev/null
  local permille
  permille=$(sed -n 's/.*"cost_collapse_permille":\([0-9]*\).*/\1/p' "$report")
  if [ -z "$permille" ] || [ "$permille" -lt 5000 ]; then
    echo "per-subscriber cost collapse below 5x: ${permille:-?} permille" >&2
    return 1
  fi
  if ! grep -q '"results_identical":true' "$report"; then
    echo "shared swarm results diverged from the unshared oracle" >&2
    return 1
  fi
  echo "swarm: shared path ${permille} permille of unshared per-subscriber cost"
}

if ! check_collapse; then
  echo "retrying collapse measurement once (shared-vCPU noise)..." >&2
  check_collapse
fi
echo "swarm gate OK: digests byte-identical, one evaluated plan, zero payload copies, >= 5x collapse"
