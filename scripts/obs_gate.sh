#!/usr/bin/env bash
# Observability gate: tracing acceptance, instrumentation-overhead bar,
# and metrics-exposition hygiene.
#
# Runs the tracing suite (tests/tracing.rs: span parentage complete and
# acyclic under chaos, e2e lag monotone in injected stalls, the
# /queries + /trace/<id> HTTP round-trip for a hybrid query with splice
# and backfill spans, watchdog cancellations freezing the flight
# recorder), then `obs_bench` twice in digest mode and diffs the
# outputs — the digest hashes every pixel delivered by the traced
# chunked path, so tracing-induced nondeterminism fails the gate. Then
# enforces the ISSUE 6 acceptance bar: the fully traced chunked hot
# path must retain >= 95% of untraced throughput (one retry, since the
# box is a single shared vCPU). Finally lints the Prometheus
# exposition: every geostreams_* family must carry HELP and TYPE lines.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline --test tracing

cargo build --release --offline -p geostreams-bench --bin obs_bench
out_a=$(mktemp)
out_b=$(mktemp)
report=$(mktemp)
expo=$(mktemp)
trap 'rm -f "$out_a" "$out_b" "$report" "$expo"' EXIT
./target/release/obs_bench --digest > "$out_a"
./target/release/obs_bench --digest > "$out_b"
if ! diff -u "$out_a" "$out_b"; then
  echo "traced execution is nondeterministic: same seed produced different digests" >&2
  exit 1
fi

check_overhead() {
  ./target/release/obs_bench "$report" > /dev/null
  local permille
  permille=$(sed -n 's/.*"traced_throughput_permille":\([0-9]*\).*/\1/p' "$report")
  if [ -z "$permille" ] || [ "$permille" -lt 950 ]; then
    echo "tracing overhead above 5%: traced path at ${permille:-?} permille of untraced" >&2
    return 1
  fi
  echo "tracing overhead OK: traced path at ${permille} permille of untraced throughput"
}

if ! check_overhead; then
  echo "retrying overhead measurement once (shared-vCPU noise)..." >&2
  check_overhead
fi

# Exposition hygiene: every sample series must belong to a family that
# declares both HELP and TYPE metadata.
./target/release/obs_bench --exposition > "$expo"
grep -q '^geostreams_e2e_lag_ns_count{query="0"}' "$expo" || {
  echo "exposition is missing the per-query freshness series" >&2
  exit 1
}
awk '
  /^# HELP / { help[$3] = 1; next }
  /^# TYPE / { type[$3] = 1; next }
  /^geostreams_/ {
    fam = $1
    sub(/\{.*/, "", fam)
    sub(/_bucket$/, "", fam)
    sub(/_sum$/, "", fam)
    sub(/_count$/, "", fam)
    if (!(fam in help)) { print "missing HELP for " fam; bad = 1 }
    if (!(fam in type)) { print "missing TYPE for " fam; bad = 1 }
  }
  END { exit bad }
' "$expo" || {
  echo "metrics exposition lint failed: geostreams_* family without HELP/TYPE" >&2
  exit 1
}
echo "obs gate OK: digests byte-identical, overhead bar met, exposition well-formed"
