#!/usr/bin/env bash
# Crash-recovery gate.
#
# Runs the seeded kill-point sweep (`crash_run`: ingest under a chaos
# VFS whose disk dies at byte N, reopen, verify the durability contract
# — see crates/bench/src/bin/crash_run.rs) twice and diffs the JSON
# transcripts. The binary itself asserts, at every kill point, that
# recovery restores all group-committed frames, loses at most one
# uncommitted group, replays to the clean run's prefix digest, never
# serves a corrupt tile, and is idempotent; the diff proves the whole
# crash/recover/replay path is deterministic. Also runs the
# crash-recovery acceptance tests (tests/crash_recovery.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline --test crash_recovery

cargo build --release --offline -p geostreams-bench --bin crash_run
out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT
./target/release/crash_run > "$out_a"
./target/release/crash_run > "$out_b"
if ! diff -u "$out_a" "$out_b"; then
  echo "crash recovery is nondeterministic: same seed produced different reports" >&2
  exit 1
fi
points=$(grep -c '"run":"kill"' "$out_a")
if [ "$points" -lt 10 ]; then
  echo "kill-point sweep too small: $points points" >&2
  exit 1
fi
echo "crash gate OK: $points kill points recovered deterministically"
