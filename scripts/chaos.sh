#!/usr/bin/env bash
# Chaos determinism gate.
#
# Runs the fixed-seed chaos suite (`chaos_run`: degraded downlink,
# supervised decoder crash, corrupted feed — see
# crates/bench/src/bin/chaos_run.rs) twice and diffs the digests. The
# digest covers injected-fault counts, repair/completeness stats, and
# an FNV hash over every delivered PNG byte, so any nondeterminism in
# fault injection, stream repair, supervision, or delivery fails the
# gate. Also runs the seeded chaos acceptance tests (tests/chaos.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline --test chaos

cargo build --release --offline -p geostreams-bench --bin chaos_run
out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT
./target/release/chaos_run > "$out_a"
./target/release/chaos_run > "$out_b"
if ! diff -u "$out_a" "$out_b"; then
  echo "chaos suite is nondeterministic: same seed produced different digests" >&2
  exit 1
fi
echo "chaos suite OK: $(wc -l < "$out_a") scenarios byte-identical across runs"
