#!/usr/bin/env bash
# geolint gate: the first-party static analyzer over its own workspace.
#
# Three checks, all offline (geolint is an in-workspace crate with no
# dependencies):
#
#   1. Self-run: the tree is clean under the committed allowlist
#      (exit 1 also covers allowlist drift — entries matching nothing).
#   2. Run-twice JSON diff: the report is byte-deterministic, so the
#      gate can never flake on ordering.
#   3. Engine suite: the rule fixtures and the self-lint test.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release --offline -p geostreams-lint

GEOLINT=target/release/geolint

echo "== geolint self-run (allowlist: geolint.allow) =="
"$GEOLINT" --root . --allow geolint.allow

echo "== geolint determinism (run-twice JSON diff) =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
"$GEOLINT" --root . --allow geolint.allow --json > "$tmpdir/run1.json"
"$GEOLINT" --root . --allow geolint.allow --json > "$tmpdir/run2.json"
diff -u "$tmpdir/run1.json" "$tmpdir/run2.json"
echo "byte-identical across runs"

echo "== geolint engine suite =="
cargo test -q --offline -p geostreams-lint

echo "lint gate OK"
