#!/usr/bin/env bash
# Morsel-driven parallel execution gate.
#
# Runs the parallel differential suite (crates/dsms/tests/parallel.rs:
# every partitionable operator and a stacked pipeline byte-identical
# across worker counts and budgets, under ChaosStream faults and with
# share_plans on), then the parallel benchmark (`par_bench`) twice in
# digest mode and diffs the outputs — the digest hashes every pixel
# delivered by the serial oracle and every worker count, so any
# divergence or merge nondeterminism fails the gate. Finally enforces
# the ISSUE 10 acceptance bar: >= 2x throughput at 4 workers vs 1
# worker on the restriction and value-transform kernels (one retry for
# scheduler noise). On a machine with fewer than 4 cores the speedup
# bar is impossible by construction and is loudly SKIPPED; the
# determinism and byte-identity checks always run.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline -p geostreams-dsms --test parallel

cargo build --release --offline -p geostreams-bench --bin par_bench
out_a=$(mktemp)
out_b=$(mktemp)
report=$(mktemp)
trap 'rm -f "$out_a" "$out_b" "$report"' EXIT
./target/release/par_bench --digest > "$out_a"
./target/release/par_bench --digest > "$out_b"
if ! diff -u "$out_a" "$out_b"; then
  echo "parallel execution is nondeterministic: same seed produced different digests" >&2
  exit 1
fi

cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -lt 4 ]; then
  # Byte-identity was still proven above (par_bench asserts the serial,
  # 1-worker and 4-worker hashes agree before printing anything).
  echo "par gate: SKIPPING the >=2x speedup bar: only ${cores} core(s) available (need 4)." >&2
  echo "par gate OK: digests byte-identical across worker counts (speedup bar skipped)"
  exit 0
fi

check_speedups() {
  ./target/release/par_bench "$report" > /dev/null
  local name permille ok=0
  for name in restrict transform; do
    permille=$(sed -n "s/.*\"${name}_speedup_permille\":\([0-9]*\).*/\1/p" "$report")
    if [ -z "$permille" ] || [ "$permille" -lt 2000 ]; then
      echo "${name}: 4-worker speedup below 2x: ${permille:-?} permille" >&2
      ok=1
    else
      echo "${name}: 4 workers at ${permille} permille of 1-worker wall time"
    fi
  done
  return "$ok"
}

if ! check_speedups; then
  echo "retrying speedup measurement once (scheduler noise)..." >&2
  check_speedups
fi
echo "par gate OK: digests byte-identical, 4-worker speedup bar met"
