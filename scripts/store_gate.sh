#!/usr/bin/env bash
# Archive determinism + compression gate.
#
# Runs the seeded store benchmark (`store_bench`: ingest a GOES-like
# band into a fresh tiled archive, replay it in full — see
# crates/bench/src/bin/store_bench.rs) twice in digest mode and diffs
# the outputs. The digest covers frame/tile counts, stored and raw byte
# totals, and an FNV hash over every replayed pixel value, so any
# nondeterminism in encoding, segment layout, or replay fails the gate.
# Also enforces the ISSUE 4 compression bar (>= 2x vs raw f32 pixels)
# and runs the archive acceptance tests (tests/store.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline --test store

cargo build --release --offline -p geostreams-bench --bin store_bench
out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT
./target/release/store_bench --digest > "$out_a"
./target/release/store_bench --digest > "$out_b"
if ! diff -u "$out_a" "$out_b"; then
  echo "store path is nondeterministic: same seed produced different digests" >&2
  exit 1
fi
permille=$(sed -n 's/.*"compression_permille":\([0-9]*\).*/\1/p' "$out_a")
if [ -z "$permille" ] || [ "$permille" -lt 2000 ]; then
  echo "compression ratio below 2x: ${permille:-?} permille" >&2
  exit 1
fi
echo "store gate OK: digests byte-identical, compression ${permille} permille"
