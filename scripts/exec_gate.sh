#!/usr/bin/env bash
# Chunked-execution determinism + speedup gate.
#
# Runs the vectorized differential suite (tests/vectorized.rs: every
# operator's chunked output byte-identical to the scalar oracle across
# pull budgets), then the execution benchmark (`exec_bench`) twice in
# digest mode and diffs the outputs — the digest hashes every pixel
# delivered by both the scalar and the chunked path, so any divergence
# or nondeterminism in chunk slicing fails the gate. Finally enforces
# the ISSUE 5 acceptance bar: chunked execution >= 3x points/s over the
# legacy scalar executor loop on the restriction and value-transform
# microbenchmarks (one retry, since the box is a single shared vCPU).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline --test vectorized

cargo build --release --offline -p geostreams-bench --bin exec_bench
out_a=$(mktemp)
out_b=$(mktemp)
report=$(mktemp)
trap 'rm -f "$out_a" "$out_b" "$report"' EXIT
./target/release/exec_bench --digest > "$out_a"
./target/release/exec_bench --digest > "$out_b"
if ! diff -u "$out_a" "$out_b"; then
  echo "chunked execution is nondeterministic: same seed produced different digests" >&2
  exit 1
fi

check_speedups() {
  ./target/release/exec_bench "$report" > /dev/null
  local name permille ok=0
  for name in restrict transform; do
    permille=$(sed -n "s/.*\"${name}_speedup_permille\":\([0-9]*\).*/\1/p" "$report")
    if [ -z "$permille" ] || [ "$permille" -lt 3000 ]; then
      echo "${name}: chunked speedup below 3x: ${permille:-?} permille" >&2
      ok=1
    else
      echo "${name}: chunked ${permille} permille of scalar throughput"
    fi
  done
  return "$ok"
}

if ! check_speedups; then
  echo "retrying speedup measurement once (shared-vCPU noise)..." >&2
  check_speedups
fi
echo "exec gate OK: digests byte-identical, speedup bar met"
