#!/usr/bin/env bash
# Full local gate: release build, tests, and lints.
#
# Offline-safe: the workspace has no crates.io dependencies (serde/
# serde_json/criterion are in-repo shims), so everything below runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets -- -D warnings
