#!/usr/bin/env bash
# Full local gate: release build, tests, and lints.
#
# Offline-safe: the workspace has no crates.io dependencies (serde/
# serde_json/criterion are in-repo shims), so everything below runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets -- -D warnings
cargo fmt --check

# Static analysis: geolint (crates/lint) replaces the old awk
# forbidden-pattern pass with a comment/string-aware tokenizer and the
# full rule catalog of DESIGN.md §14 — panic-in-lib, lock-across-
# blocking, lock-order-cycle, unbounded-growth, instant-in-chunk-loop,
# relaxed-strong-mix — gated through the justified allowlist in
# geolint.allow (stale entries fail the gate too).
scripts/lint_gate.sh

# Seeded chaos suite: acceptance tests plus a run-twice-and-diff
# determinism check over the fault-injected runtime.
scripts/chaos.sh

# Archive gate: acceptance tests, run-twice-and-diff determinism over
# the persist/replay path, and the >= 2x compression bar.
scripts/store_gate.sh

# Crash gate: seeded kill-point sweep (WAL recovery, checksum
# verification, bounded loss) run twice and diffed.
scripts/crash_gate.sh

# Chunked-execution gate: scalar/chunked differential suite, digest
# determinism, and the >= 3x microbench speedup bar.
scripts/exec_gate.sh

# Observability gate: tracing acceptance suite, traced-path digest
# determinism, the <= 5% instrumentation-overhead bar, and the
# HELP/TYPE exposition lint.
scripts/obs_gate.sh

# Shared-plan multicast gate: sharing acceptance suite, swarm digest
# determinism (one plan, zero payload copies, oracle-identical
# results), and the >= 5x per-subscriber cost-collapse bar.
scripts/swarm_gate.sh

# Morsel-parallel gate: the worker-count differential suite (operators
# and stacked pipelines byte-identical across workers and budgets,
# under chaos and with share_plans on), parallel digest determinism,
# and the >= 2x 4-worker speedup bar (skipped loudly below 4 cores).
scripts/par_gate.sh
