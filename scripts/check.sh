#!/usr/bin/env bash
# Full local gate: release build, tests, and lints.
#
# Offline-safe: the workspace has no crates.io dependencies (serde/
# serde_json/criterion are in-repo shims), so everything below runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets -- -D warnings
cargo fmt --check

# Forbidden-pattern lint: non-test library code of the first-party
# crates must not panic or exit. Everything before the first
# `#[cfg(test)]` marker in each file is library code; `src/bin/`
# binaries may exit and are skipped. clippy's unwrap/expect deny
# covers core and dsms; this catches the remaining crates and the
# macro forms clippy has no lint for.
lint_failed=0
for crate in core dsms geo raster satsim store bench; do
  dir="crates/$crate/src"
  [ -d "$dir" ] || continue
  while IFS= read -r file; do
    case "$file" in */src/bin/*) continue ;; esac
    hits=$(awk '
      /#\[cfg\(test\)\]/ { exit }
      /panic!|todo!\(|unimplemented!\(|std::process::exit/ { print FILENAME ":" FNR ": " $0 }
    ' "$file")
    if [ -n "$hits" ]; then
      echo "forbidden pattern in non-test library code:" >&2
      echo "$hits" >&2
      lint_failed=1
    fi
  done < <(find "$dir" -name '*.rs')
done
if [ "$lint_failed" -ne 0 ]; then
  echo "source lint failed (panic!/todo!/unimplemented!/process::exit in library code)" >&2
  exit 1
fi
echo "source lint OK"

# Seeded chaos suite: acceptance tests plus a run-twice-and-diff
# determinism check over the fault-injected runtime.
scripts/chaos.sh

# Archive gate: acceptance tests, run-twice-and-diff determinism over
# the persist/replay path, and the >= 2x compression bar.
scripts/store_gate.sh

# Chunked-execution gate: scalar/chunked differential suite, digest
# determinism, and the >= 3x microbench speedup bar.
scripts/exec_gate.sh

# Observability gate: tracing acceptance suite, traced-path digest
# determinism, the <= 5% instrumentation-overhead bar, and the
# HELP/TYPE exposition lint.
scripts/obs_gate.sh
