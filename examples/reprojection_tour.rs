//! Re-projection tour: one GOES sector through four coordinate systems.
//!
//! §3.2 calls re-projection "the most demanding type of operator in
//! terms of space and time complexity". This example takes one simulated
//! geostationary scan sector and re-projects it to lat/lon, UTM, Lambert
//! conformal conic, and sinusoidal — writing a PNG of each and printing
//! the operator's buffering behavior with and without the scan-sector
//! metadata optimization.
//!
//! Run with `cargo run --release --example reprojection_tour`.

use geostreams_core::exec::run_to_end;
use geostreams_core::model::GeoStream;
use geostreams_core::ops::delivery::PngSink;
use geostreams_core::ops::{Reproject, ReprojectConfig};
use geostreams_geo::Crs;
use geostreams_raster::png::PngOptions;
use geostreams_satsim::goes_like;
use std::fs;

fn main() {
    let scanner = goes_like(320, 160, 31);
    let out_dir = std::path::Path::new("target/reprojection_tour");
    fs::create_dir_all(out_dir).expect("mkdir");

    let targets: Vec<(&str, Crs)> = vec![
        ("latlon", Crs::LatLon),
        ("utm14n", Crs::utm(14, true)),
        ("lambert", Crs::LambertConformal { lat1: 33.0, lat2: 45.0, lat0: 39.0, lon0: -96.0 }),
        ("sinusoidal", Crs::Sinusoidal { lon0: -96.0 }),
    ];

    println!(
        "{:<12} {:>10} {:>12} {:>16} {:>18}",
        "target", "points", "frames", "peak buf (pts)", "peak buf blocking"
    );
    for (name, crs) in targets {
        // Streaming (metadata-assisted) variant.
        let stream = scanner.band_stream(0, 1);
        let op = Reproject::new(stream, ReprojectConfig::new(crs)).expect("reproject");
        let mut sink = PngSink::new(op, None, PngOptions::default());
        let mut frames = 0;
        while let Some(frame) = sink.next_frame() {
            let path = out_dir.join(format!("goes_to_{name}.png"));
            fs::write(&path, &frame.png).expect("write png");
            frames += 1;
        }

        // Re-run for stats (the sink consumed the stream).
        let stream = scanner.band_stream(0, 1);
        let mut op = Reproject::new(stream, ReprojectConfig::new(crs)).expect("reproject");
        let report = run_to_end(&mut op);
        let streaming_peak = op.op_stats().buffered_points_peak;

        // Blocking variant (no sector metadata, §3.2's warning case).
        let stream = scanner.band_stream(0, 1);
        let mut blocking =
            Reproject::new(stream, ReprojectConfig::new(crs).blocking()).expect("reproject");
        let _ = run_to_end(&mut blocking);
        let blocking_peak = blocking.op_stats().buffered_points_peak;

        println!(
            "{:<12} {:>10} {:>12} {:>16} {:>18}",
            name, report.points_delivered, frames, streaming_peak, blocking_peak
        );
        assert!(streaming_peak <= blocking_peak);
    }
    println!("\nPNGs written to {}", out_dir.display());
}
