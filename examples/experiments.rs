//! The consolidated experiment suite: regenerates every figure/claim
//! table recorded in EXPERIMENTS.md.
//!
//! The paper (EDBT 2006) has no numeric evaluation tables; its
//! evaluation content is a set of per-operator cost and buffering
//! claims plus three structural figures. Each experiment below tests one
//! of them; DESIGN.md §4 maps experiment ids to paper sections.
//!
//! Run with `cargo run --release --example experiments`
//! (append `-- --quick` for a faster, smaller pass).

use geostreams_core::exec::{run_to_end, RunReport};
use geostreams_core::model::{split2, Element, GeoStream, StreamSchema, TimeSemantics, VecStream};
use geostreams_core::ops::{
    AggFunc, Compose, Downsample, FocalFunc, FocalTransform, GammaOp, JoinStrategy, Magnify,
    MapTransform, Orient, Orientation, Reproject, ReprojectConfig, SpatialRestrict, StretchMode,
    StretchScope, StretchTransform, TemporalAggregate, ValueFunc,
};
use geostreams_core::query::cascade::{CascadeTree, NaiveRegionIndex, RegionIndex};
use geostreams_core::query::{cost, optimize, parse_query, Planner};
use geostreams_core::stats::OpReport;
use geostreams_dsms::{Dsms, OutputFormat};
use geostreams_geo::{Crs, LatticeGeoref, Rect, Region};
use geostreams_raster::png::{self, Filter, PngOptions, Strategy};
use geostreams_raster::resample::Kernel;
use geostreams_raster::Grid2D;
use geostreams_satsim::{airborne::airborne_camera, goes_like, lidar::lidar_profiler, Scanner};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 1 } else { 2 };

    println!("# GeoStreams experiment suite");
    println!("(scale factor {scale}; see DESIGN.md section 4 for the experiment index)\n");

    f1_point_organizations(scale);
    e1_restrictions(scale);
    e2_value_transforms(scale);
    f2_spatial_transforms(scale);
    e3_composition(scale);
    e4_rewriting(scale);
    e5_cascade_tree(scale);
    e6_aggregates(scale);
    f3_dsms_pipeline(scale);
    x1_extension_operators(scale);
    a1_resample_kernels(scale);
    a2_join_strategies(scale);
    a3_png_encoders(scale);
}

// ---------------------------------------------------------------------
// helpers

/// A plain lat/lon test lattice (keeps operator cost measurements free
/// of projection math in the source).
fn latlon_lattice(w: u32, h: u32) -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 32.0, -114.0, 42.0), w, h)
}

/// Materialized row-by-row stream elements (replayable cheaply).
fn ramp_elements(w: u32, h: u32, sectors: u64) -> (StreamSchema, Vec<Element<f32>>) {
    let mut s: VecStream<f32> =
        VecStream::sectors("ramp", latlon_lattice(w, h), sectors, |q, c, r| {
            f64::from(c) * 0.001 + f64::from(r) * 0.01 + q as f64 * 0.1
        })
        .with_value_range(0.0, 10.0);
    let schema = s.schema().clone();
    let elements = s.drain_elements();
    (schema, elements)
}

fn replay(schema: &StreamSchema, elements: &[Element<f32>]) -> VecStream<f32> {
    VecStream::new(schema.clone(), elements.to_vec())
}

fn time_run<S: GeoStream>(mut stream: S) -> (Duration, RunReport, Vec<OpReport>) {
    let start = Instant::now();
    let report = run_to_end(&mut stream);
    let wall = start.elapsed();
    let mut ops = Vec::new();
    stream.collect_stats(&mut ops);
    (wall, report, ops)
}

fn max_peak(ops: &[OpReport]) -> u64 {
    ops.iter().map(|o| o.stats.buffered_points_peak).max().unwrap_or(0)
}

fn ns_per_point(wall: Duration, points: u64) -> f64 {
    if points == 0 {
        f64::NAN
    } else {
        wall.as_nanos() as f64 / points as f64
    }
}

// ---------------------------------------------------------------------

/// F1 (Fig. 1): the three point organizations and their spatial
/// proximity structure.
fn f1_point_organizations(scale: u32) {
    println!("## F1 — point organizations (Fig. 1)");
    println!("| instrument | organization | frames/sector | pts/frame | consec. Δcell ≤ 1 | time-ordered |");
    println!("|---|---|---|---|---|---|");
    let n = 64 * scale;
    let cases: Vec<(&str, Scanner)> = vec![
        ("airborne camera", airborne_camera(Rect::new(-122.0, 37.0, -121.5, 37.4), n, n, 3)),
        ("GOES-like imager", goes_like(n, n / 2, 3)),
        ("LIDAR profiler", lidar_profiler(Rect::new(-120.0, 38.0, -119.0, 38.1), n * 2, 2, 3)),
    ];
    for (name, scanner) in cases {
        let mut stream = scanner.band_stream(0, 2);
        let mut frames = 0u64;
        let mut points = 0u64;
        let mut close = 0u64;
        let mut total_pairs = 0u64;
        let mut last_cell: Option<geostreams_geo::Cell> = None;
        let mut timestamps = Vec::new();
        let mut sectors = 0u64;
        while let Some(el) = stream.next_element() {
            match el {
                Element::SectorStart(_) => {
                    sectors += 1;
                    last_cell = None;
                }
                Element::FrameStart(fi) => {
                    frames += 1;
                    timestamps.push(fi.timestamp.value());
                    last_cell = None; // proximity measured within frames
                }
                Element::Point(p) => {
                    points += 1;
                    if let Some(prev) = last_cell {
                        total_pairs += 1;
                        if prev.chebyshev(p.cell) <= 1 {
                            close += 1;
                        }
                    }
                    last_cell = Some(p.cell);
                }
                _ => {}
            }
        }
        let monotone = timestamps.windows(2).all(|w| w[1] >= w[0]);
        println!(
            "| {} | {} | {} | {} | {:.1}% | {} |",
            name,
            scanner.instrument.organization,
            frames / sectors.max(1),
            points / frames.max(1),
            100.0 * close as f64 / total_pairs.max(1) as f64,
            monotone
        );
    }
    println!();
}

/// E1 (§3.1): restrictions are non-blocking with constant per-point cost.
fn e1_restrictions(scale: u32) {
    println!("## E1 — restriction operators (§3.1 claims)");
    println!(
        "| stream points | ns/point (25% bbox) | ns/point (100%) | ns/point (1%) | peak buffer |"
    );
    println!("|---|---|---|---|---|");
    for mult in [1u32, 2, 4, 8] {
        let w = 128 * scale * mult;
        let h = 128 * scale;
        let (schema, elements) = ramp_elements(w, h, 1);
        let world = latlon_lattice(w, h).world_bbox();
        let mut row = Vec::new();
        let mut peak = 0;
        for frac in [0.5f64, 1.0, 0.1] {
            // Selectivity frac² of the area.
            let region = Region::Rect(Rect::new(
                world.x_min,
                world.y_min,
                world.x_min + world.width() * frac,
                world.y_min + world.height() * frac,
            ));
            let op = SpatialRestrict::new(replay(&schema, &elements), region);
            let (wall, report, ops) = time_run(op);
            let touched = report.per_op.last().map(|o| o.stats.points_in).unwrap_or(0);
            row.push(ns_per_point(wall, touched));
            peak = peak.max(max_peak(&ops[1..]));
        }
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {} |",
            (w as u64) * (h as u64),
            row[0],
            row[1],
            row[2],
            peak
        );
    }
    println!();
}

/// E2 (§3.2): point-wise value transforms vs frame/image stretches.
fn e2_value_transforms(scale: u32) {
    println!("## E2 — value transforms (§3.2 claims)");
    println!("| frame (pts) | map ns/pt | stretch[frame] ns/pt | stretch[image] ns/pt | image buffer (pts) | frame buffer (pts) |");
    println!("|---|---|---|---|---|---|");
    for mult in [1u32, 2, 4] {
        let w = 128 * scale * mult;
        let h = 64 * scale * mult;
        let (schema, elements) = ramp_elements(w, h, 1);
        let points = (w as u64) * (h as u64);

        let map: MapTransform<_, f32> = MapTransform::new(
            replay(&schema, &elements),
            ValueFunc::Linear { scale: 0.5, offset: 1.0 },
        );
        let (t_map, _, _) = time_run(map);

        let sf = StretchTransform::new(
            replay(&schema, &elements),
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Frame,
        );
        let (t_frame, _, ops_frame) = time_run(sf);

        let si = StretchTransform::new(
            replay(&schema, &elements),
            StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
            StretchScope::Image,
        );
        let (t_image, _, ops_image) = time_run(si);

        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {} | {} |",
            points,
            ns_per_point(t_map, points),
            ns_per_point(t_frame, points),
            ns_per_point(t_image, points),
            max_peak(&ops_image),
            max_peak(&ops_frame),
        );
    }
    let paper = 20_840u64 * 10_820;
    println!(
        "\nExtrapolation: a full GOES visible sector is {paper} points; an image-scoped \
         stretch must buffer all of them ({} MB at 1 B/pt — the paper's ≈280 MB figure; \
         {} MB at our f32 pixels).\n",
        paper / 1_000_000,
        paper * 4 / 1_000_000
    );
}

/// F2 (Fig. 2 / §3.2): spatial transforms and their buffering.
fn f2_spatial_transforms(scale: u32) {
    println!("## F2 — spatial transforms (Fig. 2, §3.2 claims)");
    let w = 192 * scale;
    let h = 96 * scale;
    let (schema, elements) = ramp_elements(w, h, 1);
    println!("| operator | points out | peak buffer (pts) | expectation |");
    println!("|---|---|---|---|");

    let (_, rep, ops) = time_run(Magnify::new(replay(&schema, &elements), 3));
    println!(
        "| magnify x3 | {} | {} | 0 (no neighbors needed) |",
        rep.points_delivered,
        max_peak(&ops)
    );

    for k in [2u32, 4, 8] {
        let (_, rep, ops) = time_run(Downsample::new(replay(&schema, &elements), k));
        println!(
            "| downsample 1/{k} | {} | {} | ≈ (k−1)·width = {} |",
            rep.points_delivered,
            max_peak(&ops),
            (k - 1) * w
        );
    }

    // Re-projection on a GOES-like geostationary sector.
    let scanner = goes_like(w, h, 5);
    let stream = scanner.band_stream(0, 1);
    let op = Reproject::new(stream, ReprojectConfig::new(Crs::LatLon)).expect("reproject");
    let (_, rep, ops) = time_run(op);
    let streaming_peak = max_peak(&ops);
    println!(
        "| reproject geos→latlon (sector metadata) | {} | {} | narrow row band |",
        rep.points_delivered, streaming_peak
    );
    let stream = scanner.band_stream(0, 1);
    let op =
        Reproject::new(stream, ReprojectConfig::new(Crs::LatLon).blocking()).expect("reproject");
    let (_, rep, ops) = time_run(op);
    println!(
        "| reproject geos→latlon (blocking) | {} | {} | whole sector = {} |",
        rep.points_delivered,
        max_peak(&ops),
        (w as u64) * (h as u64)
    );
    println!();
}

/// E3 (§3.3): composition buffering vs organization; timestamp semantics.
fn e3_composition(scale: u32) {
    println!("## E3 — stream composition (§3.3 claims)");
    println!("| transmission | image (pts) | subsystem peak buffer (pts) | buffer / image |");
    println!("|---|---|---|---|");
    let w = 96 * scale;
    let h = 96 * scale;
    let image = (w as u64) * (h as u64);
    let (schema_a, a) = ramp_elements(w, h, 2);
    let (schema_b, b) = ramp_elements(w, h, 2);

    // Row-interleaved (row-by-row downlink).
    let transport = interleave_rows(&a, &b);
    let (s0, s1) = split2(transport.into_iter(), schema_a.renamed("a"), schema_b.renamed("b"));
    let op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).expect("compose");
    let (_, rep, ops) = time_run(op);
    assert_eq!(rep.points_delivered, image * 2);
    println!(
        "| row-by-row (line-interleaved) | {image} | {} | {:.3} |",
        max_peak(&ops),
        max_peak(&ops) as f64 / image as f64
    );

    // Band-sequential (image-by-image downlink): per sector, all of a
    // then all of b.
    let transport = band_sequential(&a, &b);
    let (s0, s1) = split2(transport.into_iter(), schema_a.renamed("a"), schema_b.renamed("b"));
    let op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).expect("compose");
    let (_, rep, ops) = time_run(op);
    assert_eq!(rep.points_delivered, image * 2);
    println!(
        "| image-by-image (band-sequential) | {image} | {} | {:.3} |",
        max_peak(&ops),
        max_peak(&ops) as f64 / image as f64
    );

    // Timestamp semantics: measurement-time streams never match.
    let mis_a = with_measurement_time(&schema_a, &a, 0);
    let mis_b = with_measurement_time(&schema_b, &b, 1);
    let op = Compose::new(mis_a, mis_b, GammaOp::Add, JoinStrategy::Hash).expect("compose");
    let (_, rep, _) = time_run(op);
    println!(
        "\nTimestamp semantics: sector-id join output = {} points; measurement-time join \
         output = {} points (the paper: 'a stream composition operator would never produce \
         new image data').\n",
        image * 2,
        rep.points_delivered
    );
}

fn interleave_rows(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    let groups = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::FrameEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (ga, gb) = (groups(a), groups(b));
    let mut out = Vec::new();
    for (x, y) in ga.into_iter().zip(gb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

fn band_sequential(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    // Split per sector.
    let sectors = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::SectorEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (sa, sb) = (sectors(a), sectors(b));
    let mut out = Vec::new();
    for (x, y) in sa.into_iter().zip(sb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

fn with_measurement_time(
    schema: &StreamSchema,
    elements: &[Element<f32>],
    offset: i64,
) -> VecStream<f32> {
    let mut schema = schema.clone();
    schema.time_semantics = TimeSemantics::MeasurementTime;
    let els: Vec<Element<f32>> = elements
        .iter()
        .cloned()
        .map(|el| match el {
            Element::FrameStart(mut fi) => {
                fi.timestamp =
                    geostreams_core::model::Timestamp::new(fi.frame_id as i64 * 2 + offset);
                Element::FrameStart(fi)
            }
            other => other,
        })
        .collect();
    VecStream::new(schema, els)
}

/// E4 (§3.4): restriction pushdown gains vs region selectivity.
fn e4_rewriting(scale: u32) {
    println!("## E4 — query rewriting (§3.4 claims)");
    let scanner = goes_like(128 * scale, 64 * scale, 42);
    let server = Dsms::over_scanner(&scanner, 1);
    let catalog = server.catalog();
    let planner = Planner::new(catalog);
    println!("| region (% of UTM window) | naive points touched | optimized | ratio | naive wall | optimized wall | est. work ratio |");
    println!("|---|---|---|---|---|---|---|");
    // Sweep the region size; coordinates in UTM 14N.
    let center = (450_000.0, 4_300_000.0);
    for frac in [1.0f64, 0.5, 0.25, 0.1] {
        let half_w = 1_200_000.0 * frac / 2.0;
        let half_h = 900_000.0 * frac / 2.0;
        let q = format!(
            "restrict_space(
               reproject(normalize(div(sub(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4)),
                                       add(downsample(goes-sim.b1-vis, 4), goes-sim.b2-nir)),
                                   -1, 1),
                         \"utm:14N\"),
               bbox({}, {}, {}, {}), \"utm:14N\")",
            center.0 - half_w,
            center.1 - half_h,
            center.0 + half_w,
            center.1 + half_h
        );
        let expr = parse_query(&q).expect("parses");
        let optimized = optimize(&expr, catalog);
        let est_naive = cost::estimate(&expr, catalog).expect("estimate");
        let est_opt = cost::estimate(&optimized, catalog).expect("estimate");

        let mut naive_pipe = planner.build(&expr).expect("plan");
        let t0 = Instant::now();
        let naive_rep = run_to_end(&mut naive_pipe);
        let naive_wall = t0.elapsed();

        let mut opt_pipe = planner.build(&optimized).expect("plan");
        let t0 = Instant::now();
        let opt_rep = run_to_end(&mut opt_pipe);
        let opt_wall = t0.elapsed();

        assert_eq!(naive_rep.points_delivered, opt_rep.points_delivered, "same answer");
        println!(
            "| {:.0}% | {} | {} | {:.2}x | {:.0?} | {:.0?} | {:.2}x |",
            frac * 100.0,
            naive_rep.total_points_processed(),
            opt_rep.total_points_processed(),
            naive_rep.total_points_processed() as f64
                / opt_rep.total_points_processed().max(1) as f64,
            naive_wall,
            opt_wall,
            est_naive.work / est_opt.work.max(1.0)
        );
    }
    println!();
}

/// E5 (§4 / [10]): cascade tree vs naive multi-query routing.
fn e5_cascade_tree(scale: u32) {
    println!("## E5 — multi-query spatial index (§4, dynamic cascade tree)");
    let lattice = latlon_lattice(128 * scale, 128 * scale);
    let world = lattice.world_bbox();
    // Pre-compute the world coordinates of one sector's points.
    let mut points = Vec::new();
    for row in 0..lattice.height {
        for col in 0..lattice.width {
            points.push(lattice.cell_to_world(geostreams_geo::Cell::new(col, row)));
        }
    }
    println!("| registered queries | naive ns/pt | cascade ns/pt | speedup | avg hits/pt |");
    println!("|---|---|---|---|---|");
    let mut rng = 0xDEADBEEFu64;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((rng >> 33) as f64) / (1u64 << 31) as f64
    };
    for n in [1usize, 4, 16, 64, 256, 1024] {
        let regions: Vec<Rect> = (0..n)
            .map(|_| {
                let w = world.width() * (0.01 + 0.1 * next());
                let h = world.height() * (0.01 + 0.1 * next());
                let x = world.x_min + next() * (world.width() - w);
                let y = world.y_min + next() * (world.height() - h);
                Rect::new(x, y, x + w, y + h)
            })
            .collect();
        let route = |index: &mut dyn RegionIndex| -> (Duration, u64) {
            for (i, r) in regions.iter().enumerate() {
                index.insert(i as u32, *r);
            }
            let mut hits = Vec::with_capacity(16);
            let mut deliveries = 0u64;
            let start = Instant::now();
            for p in &points {
                hits.clear();
                index.query_point(*p, &mut hits);
                deliveries += hits.len() as u64;
            }
            (start.elapsed(), deliveries)
        };
        let (t_naive, d_naive) = route(&mut NaiveRegionIndex::new());
        let (t_casc, d_casc) = route(&mut CascadeTree::new(world, 10));
        assert_eq!(d_naive, d_casc, "identical routing results");
        println!(
            "| {} | {:.1} | {:.1} | {:.2}x | {:.2} |",
            n,
            ns_per_point(t_naive, points.len() as u64),
            ns_per_point(t_casc, points.len() as u64),
            t_naive.as_secs_f64() / t_casc.as_secs_f64(),
            d_naive as f64 / points.len() as f64
        );
    }
    println!();
}

/// E6 (§6 / [27]): spatio-temporal aggregates.
fn e6_aggregates(scale: u32) {
    println!("## E6 — spatio-temporal aggregates (§6 extension)");
    println!("| window (images) | ns/pt | peak buffer (pts) | expectation W·image |");
    println!("|---|---|---|---|");
    let w = 64 * scale;
    let h = 64 * scale;
    let image = (w as u64) * (h as u64);
    let (schema, elements) = ramp_elements(w, h, 40);
    for window in [2usize, 4, 8, 16, 32] {
        let op = TemporalAggregate::new(replay(&schema, &elements), AggFunc::Mean, window);
        let (wall, rep, ops) = time_run(op);
        println!(
            "| {} | {:.1} | {} | {} |",
            window,
            ns_per_point(wall, rep.points_delivered),
            max_peak(&ops),
            window as u64 * image
        );
    }
    println!();
}

/// F3 (Fig. 3): the end-to-end DSMS pipeline.
fn f3_dsms_pipeline(scale: u32) {
    println!("## F3 — end-to-end DSMS (Fig. 3)");
    let scanner = goes_like(128 * scale, 64 * scale, 9);
    let server = Arc::new(Dsms::over_scanner(&scanner, 2));
    let queries = [
        (
            "client 1: visible ROI",
            "restrict_space(goes-sim.b1-vis, bbox(-105, 30, -95, 40), \"latlon\")",
            OutputFormat::PngGray,
        ),
        (
            "client 2: NDVI",
            "ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4))",
            OutputFormat::PngNdvi,
        ),
        ("client 3: thermal", "stretch(goes-sim.b4-ir, \"linear\")", OutputFormat::PngThermal),
        (
            "client 4: WV stats",
            "agg_space(goes-sim.b3-wv, \"mean\", bbox(-8000000, -8000000, 8000000, 8000000))",
            OutputFormat::Stats,
        ),
    ];
    for (_, q, fmt) in &queries {
        server.register_text(q, *fmt, 2).expect("registers");
    }
    let start = Instant::now();
    let results = server.run_all_parallel();
    let wall = start.elapsed();
    println!("| client | frames | points | status |");
    println!("|---|---|---|---|");
    for ((name, _, _), result) in queries.iter().zip(&results) {
        match result {
            Ok(r) => println!("| {} | {} | {} | ok |", name, r.frames.len(), r.points),
            Err(e) => println!("| {} | - | - | error: {} |", name, e),
        }
    }
    println!(
        "\n4 concurrent continuous queries over 2 scan sectors: wall {:?}; metrics: {}\n",
        wall,
        server.metrics.summary()
    );
}

/// X1: extension operators beyond the paper's core set — neighborhood
/// (focal) operations (motivated in §1) and exact orientations (§3.2
/// names rotation among the spatial transforms).
fn x1_extension_operators(scale: u32) {
    println!("## X1 — extension operators (focal neighborhoods, orientations)");
    let w = 192 * scale;
    let h = 96 * scale;
    let (schema, elements) = ramp_elements(w, h, 1);
    println!("| operator | ns/pt | peak buffer (pts) | expectation |");
    println!("|---|---|---|---|");
    for (name, k, func) in [
        ("focal mean 3x3", 3u32, FocalFunc::Mean),
        ("focal mean 7x7", 7, FocalFunc::Mean),
        ("focal median 3x3", 3, FocalFunc::Median),
        ("focal sobel 3x3", 3, FocalFunc::Sobel),
    ] {
        let op = FocalTransform::new(replay(&schema, &elements), func, k);
        let (wall, rep, ops) = time_run(op);
        println!(
            "| {} | {:.1} | {} | ≈ k·width = {} |",
            name,
            ns_per_point(wall, rep.points_delivered),
            max_peak(&ops),
            k * w
        );
    }
    for o in [Orientation::Rot90, Orientation::FlipH] {
        let op = Orient::new(replay(&schema, &elements), o);
        let (wall, rep, ops) = time_run(op);
        println!(
            "| orient {} | {:.1} | {} | 0 (exact per-point remap) |",
            o.name(),
            ns_per_point(wall, rep.points_delivered),
            max_peak(&ops),
        );
    }
    println!();
}

/// A1: re-projection kernel ablation.
fn a1_resample_kernels(scale: u32) {
    println!("## A1 — reprojection kernels (ablation)");
    // Value = longitude; after reprojection, compare against truth.
    let lattice = latlon_lattice(96 * scale, 96 * scale);
    let src_schema = StreamSchema::new("lonfield", Crs::LatLon);
    let mut base: VecStream<f32> = VecStream::single_sector("lonfield", lattice, 0, move |c, r| {
        lattice.cell_to_world(geostreams_geo::Cell::new(c, r)).x
    });
    let elements = base.drain_elements();
    println!("| kernel | wall | RMSE (deg lon) | points out |");
    println!("|---|---|---|---|");
    for kernel in [Kernel::Nearest, Kernel::Bilinear, Kernel::Bicubic] {
        let src = VecStream::new(src_schema.clone(), elements.clone());
        let op = Reproject::new(src, ReprojectConfig::new(Crs::utm(11, true)).kernel(kernel))
            .expect("reproject");
        let mut op = op;
        let start = Instant::now();
        let mut out_lattice = None;
        let mut pts = Vec::new();
        while let Some(el) = op.next_element() {
            match el {
                Element::SectorStart(si) => out_lattice = Some(si.lattice),
                Element::Point(p) => pts.push(p),
                _ => {}
            }
        }
        let wall = start.elapsed();
        let out = out_lattice.expect("sector");
        let utm = Crs::utm(11, true);
        let mut sq = 0.0;
        let mut n = 0u64;
        for p in &pts {
            let w = out.cell_to_world(p.cell);
            if let Ok(ll) = utm.inverse(w) {
                // Skip the border band.
                if ll.x < -123.8 || ll.x > -114.2 || ll.y < 32.2 || ll.y > 41.8 {
                    continue;
                }
                let d = f64::from(p.value) - ll.x;
                sq += d * d;
                n += 1;
            }
        }
        println!(
            "| {:?} | {:.0?} | {:.5} | {} |",
            kernel,
            wall,
            (sq / n.max(1) as f64).sqrt(),
            pts.len()
        );
    }
    println!();
}

/// A2: composition join strategies.
fn a2_join_strategies(scale: u32) {
    println!("## A2 — composition join strategies (ablation)");
    let w = 128 * scale;
    let h = 128 * scale;
    let (schema, a) = ramp_elements(w, h, 2);
    let (_, b) = ramp_elements(w, h, 2);
    println!("| strategy | wall | peak buffer (pts) | points out |");
    println!("|---|---|---|---|");
    for strategy in [JoinStrategy::Hash, JoinStrategy::FrameMerge] {
        let sa = VecStream::new(schema.renamed("a"), a.clone());
        let sb = VecStream::new(schema.renamed("b"), b.clone());
        let op = Compose::new(sa, sb, GammaOp::Mul, strategy).expect("compose");
        let (wall, rep, ops) = time_run(op);
        println!(
            "| {:?} | {:.0?} | {} | {} |",
            strategy,
            wall,
            max_peak(&ops),
            rep.points_delivered
        );
    }
    println!();
}

/// A3: PNG delivery encoder configurations.
fn a3_png_encoders(scale: u32) {
    println!("## A3 — PNG delivery encoders (ablation)");
    // Render one GOES visible sector to an 8-bit image.
    let scanner = goes_like(256 * scale, 128 * scale, 13);
    let mut assembler = geostreams_core::ops::ImageAssembler::new(scanner.band_stream(0, 1));
    let img = assembler.next_image().expect("image");
    let gray: Grid2D<u8> = img.grid.map(|v| (v.clamp(0.0, 1.0) * 255.0) as u8);
    let raw = gray.len();
    println!("| filter | deflate | bytes | ratio | encode time |");
    println!("|---|---|---|---|---|");
    for filter in [Filter::None, Filter::Sub] {
        for strategy in [Strategy::Stored, Strategy::FixedHuffman] {
            let start = Instant::now();
            let bytes = png::encode_gray(&gray, PngOptions { filter, strategy });
            let wall = start.elapsed();
            // Every configuration must decode back to the same image.
            match png::decode(&bytes).expect("decodes") {
                png::Decoded::Gray(g) => assert_eq!(g, gray),
                _ => unreachable!(),
            }
            println!(
                "| {:?} | {:?} | {} | {:.2} | {:.0?} |",
                filter,
                strategy,
                bytes.len(),
                bytes.len() as f64 / raw as f64,
                wall
            );
        }
    }
    println!();
}
