//! The paper's §3.4 running example, end to end, with and without the
//! optimizer:
//!
//! ```text
//! ((f_val((G1 − G2) ⊘ (G2 + G1))) ∘ f_UTM)|R
//! ```
//!
//! G1 = near-infrared, G2 = visible; f_val normalizes NDVI to [0,1];
//! f_UTM re-projects to UTM zone 14N; R restricts to a region of
//! interest given in UTM coordinates. The optimizer (a) fuses the NDVI
//! pattern into the §4 macro operator and (b) pushes the spatial
//! restriction inward across the re-projection, mapping R into the
//! source coordinate system.
//!
//! Run with `cargo run --release --example ndvi_pipeline`.

use geostreams_core::exec::run_to_end;
use geostreams_core::query::{cost, optimize, parse_query, Planner};
use geostreams_dsms::Dsms;
use geostreams_satsim::goes_like;
use std::time::Instant;

fn main() {
    let scanner = goes_like(384, 192, 42);
    let server = Dsms::over_scanner(&scanner, 1);
    let catalog = server.catalog();

    // Region of interest around Kansas, specified in UTM 14N meters.
    let query = "restrict_space(
        reproject(
            normalize(
                div(sub(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4)),
                    add(downsample(goes-sim.b1-vis, 4), goes-sim.b2-nir)),
                -1, 1),
            \"utm:14N\", \"bilinear\"),
        bbox(200000, 4100000, 700000, 4500000), \"utm:14N\")";

    let expr = parse_query(query).expect("parses");
    let optimized = optimize(&expr, catalog);
    println!("naive     : {expr}");
    println!("optimized : {optimized}\n");

    let planner = Planner::new(catalog);
    let mut rows = Vec::new();
    for (label, e) in [("naive", &expr), ("optimized", &optimized)] {
        let est = cost::estimate(e, catalog).expect("estimate");
        let mut pipeline = planner.build(e).expect("plans");
        let start = Instant::now();
        let report = run_to_end(&mut pipeline);
        let wall = start.elapsed();
        rows.push((label, est, report, wall));
    }

    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "plan", "est. work", "points out", "points touched", "peak buffer", "wall"
    );
    for (label, est, report, wall) in &rows {
        println!(
            "{:<10} {:>12.0} {:>12} {:>14} {:>14} {:>9.1?}",
            label,
            est.work,
            report.points_delivered,
            report.total_points_processed(),
            report.peak_buffered_points(),
            wall
        );
    }

    let naive = &rows[0];
    let opt = &rows[1];
    assert_eq!(
        naive.2.points_delivered, opt.2.points_delivered,
        "rewrites must not change the answer cardinality"
    );
    assert!(
        opt.2.total_points_processed() < naive.2.total_points_processed(),
        "pushdown must reduce points touched"
    );
    println!(
        "\npushdown touched {:.1}x fewer points",
        naive.2.total_points_processed() as f64 / opt.2.total_points_processed() as f64
    );
}
