//! True-color composite delivery from a polar orbiter.
//!
//! Composites three MODIS-like granule bands into RGB PNGs — the
//! "Web-based graphical interface" product of §4 — while the orbiter
//! sweeps south along its track, and also writes an orientation-corrected
//! (rotated) view using the exact orientation operator.
//!
//! Run with `cargo run --release --example true_color`.

use geostreams_core::ops::delivery::RgbComposite;
use geostreams_core::ops::{Orient, Orientation};
use geostreams_raster::png::PngOptions;
use geostreams_satsim::modis_like;
use std::fs;

fn main() {
    let scanner = modis_like(192, 96, -110.0, 48.0, 2026);
    let granules = 3;

    // Red / NIR / thermal as an RGB false-color composite (vegetation
    // pops in green where NIR is strong).
    let red = scanner.band_stream_by_id(1, granules).expect("red band");
    let nir = scanner.band_stream_by_id(2, granules).expect("nir band");
    // Thermal is half resolution: magnify it onto the red/nir grid.
    let tir = geostreams_core::ops::Magnify::new(
        scanner.band_stream_by_id(31, granules).expect("tir band"),
        2,
    );
    let mut comp = RgbComposite::new(nir, red, tir, PngOptions::default());

    let out = std::path::Path::new("target/true_color");
    fs::create_dir_all(out).expect("mkdir");
    let mut n = 0;
    while let Some(frame) = comp.next_frame() {
        let path = out.join(format!("granule{}.png", frame.timestamp));
        fs::write(&path, &frame.png).expect("write");
        println!(
            "granule {} -> {} ({}x{}, {} bytes)",
            frame.timestamp,
            path.display(),
            frame.width,
            frame.height,
            frame.png.len()
        );
        n += 1;
    }
    assert_eq!(n, granules, "one composite per granule");

    // A rotated quick-look of the first granule (ascending-pass display).
    let rotated =
        Orient::new(scanner.band_stream_by_id(1, 1).expect("red band"), Orientation::Rot90);
    let mut sink =
        geostreams_core::ops::delivery::PngSink::new(rotated, None, PngOptions::default());
    let frame = sink.next_frame().expect("rotated frame");
    let path = out.join("granule0_rot90.png");
    fs::write(&path, &frame.png).expect("write");
    println!("rotated quick-look -> {} ({}x{})", path.display(), frame.width, frame.height);
    assert_eq!((frame.width, frame.height), (96, 192), "axes swapped by rot90");
}
