//! Change detection: joining a GeoStream with its own past.
//!
//! Environmental monitoring (a §1 motivating application) watches for
//! *change*: cloud movement, flooding, burn scars. The algebra expresses
//! it as a self-join through the delay operator:
//!
//! ```text
//! abs(sub(G, delay(G, 1)))        -- per-cell |difference| between
//!                                 -- consecutive scan sectors
//! ```
//!
//! This example runs the change product over the simulated GOES visible
//! band (whose clouds drift between sectors), raises per-sector change
//! statistics, and writes a change-map PNG for the most active sector.
//!
//! Run with `cargo run --release --example change_detection`.

use geostreams_core::model::{tee2, Element, GeoStream};
use geostreams_core::ops::delivery::{PngSink, Rendering};
use geostreams_core::ops::{
    AggFunc, Compose, Delay, GammaOp, JoinStrategy, MapTransform, SpatialAggregate, ValueFunc,
};
use geostreams_geo::{Rect, Region};
use geostreams_raster::colormap::ColorMap;
use geostreams_raster::png::PngOptions;
use geostreams_satsim::goes_like;
use std::fs;

fn main() {
    let scanner = goes_like(192, 96, 424_242);
    let sectors = 6;

    // |G - delay(G, 1)| over the visible band.
    let (live, past) = tee2(scanner.band_stream_by_id(1, sectors).expect("band 1"));
    let delayed = Delay::new(past, 1);
    let diff = Compose::new(live, delayed, GammaOp::Sub, JoinStrategy::Hash).expect("compose");
    let change: MapTransform<_, f32> = MapTransform::new(diff, ValueFunc::Abs);

    // Sector-level change energy for a console report.
    let world = scanner.instrument.base_lattice.world_bbox();
    let mut report = SpatialAggregate::new(
        change,
        AggFunc::Mean,
        Region::Rect(Rect::new(world.x_min, world.y_min, world.x_max, world.y_max)),
    );
    println!("sector   mean |change| (cloud drift between consecutive scans)");
    let mut levels = Vec::new();
    while let Some(el) = report.next_element() {
        if let Element::Point(p) = el {
            levels.push(p.value);
            let bar = "#".repeat((p.value * 400.0) as usize);
            println!("{:>6}   {:<8.5} {bar}", levels.len(), p.value);
        }
    }
    // The composition still frames sector 0 (no matches -> empty image,
    // aggregate 0): one report line per sector, the first one zero.
    assert_eq!(levels.len() as u64, sectors);
    assert!(levels[0].abs() < 1e-9, "sector 0 has no past to differ from");
    assert!(levels.iter().any(|&v| v > 1e-4), "the synthetic clouds do move");

    // Change map PNG for the final sector.
    let (live, past) = tee2(scanner.band_stream_by_id(1, sectors).expect("band 1"));
    let delayed = Delay::new(past, 1);
    let diff = Compose::new(live, delayed, GammaOp::Sub, JoinStrategy::Hash).expect("compose");
    let change: MapTransform<_, f32> = MapTransform::new(diff, ValueFunc::Abs);
    let rendering = Rendering::Mapped { lo: 0.0, hi: 0.4, map: ColorMap::thermal() };
    let mut sink = PngSink::new(change, Some(rendering), PngOptions::default());
    let mut last = None;
    while let Some(frame) = sink.next_frame() {
        last = Some(frame);
    }
    let frame = last.expect("frames produced");
    let out = std::path::Path::new("target/change_detection");
    fs::create_dir_all(out).expect("mkdir");
    let path = out.join(format!("change_sector{}.png", frame.timestamp));
    fs::write(&path, &frame.png).expect("write");
    println!("\nchange map written to {} ({} bytes)", path.display(), frame.png.len());
}
