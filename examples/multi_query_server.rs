//! Multi-user DSMS: many continuous queries against one GeoStream.
//!
//! §4: "Multiple users can connect to the DSMS server and formulate
//! queries over the GOES data streams … multiple queries against a
//! single GeoStream are optimized using a dynamic cascade tree
//! structure." This example subscribes many clients with random regions
//! of interest and routes one satellite pass through the shared
//! front end twice — once with the naive per-query scan, once with the
//! cascade tree — and also demonstrates the per-query-pipeline mode with
//! the HTTP-style protocol.
//!
//! Run with `cargo run --release --example multi_query_server`.

use geostreams_core::query::cascade::{CascadeTree, NaiveRegionIndex, RegionIndex};
use geostreams_dsms::protocol::ClientRequest;
use geostreams_dsms::{run_continuous, Dsms, HttpServer, MultiQueryFrontEnd, OutputFormat};
use geostreams_geo::Rect;
use geostreams_satsim::goes_like;
use std::sync::Arc;
use std::time::Instant;

/// Deterministic LCG for reproducible client regions.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 33) as f64) / (1u64 << 31) as f64
    }
}

fn client_regions(n: usize, world: Rect, seed: u64) -> Vec<Rect> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let w = world.width() * (0.02 + 0.1 * rng.next_f64());
            let h = world.height() * (0.02 + 0.1 * rng.next_f64());
            let x = world.x_min + rng.next_f64() * (world.width() - w);
            let y = world.y_min + rng.next_f64() * (world.height() - h);
            Rect::new(x, y, x + w, y + h)
        })
        .collect()
}

fn route_with<I: RegionIndex>(
    index: I,
    regions: &[Rect],
    scanner: &geostreams_satsim::Scanner,
) -> (std::time::Duration, u64, u64) {
    let mut fe = MultiQueryFrontEnd::new(index);
    for (i, r) in regions.iter().enumerate() {
        fe.subscribe(i as u32, *r);
    }
    let mut stream = scanner.band_stream(0, 1);
    let mut images = 0u64;
    let start = Instant::now();
    fe.run(&mut stream, |_, _| images += 1);
    (start.elapsed(), fe.stats.deliveries, images)
}

fn main() {
    let scanner = goes_like(512, 256, 7);
    let world = scanner.instrument.base_lattice.world_bbox();

    println!("== shared front end: cascade tree vs naive scan ==");
    println!(
        "{:>9} {:>14} {:>14} {:>10} {:>12}",
        "clients", "naive", "cascade", "speedup", "deliveries"
    );
    for &n in &[4usize, 16, 64, 256] {
        let regions = client_regions(n, world, 99);
        let (t_naive, d1, _) = route_with(NaiveRegionIndex::new(), &regions, &scanner);
        let (t_casc, d2, _) = route_with(CascadeTree::new(world, 10), &regions, &scanner);
        assert_eq!(d1, d2, "both indexes must deliver identically");
        println!(
            "{:>9} {:>13.1?} {:>13.1?} {:>9.2}x {:>12}",
            n,
            t_naive,
            t_casc,
            t_naive.as_secs_f64() / t_casc.as_secs_f64(),
            d1
        );
    }

    println!("\n== per-query pipelines over the HTTP protocol ==");
    let server = Arc::new(Dsms::over_scanner(&goes_like(128, 64, 7), 1));
    let requests = [
        "GET /query?q=goes-sim.b4-ir&format=thermal HTTP/1.1",
        "GET /query?q=restrict_space(goes-sim.b1-vis,+bbox(-100,30,-90,40),+\"latlon\")&format=png HTTP/1.1",
        "GET /query?q=ndvi(goes-sim.b2-nir,+downsample(goes-sim.b1-vis,+4))&format=ndvi HTTP/1.1",
        "GET /query?q=borked((( HTTP/1.1",
    ];
    for req in requests {
        let response = server.handle_http(req);
        let status = String::from_utf8_lossy(&response[..16.min(response.len())]).to_string();
        println!("{:<100} -> {}", &req[..req.len().min(100)], status.trim());
    }
    println!("\nserver metrics: {}", server.metrics.summary());

    println!("\n== continuous shared-ingest mode ==");
    let scanner = goes_like(128, 64, 7);
    let requests = vec![
        ClientRequest {
            query: "restrict_value(goes-sim.b4-ir, 0.5, 1.0)".into(),
            format: OutputFormat::Stats,
            sectors: 0,
        },
        ClientRequest {
            query: "focal(goes-sim.b4-ir, \"mean\", 3)".into(),
            format: OutputFormat::Stats,
            sectors: 0,
        },
        ClientRequest {
            query: "ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4))".into(),
            format: OutputFormat::PngNdvi,
            sectors: 0,
        },
    ];
    let start = Instant::now();
    let (results, stats) = run_continuous(&scanner, 2, &requests).expect("continuous run");
    println!(
        "3 queries over shared ingest: {:?}; bands ingested once each: {:?}",
        start.elapsed(),
        stats.elements_per_band
    );
    for (req, result) in requests.iter().zip(&results) {
        match result {
            Ok(r) => {
                println!("  {:<60} -> {} frames / {} points", req.query, r.frames.len(), r.points)
            }
            Err(e) => println!("  {:<60} -> error {e}", req.query),
        }
    }

    println!("\n== TCP front end ==");
    let dsms = Arc::new(Dsms::over_scanner(&goes_like(64, 32, 7), 1));
    let http = HttpServer::spawn(dsms, "127.0.0.1:0").expect("bind");
    let addr = http.addr();
    println!("listening on http://{addr}");
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    use std::io::{Read, Write};
    write!(conn, "GET /query?q=goes-sim.b1-vis&format=png&sectors=1 HTTP/1.1\r\n\r\n")
        .expect("send");
    conn.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut resp = Vec::new();
    conn.read_to_end(&mut resp).expect("read");
    println!(
        "client received {} bytes: {}",
        resp.len(),
        String::from_utf8_lossy(&resp[..16.min(resp.len())]).trim()
    );
    http.stop();
}
