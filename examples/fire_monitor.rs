//! Fire/hot-spot monitoring: a realistic continuous-query application.
//!
//! The paper's motivation (§1) lists disaster management among the
//! target applications. This example builds a hot-spot monitor over the
//! simulated GOES thermal bands:
//!
//! * a split-window difference of the two IR channels (the classic
//!   fire/cloud discriminator) via a composition,
//! * a value restriction selecting anomalously hot pixels,
//! * a sliding-window temporal aggregate (§6's extension operator)
//!   smoothing out single-sector noise, and
//! * a per-region spatial aggregate raising a scalar alert level per
//!   scan sector for a watched region.
//!
//! Run with `cargo run --release --example fire_monitor`.

use geostreams_core::model::{Element, GeoStream};
use geostreams_core::ops::{
    AggFunc, Compose, GammaOp, JoinStrategy, SpatialAggregate, TemporalAggregate, ValueRestrict,
};
use geostreams_geo::{Coord, Crs, Rect, Region};
use geostreams_satsim::goes_like;

fn main() {
    let scanner = goes_like(256, 128, 77);
    let sectors = 6;

    // Split-window difference of the two thermal channels. Band 4 and 5
    // share the 4 km lattice, so they compose directly.
    let b4 = scanner.band_stream_by_id(4, sectors).expect("band 4");
    let b5 = scanner.band_stream_by_id(5, sectors).expect("band 5");
    let diff = Compose::new(b4, b5, GammaOp::Sub, JoinStrategy::Hash).expect("compose");

    // The simulated channels are near-identical, so absolute differences
    // are tiny; treat the brightest fraction of band-4 as "hot" instead:
    // restrict on high brightness temperature.
    let b4_hot = scanner.band_stream_by_id(4, sectors).expect("band 4");
    let hot = ValueRestrict::range(b4_hot, 0.80, 1.00);

    // Smooth over a 3-sector window: persistent hot spots survive,
    // single-sector flickers do not.
    let smoothed = TemporalAggregate::new(hot, AggFunc::Min, 3);

    // Watch a region (central plains) and raise a scalar alert level.
    let geos = Crs::geostationary(-75.0);
    let sw = geos.forward(Coord::new(-102.0, 32.0)).expect("visible");
    let ne = geos.forward(Coord::new(-94.0, 40.0)).expect("visible");
    let watched = Region::Rect(Rect::new(sw.x, sw.y, ne.x, ne.y));
    let mut alerts = SpatialAggregate::new(smoothed, AggFunc::Count, watched);

    println!("sector   persistent hot pixels in watched region");
    let mut sector = 0;
    let mut alert_counts = Vec::new();
    while let Some(el) = alerts.next_element() {
        if let Element::Point(p) = el {
            let level = p.value as u64;
            let bar = "#".repeat((level as usize / 2).min(60));
            println!("{sector:>6}   {level:>6} {bar}");
            alert_counts.push(level);
            sector += 1;
        }
    }
    assert_eq!(alert_counts.len() as u64, sectors, "one alert level per sector");

    // Also report the split-window pipeline's join behavior.
    let mut diff = diff;
    let mut n = 0u64;
    let mut max_abs: f32 = 0.0;
    while let Some(el) = diff.next_element() {
        if let Element::Point(p) = el {
            n += 1;
            max_abs = max_abs.max(p.value.abs());
        }
    }
    println!("\nsplit-window difference: {n} matched points, max |ΔT| = {max_abs:.4}");
    assert!(n > 0, "IR bands must compose");
}
