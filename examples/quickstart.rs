//! Quickstart: from satellite downlink to a delivered NDVI product.
//!
//! Walks the whole Fig. 3 pipeline of the paper in ~80 lines:
//!
//! 1. simulate a GOES-like imager (stream generator),
//! 2. register a continuous NDVI query over two spectral bands through
//!    the textual query language,
//! 3. let the optimizer rewrite it (restriction pushdown),
//! 4. execute, and deliver color-mapped PNG frames.
//!
//! Run with `cargo run --release --example quickstart`.

use geostreams_dsms::{Dsms, OutputFormat};
use geostreams_satsim::goes_like;
use std::fs;
use std::sync::Arc;

fn main() {
    // 1. A GOES-East-like imager: 5 bands over a CONUS-like sector in
    //    native geostationary coordinates (256x128 visible band here;
    //    the real instrument's 20,840 x 10,820 works the same way).
    let scanner = goes_like(256, 128, 2006);
    let server = Arc::new(Dsms::over_scanner(&scanner, 3));
    println!("registered sources: {:?}", server.catalog().names());

    // 2. A continuous query in the algebra of §3: NDVI over the NIR and
    //    visible bands (resolutions matched by downsampling the 1 km
    //    visible band to the 4 km IR grid), restricted to a region of
    //    interest given in lat/lon, for 2 scan sectors.
    let query = "restrict_space(\
                   ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4)),\
                   bbox(-105, 28, -85, 42), \"latlon\")";
    let handle = server.register_text(query, OutputFormat::PngNdvi, 2).expect("query registers");
    println!("\nquery      : {}", handle.text);
    println!("parsed     : {}", handle.expr);
    println!("optimized  : {}", handle.optimized);

    // 3. EXPLAIN: the optimized plan tree with per-node cost estimates.
    let planner = geostreams_core::query::Planner::new(server.catalog());
    println!("\nplan:\n{}", planner.explain(&handle.optimized).expect("explainable"));

    // 3b. Estimated cost of the naive vs optimized plan.
    let naive = geostreams_core::query::cost::estimate(&handle.expr, server.catalog())
        .expect("cost estimate");
    let optim = geostreams_core::query::cost::estimate(&handle.optimized, server.catalog())
        .expect("cost estimate");
    println!("\nestimated work: {:>12.0} (naive plan)", naive.work);
    println!("estimated work: {:>12.0} (optimized plan)", optim.work);

    // 4. Execute and deliver.
    let result = server.run_query(&handle).expect("query runs");
    let out_dir = std::path::Path::new("target/quickstart");
    fs::create_dir_all(out_dir).expect("create output dir");
    for frame in &result.frames {
        let path = out_dir.join(format!("ndvi_sector{}.png", frame.timestamp));
        fs::write(&path, &frame.png).expect("write png");
        println!(
            "delivered {} ({}x{} px, {} bytes)",
            path.display(),
            frame.width,
            frame.height,
            frame.png.len()
        );
    }
    println!("\nserver metrics: {}", server.metrics.summary());

    assert!(!result.frames.is_empty(), "quickstart must deliver frames");
}
