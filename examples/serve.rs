//! Runs the DSMS TCP front end until interrupted.
//!
//! Serves the §4 query protocol plus the operational endpoints of the
//! observability layer:
//!
//! * `GET /query?q=<expr>&format=<png|gray|color|json|stats>&sectors=<n>`
//! * `GET /metrics` — Prometheus text exposition v0.0.4
//! * `GET /healthz` — liveness probe
//!
//! Run with `cargo run --release --example serve -- 127.0.0.1:8080`
//! (the address defaults to `127.0.0.1:8080`).

use geostreams_dsms::{Dsms, HttpServer};
use geostreams_satsim::goes_like;
use std::sync::Arc;

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let dsms = Arc::new(Dsms::over_scanner(&goes_like(128, 64, 7), 2));
    let names = dsms.catalog().names();
    let http = HttpServer::spawn(dsms, &addr).expect("bind");
    println!("listening on http://{}", http.addr());
    println!("sources: {}", names.join(", "));
    println!("try: /query?q={}&format=json&sectors=1 | /metrics | /healthz", names[0]);
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
